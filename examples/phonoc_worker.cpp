/// \file phonoc_worker.cpp
/// \brief Worker executable of BatchEngine's fork/exec backend.
///
/// Reads one serialized sweep shard (exec/serialize.hpp wire format) on
/// stdin and streams cell-result blocks on stdout; the parent process
/// (exec/fork_exec.cpp) spawns one of these per grid slice. The binary
/// can also be driven by hand for debugging:
///
///     phonoc_worker < shard.txt > results.txt
///
/// Exit codes: 0 = slice fully processed, 2 = protocol/setup error
/// (diagnostic on stderr). A crash (abort/segfault) is the expected
/// failure mode this backend exists to contain.

#include <iostream>

#include "exec/worker.hpp"

int main() {
  std::ios::sync_with_stdio(false);
  return phonoc::worker_main(std::cin, std::cout);
}
