/// \file crosstalk_report.cpp
/// \brief Deep-dive diagnostic example: optimize a mapping, then explain
/// *why* its worst communication has the SNR it has — which attackers
/// leak onto it, at which routers, through which coefficients — and
/// decompose the worst path's insertion loss element class by class.
///
/// Usage: crosstalk_report [--benchmark vopd] [--evals 6000] [--seed 1]
///                         [--topology mesh|torus] [--top 5]

#include <algorithm>
#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "model/crosstalk_analysis.hpp"
#include "model/loss_analysis.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);

  ExperimentSpec spec;
  spec.benchmark = cli.get_or("benchmark", "vopd");
  spec.topology = cli.get_or("topology", "mesh") == "torus"
                      ? TopologyKind::Torus
                      : TopologyKind::Mesh;
  spec.goal = OptimizationGoal::Snr;
  const auto problem = make_experiment(spec);
  const auto top = static_cast<std::size_t>(cli.get_int("top", 5));

  OptimizerBudget budget;
  budget.max_evaluations =
      static_cast<std::uint64_t>(cli.get_int("evals", 6000));
  const auto run = Engine(problem).run(
      "rpbla", budget, static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  std::cout << "crosstalk diagnosis of the optimized mapping\n";
  std::cout << summarize_run(run) << "\n\n";
  std::cout << render_mapping(problem.network().topology(), problem.cg(),
                              run.search.best)
            << '\n';

  const auto& cg = problem.cg();
  const auto edges = cg.edges();
  const auto reports = analyze_crosstalk(problem.network(), cg,
                                         run.search.best.assignment());

  // Find the worst victim (the communication defining SNR_wc).
  const auto worst = std::min_element(
      reports.begin(), reports.end(),
      [](const VictimReport& a, const VictimReport& b) {
        return a.snr_db < b.snr_db;
      });
  const auto& victim_edge = edges[worst->victim_edge];
  std::cout << "worst communication: " << cg.task_name(victim_edge.src)
            << " -> " << cg.task_name(victim_edge.dst) << "  (SNR "
            << format_fixed(worst->snr_db, 2) << " dB, signal "
            << format_fixed(linear_to_db(worst->signal_gain), 2)
            << " dB, " << worst->events.size() << " noise events)\n\n";

  std::cout << "top noise contributors:\n";
  for (std::size_t i = 0; i < std::min(top, worst->events.size()); ++i) {
    const auto& event = worst->events[i];
    const auto& attacker = edges[event.attacker_edge];
    const auto pos = problem.network().topology().position(event.router_tile);
    std::cout << "  " << (i + 1) << ". attacker "
              << cg.task_name(attacker.src) << " -> "
              << cg.task_name(attacker.dst) << " at router (" << pos.row
              << "," << pos.col << "): coefficient "
              << format_fixed(linear_to_db(event.coefficient), 1)
              << " dB, attacker power "
              << format_fixed(linear_to_db(event.attacker_power), 2)
              << " dB, noise at detector "
              << format_fixed(linear_to_db(event.noise_at_detector), 1)
              << " dB\n";
  }

  // Loss breakdown of the worst-loss path of the same mapping.
  const auto eval = run.best_evaluation;
  const auto worst_loss_edge = std::min_element(
      eval.edges.begin(), eval.edges.end(),
      [](const EdgeMetrics& a, const EdgeMetrics& b) {
        return a.loss_db < b.loss_db;
      });
  std::cout << "\ninsertion-loss breakdown of the lossiest path ("
            << cg.task_name(edges[worst_loss_edge->edge].src) << " -> "
            << cg.task_name(edges[worst_loss_edge->edge].dst) << ", "
            << format_fixed(worst_loss_edge->loss_db, 2) << " dB):\n";
  const auto breakdown = analyze_path_loss(
      problem.network(), worst_loss_edge->src_tile,
      worst_loss_edge->dst_tile);
  for (const auto& c : breakdown.contributions) {
    const auto pos = problem.network().topology().position(c.tile);
    std::cout << "  ("
              << pos.row << "," << pos.col << ") "
              << (c.kind == LossContribution::Kind::RouterConnection
                      ? "router "
                      : "link   ")
              << c.label << ": " << format_fixed(c.loss_db, 3) << " dB\n";
  }
  std::cout << "  total: " << format_fixed(breakdown.total_db, 3) << " dB over "
            << breakdown.hop_count << " routers and "
            << format_fixed(breakdown.link_length_cm, 2)
            << " cm of waveguide\n";
  return 0;
}
