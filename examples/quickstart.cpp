/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the PhoNoCMap public API:
/// map the MPEG-4 decoder onto a 4x4 photonic mesh with the Crux router,
/// optimizing worst-case SNR with the paper's R-PBLA strategy, and
/// compare against a random mapping.
///
/// Usage: quickstart [--benchmark mpeg4] [--goal snr|loss]
///                   [--optimizer rpbla] [--evals 20000] [--seed 1]

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);

  ExperimentSpec spec;
  spec.benchmark = cli.get_or("benchmark", "mpeg4");
  spec.goal = cli.get_or("goal", "snr") == "loss"
                  ? OptimizationGoal::InsertionLoss
                  : OptimizationGoal::Snr;
  const auto problem = make_experiment(spec);

  std::cout << "PhoNoCMap quickstart\n";
  std::cout << "application : " << problem.cg().name() << " ("
            << problem.cg().task_count() << " tasks, "
            << problem.cg().communication_count() << " communications)\n";
  std::cout << "architecture: " << problem.network().topology().name()
            << " + " << problem.network().router().name() << " router + "
            << problem.network().routing().name() << " routing\n";
  std::cout << "objective   : maximize worst-case "
            << to_string(spec.goal) << "\n\n";

  OptimizerBudget budget;
  budget.max_evaluations =
      static_cast<std::uint64_t>(cli.get_int("evals", 20000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const Engine engine(problem);
  const auto baseline = engine.run("rs", budget, seed);
  std::cout << "baseline  " << summarize_run(baseline) << '\n';
  const auto tuned =
      engine.run(cli.get_or("optimizer", "rpbla"), budget, seed);
  std::cout << "optimized " << summarize_run(tuned) << "\n\n";
  std::cout << "best mapping (" << tuned.algorithm << "):\n"
            << render_mapping(problem.network().topology(), problem.cg(),
                              tuned.search.best);
  return 0;
}
