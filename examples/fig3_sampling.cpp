/// \file fig3_sampling.cpp
/// \brief Example: mass-sample random mappings through BatchEngine's
/// Sample task kind and merge the distribution shards.
///
/// The Fig. 3 experiment shape — evaluate N random mappings per
/// application and look at the worst-case SNR / power-loss
/// distributions — is a sweep whose cells *sample* instead of
/// *optimize*. `SweepSpec::use_sampling` switches the grid's task kind;
/// the seed dimension then acts as the sub-cell axis: each seed owns
/// `samples_per_cell` draws from its own deterministic RNG, every
/// backend executes the cells unchanged, and the constant-size
/// `DistributionResult` payloads merge bit-identically whatever the
/// worker count or backend.
///
///     fig3_sampling [--app=NAME] [--samples=N] [--subcells=K]
///                   [--seed=S] [--workers=N]
///                   [--backend=thread|fork|remote] [--hosts=EP1,...]
///
/// Prints the merged summary statistics and an ASCII histogram of the
/// worst-case SNR per app. The full Fig. 3 harness (CSV series,
/// quantiles, verification hooks) is `bench/bench_fig3_distributions`.

#include <iostream>

#include "exec/batch_engine.hpp"
#include "exec/fork_exec.hpp"
#include "exec/sweep.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  const auto samples =
      static_cast<std::uint64_t>(cli.get_int("samples", 4000));
  const auto subcells = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("subcells", 4)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  SweepSpec spec;
  if (const auto app = cli.get("app")) {
    spec.add_benchmark(*app);
  } else {
    spec.add_benchmark("mpeg4").add_benchmark("vopd");
  }
  spec.add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_seed_range(seed, subcells)
      .use_sampling({.samples_per_cell =
                         std::max<std::uint64_t>(1, samples / subcells)});

  BatchOptions options{.workers =
                           static_cast<std::size_t>(cli.get_int("workers", 0))};
  const auto backend_name = cli.get_or("backend", "thread");
  if (backend_name == "fork") {
    options.backend = BatchBackend::ForkExec;
    options.worker_path = cli.get_or("worker", worker_path_near(argv[0]));
  } else if (backend_name == "remote") {
    options.backend = BatchBackend::Remote;
    for (const auto& endpoint :
         split(cli.get_or("hosts", "loopback,loopback"), ','))
      if (!trim(endpoint).empty())
        options.remote_hosts.emplace_back(trim(endpoint));
  }

  std::cout << "Sampling " << spec.sampling.samples_per_cell * subcells
            << " random mappings per app over " << subcells
            << " sub-cells (backend " << backend_name << ")...\n";
  Timer timer;
  const auto results = BatchEngine(options).run(spec);

  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    // merge_cell_distributions throws if any sub-cell failed.
    const auto merged =
        merge_cell_distributions(results, w * subcells, subcells);
    std::cout << "\n== " << spec.workloads[w].name << " (" << merged.samples
              << " samples) ==\n";
    for (const auto& metric : merged.metrics)
      std::cout << "  " << metric.metric << ": min "
                << format_fixed(metric.stats.min(), 2) << ", mean "
                << format_fixed(metric.stats.mean(), 2) << ", max "
                << format_fixed(metric.stats.max(), 2) << ", stddev "
                << format_fixed(metric.stats.stddev(), 2) << ", p50 ~ "
                << format_fixed(metric.histogram.quantile(0.5), 2) << '\n';
    std::cout << '\n' << merged.find("snr_db")->histogram.ascii_chart(40);
  }
  std::cout << "\nDone in " << format_fixed(timer.elapsed_seconds(), 1)
            << " s.\n";
  return 0;
}
