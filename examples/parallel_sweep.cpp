/// \file parallel_sweep.cpp
/// \brief Example: declare a multi-hundred-cell design-space sweep and
/// run it on all hardware threads with BatchEngine.
///
/// The sweep crosses the paper's eight benchmark applications with both
/// topology families, both objectives, three optimizers and three seeds
/// — 288 cells — then prints the aggregated per-cell report (seed
/// dimension collapsed into RunningStats) and optionally a CSV.
///
///     parallel_sweep [--evals=N] [--workers=N] [--seeds=N] [--csv=FILE]
///                    [--backend=thread|fork] [--worker=PATH]
///                    [--expect-failed=N]
///
/// `--backend=fork` runs the grid on crash-isolated `phonoc_worker`
/// processes (one per slice; a dying worker fails only the cell it died
/// on). `--worker` overrides the worker binary, which defaults to the
/// `phonoc_worker` sitting next to this executable. `--expect-failed`
/// turns the run into a smoke check: exit nonzero unless exactly N
/// cells failed — CI uses this with PHONOC_WORKER_CRASH_INDEX to prove
/// the fork/exec recovery path on every push.
///
/// Because every cell owns its Evaluator and RNG, the results are
/// bit-identical whatever the worker count or backend: re-run with
/// --workers=1 and diff the CSV to see the determinism contract in
/// action (every column except the wall-time one matches exactly).

#include <algorithm>
#include <fstream>
#include <iostream>

#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/fork_exec.hpp"
#include "exec/sweep.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  const auto evals =
      static_cast<std::uint64_t>(cli.get_int("evals", 2000));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 3));
  const auto backend_name = cli.get_or("backend", "thread");
  if (backend_name != "thread" && backend_name != "fork") {
    std::cerr << "error: --backend must be 'thread' or 'fork'\n";
    return 1;
  }

  SweepSpec spec;
  spec.add_all_benchmarks()
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus)
      .add_goal(OptimizationGoal::Snr)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "ga", "rpbla"})
      .add_budget(evals)
      .add_seed_range(1, seeds);

  BatchOptions options{.workers = workers};
  if (backend_name == "fork") {
    options.backend = BatchBackend::ForkExec;
    options.worker_path = cli.get_or("worker", worker_path_near(argv[0]));
  }
  const BatchEngine engine(options);
  std::cout << "Sweeping " << cell_count(spec) << " cells ("
            << spec.workloads.size() << " apps x " << spec.topologies.size()
            << " topologies x " << spec.goals.size() << " objectives x "
            << spec.optimizers.size() << " optimizers x " << spec.seeds.size()
            << " seeds) on " << engine.worker_count() << ' ' << backend_name
            << " worker(s)...\n";

  Timer timer;
  const auto results = engine.run(spec);
  const auto report = SweepReport::build(spec, results,
                                         timer.elapsed_seconds());

  std::cout << '\n' << report.to_ascii() << '\n';
  std::cout << "Ran " << report.run_count << " runs in "
            << format_fixed(report.wall_seconds, 1) << " s wall ("
            << format_fixed(report.cpu_seconds, 1)
            << " s of CPU work; "
            << format_fixed(report.cpu_seconds /
                                std::max(1e-9, report.wall_seconds),
                            2)
            << "x parallel efficiency x workers).\n";
  if (report.failed_count > 0) {
    std::cout << report.failed_count << " cell(s) FAILED:\n";
    for (const auto& result : results)
      if (result.status == CellStatus::Failed)
        std::cout << "  cell " << result.cell.index << " ("
                  << cell_label(spec, result.cell) << "): " << result.error
                  << '\n';
  }

  if (const auto csv_path = cli.get("csv")) {
    std::ofstream out(*csv_path);
    if (!out) {
      std::cerr << "error: cannot open " << *csv_path << " for writing\n";
      return 1;
    }
    report.write_csv(out);
    std::cout << "Aggregated report written to " << *csv_path << '\n';
  }

  if (cli.has("expect-failed")) {
    const auto expected =
        static_cast<std::size_t>(cli.get_int("expect-failed", 0));
    if (report.failed_count != expected) {
      std::cerr << "error: expected " << expected << " failed cell(s), got "
                << report.failed_count << '\n';
      return 1;
    }
    if (report.run_count + report.failed_count != results.size()) {
      std::cerr << "error: " << results.size() << " cells but only "
                << report.run_count + report.failed_count
                << " accounted for\n";
      return 1;
    }
    std::cout << "Crash-isolation check passed: " << report.failed_count
              << " failed, " << report.run_count << " completed.\n";
  }
  return 0;
}
