/// \file parallel_sweep.cpp
/// \brief Example: declare a multi-hundred-cell design-space sweep and
/// run it on all hardware threads with BatchEngine.
///
/// The sweep crosses the paper's eight benchmark applications with both
/// topology families, both objectives, three optimizers and three seeds
/// — 288 cells — then prints the aggregated per-cell report (seed
/// dimension collapsed into RunningStats) and optionally a CSV.
///
///     parallel_sweep [--evals=N] [--workers=N] [--seeds=N] [--csv=FILE]
///                    [--backend=thread|fork|remote] [--worker=PATH]
///                    [--hosts=EP1,EP2,...] [--cells-per-shard=N]
///                    [--journal=FILE] [--admit-port=N] [--pin]
///                    [--trace=FILE] [--host-report-csv=FILE]
///                    [--verify] [--expect-failed=N]
///                    [--expect-admitted=N] [--expect-journaled-min=N]
///
/// `--backend=fork` runs the grid on crash-isolated `phonoc_worker`
/// processes (one per slice; a dying worker fails only the cell it died
/// on). `--worker` overrides the worker binary, which defaults to the
/// `phonoc_worker` sitting next to this executable.
///
/// `--backend=remote` ships framed shards to a fleet of worker
/// endpoints through the distributed scheduler (src/sched/): `--hosts`
/// lists them, either `host:port` TCP `phonoc_workerd` daemons or
/// `loopback` for in-process served connections (the default fleet is
/// two loopback workers). Dead hosts fail over and stragglers are
/// retried; results stay bit-identical to the in-process backend. The
/// summary prints each host's ledger activity (steals, retries,
/// speculations, late admission).
///
/// `--journal=FILE` (remote only) logs every settled cell to an
/// append-only checksummed journal; re-running the same sweep with the
/// same journal replays the settled cells and only executes the rest —
/// a scheduler killed mid-sweep resumes instead of restarting. CI
/// `kill -9`s a sweep and asserts the resumed report with `--verify
/// --expect-failed=0 --expect-journaled-min=1`.
///
/// `--admit-port=N` (remote only) opens the dynamic-admission port:
/// `phonoc_workerd --join=host:N` daemons enter the sweep mid-flight
/// and absorb queued, stolen or speculated work. `--expect-admitted=N`
/// asserts how many actually joined.
///
/// `--trace=FILE` records the sweep's flight-recorder events (exec
/// cell spans, sched deal/steal/settle, worker spawns) and writes them
/// as Chrome trace_event JSON on exit — load the file in Perfetto or
/// chrome://tracing. Tracing is read-only: results stay bit-identical
/// with it on or off (see src/obs/README.md).
///
/// `--host-report-csv=FILE` (remote only) dumps the per-host ledger —
/// one HostReport row per fleet member, late joiners last — as CSV.
///
/// `--pin` caps in-flight cells at the hardware thread count
/// (`BatchOptions::pin_one_cell_per_thread`) so `max_seconds` budgets
/// are not distorted by oversubscription.
///
/// `--verify` re-runs the sweep on the in-process backend and asserts
/// every cell is bit-identical (fitness, mapping, evaluation counts,
/// worst-case metrics) — CI uses this to prove the remote scheduler's
/// determinism contract, including runs where one daemon is killed
/// mid-sweep and its cells are recovered by retry. `--expect-failed`
/// asserts the exact number of failed cells (the fork-backend crash
/// smoke).
///
/// Because every cell owns its Evaluator and RNG, the results are
/// bit-identical whatever the worker count or backend: re-run with
/// --workers=1 and diff the CSV to see the determinism contract in
/// action (every column except the wall-time one matches exactly).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <utility>

#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/fork_exec.hpp"
#include "exec/sweep.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace phonoc;

/// Bit-exact comparison of the determinism-contract fields (everything
/// except the timing fields). Prints a diagnostic on mismatch.
bool identical_runs(const CellResult& got, const CellResult& want) {
  const auto& g = got.run;
  const auto& w = want.run;
  const bool same =
      got.status == CellStatus::Ok && want.status == CellStatus::Ok &&
      got.seed == want.seed && g.algorithm == w.algorithm &&
      g.search.best == w.search.best &&
      g.search.best_fitness == w.search.best_fitness &&
      g.search.evaluations == w.search.evaluations &&
      g.search.iterations == w.search.iterations &&
      g.best_evaluation.worst_loss_db == w.best_evaluation.worst_loss_db &&
      g.best_evaluation.worst_snr_db == w.best_evaluation.worst_snr_db;
  if (!same)
    std::cerr << "verify: cell " << got.cell.index << " differs ("
              << (got.status == CellStatus::Failed
                      ? "failed: " + got.error
                      : "fitness " + format_double(g.search.best_fitness) +
                            " vs " + format_double(w.search.best_fitness))
              << ")\n";
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  const auto evals =
      static_cast<std::uint64_t>(cli.get_int("evals", 2000));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 3));
  const auto backend_name = cli.get_or("backend", "thread");
  if (backend_name != "thread" && backend_name != "fork" &&
      backend_name != "remote") {
    std::cerr << "error: --backend must be 'thread', 'fork' or 'remote'\n";
    return 1;
  }
  const auto trace_path = cli.get_or("trace", "");
  const auto host_csv_path = cli.get_or("host-report-csv", "");
  if (!host_csv_path.empty() && backend_name != "remote") {
    std::cerr << "error: --host-report-csv needs --backend=remote\n";
    return 1;
  }
  if (!trace_path.empty()) obs::start_tracing();

  SweepSpec spec;
  spec.add_all_benchmarks()
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus)
      .add_goal(OptimizationGoal::Snr)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "ga", "rpbla"})
      .add_budget(evals)
      .add_seed_range(1, seeds);

  BatchOptions options{.workers = workers};
  options.pin_one_cell_per_thread = cli.get_bool("pin", false);
  if (backend_name == "fork") {
    options.backend = BatchBackend::ForkExec;
    options.worker_path = cli.get_or("worker", worker_path_near(argv[0]));
  } else if (backend_name == "remote") {
    options.backend = BatchBackend::Remote;
    for (const auto& endpoint :
         split(cli.get_or("hosts", "loopback,loopback"), ','))
      if (!trim(endpoint).empty())
        options.remote_hosts.emplace_back(trim(endpoint));
  }
  const BatchEngine engine(options);
  std::cout << "Sweeping " << cell_count(spec) << " cells ("
            << spec.workloads.size() << " apps x " << spec.topologies.size()
            << " topologies x " << spec.goals.size() << " objectives x "
            << spec.optimizers.size() << " optimizers x " << spec.seeds.size()
            << " seeds) on ";
  if (backend_name == "remote")
    std::cout << options.remote_hosts.size() << " remote host(s)...\n";
  else
    std::cout << engine.worker_count() << ' ' << backend_name
              << " worker(s)...\n";

  Timer timer;
  // The remote path drives the Scheduler directly (not through
  // BatchEngine) so the fleet outcome — per-host ledger counters,
  // journal replay count, admitted joiners — is visible to the summary
  // and the --expect-* assertions. The cell results are the same either
  // way; run_remote() is this minus the introspection.
  std::optional<ScheduleResult> fleet;
  std::vector<CellResult> results;
  if (backend_name == "remote") {
    SchedulerOptions sched;
    sched.hosts = options.remote_hosts;
    sched.evaluator = options.evaluator;
    if (const auto shard_cells = cli.get_int("cells-per-shard", 0);
        shard_cells > 0)
      sched.cells_per_shard = static_cast<std::size_t>(shard_cells);
    sched.journal_path = cli.get_or("journal", "");
    sched.admit_port = cli.get_int("admit-port", -1);
    try {
      fleet = Scheduler(std::move(sched)).run(spec);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
    results = fleet->results;
  } else {
    results = engine.run(spec);
  }
  const auto report = SweepReport::build(spec, results,
                                         timer.elapsed_seconds());

  std::cout << '\n' << report.to_ascii() << '\n';
  if (fleet) {
    std::cout << "Fleet of " << fleet->hosts.size() << " host(s):\n";
    for (const auto& host : fleet->hosts)
      std::cout << "  '" << host.endpoint << "'"
                << (host.admitted_late ? " [admitted late]" : "")
                << (host.connected ? (host.died ? " [died]" : "")
                                   : " [unreachable]")
                << ": " << host.shards << " shard(s), " << host.cells_ok
                << " ok, " << host.cells_failed << " failed, "
                << host.duplicates << " duplicate(s), " << host.steals
                << " stolen, " << host.retries << " retried, "
                << host.speculations << " speculated\n";
    if (fleet->journaled > 0)
      std::cout << "  journal replay settled " << fleet->journaled
                << " cell(s) from a previous run\n";
  }
  std::cout << "Ran " << report.run_count << " runs in "
            << format_fixed(report.wall_seconds, 1) << " s wall ("
            << format_fixed(report.cpu_seconds, 1)
            << " s of CPU work; "
            << format_fixed(report.cpu_seconds /
                                std::max(1e-9, report.wall_seconds),
                            2)
            << "x parallel efficiency x workers).\n";
  if (report.failed_count > 0) {
    std::cout << report.failed_count << " cell(s) FAILED:\n";
    for (const auto& result : results)
      if (result.status == CellStatus::Failed)
        std::cout << "  cell " << result.cell.index << " ("
                  << cell_label(spec, result.cell) << "): " << result.error
                  << '\n';
  }

  if (!trace_path.empty()) {
    obs::stop_tracing();
    obs::write_chrome_trace_file(trace_path);
    std::cout << "Trace (" << obs::trace_event_count() << " events, "
              << obs::trace_dropped_events() << " dropped) written to "
              << trace_path << '\n';
  }

  if (!host_csv_path.empty()) {
    std::ofstream out(host_csv_path);
    if (!out) {
      std::cerr << "error: cannot open " << host_csv_path
                << " for writing\n";
      return 1;
    }
    out << host_report_csv(*fleet);
    std::cout << "Host report written to " << host_csv_path << '\n';
  }

  if (const auto csv_path = cli.get("csv")) {
    std::ofstream out(*csv_path);
    if (!out) {
      std::cerr << "error: cannot open " << *csv_path << " for writing\n";
      return 1;
    }
    report.write_csv(out);
    std::cout << "Aggregated report written to " << *csv_path << '\n';
  }

  if (cli.has("verify")) {
    std::cout << "Verifying bit-identity against the in-process backend...\n";
    const auto reference =
        BatchEngine({.workers = workers, .evaluator = options.evaluator})
            .run(spec);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < results.size(); ++i)
      if (!identical_runs(results[i], reference[i])) ++mismatches;
    if (mismatches > 0) {
      std::cerr << "error: " << mismatches << " of " << results.size()
                << " cells differ from the in-process backend\n";
      return 1;
    }
    std::cout << "Determinism check passed: " << results.size()
              << " cells bit-identical across backends.\n";
  }

  if (cli.has("expect-failed")) {
    const auto expected =
        static_cast<std::size_t>(cli.get_int("expect-failed", 0));
    if (report.failed_count != expected) {
      std::cerr << "error: expected " << expected << " failed cell(s), got "
                << report.failed_count << '\n';
      return 1;
    }
    if (report.run_count + report.failed_count != results.size()) {
      std::cerr << "error: " << results.size() << " cells but only "
                << report.run_count + report.failed_count
                << " accounted for\n";
      return 1;
    }
    std::cout << "Crash-isolation check passed: " << report.failed_count
              << " failed, " << report.run_count << " completed.\n";
  }

  if (cli.has("expect-admitted")) {
    const auto expected =
        static_cast<std::size_t>(cli.get_int("expect-admitted", 0));
    std::size_t admitted = 0;
    if (fleet)
      for (const auto& host : fleet->hosts)
        if (host.admitted_late) ++admitted;
    if (admitted != expected) {
      std::cerr << "error: expected " << expected
                << " late-admitted host(s), got " << admitted << '\n';
      return 1;
    }
    std::cout << "Admission check passed: " << admitted
              << " host(s) joined mid-sweep.\n";
  }

  if (cli.has("expect-journaled-min")) {
    const auto floor =
        static_cast<std::size_t>(cli.get_int("expect-journaled-min", 1));
    const std::size_t journaled = fleet ? fleet->journaled : 0;
    if (journaled < floor) {
      std::cerr << "error: expected at least " << floor
                << " journal-replayed cell(s), got " << journaled << '\n';
      return 1;
    }
    std::cout << "Resume check passed: " << journaled
              << " cell(s) replayed from the journal.\n";
  }
  return 0;
}
