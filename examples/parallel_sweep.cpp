/// \file parallel_sweep.cpp
/// \brief Example: declare a multi-hundred-cell design-space sweep and
/// run it on all hardware threads with BatchEngine.
///
/// The sweep crosses the paper's eight benchmark applications with both
/// topology families, both objectives, three optimizers and three seeds
/// — 288 cells — then prints the aggregated per-cell report (seed
/// dimension collapsed into RunningStats) and optionally a CSV.
///
///     parallel_sweep [--evals=N] [--workers=N] [--seeds=N] [--csv=FILE]
///
/// Because every cell owns its Evaluator and RNG, the results are
/// bit-identical whatever the worker count: re-run with --workers=1 and
/// diff the CSV to see the determinism contract in action (every column
/// except the wall-time one matches exactly).

#include <algorithm>
#include <fstream>
#include <iostream>

#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  const auto evals =
      static_cast<std::uint64_t>(cli.get_int("evals", 2000));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 3));

  SweepSpec spec;
  spec.add_all_benchmarks()
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus)
      .add_goal(OptimizationGoal::Snr)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "ga", "rpbla"})
      .add_budget(evals)
      .add_seed_range(1, seeds);

  const BatchEngine engine({.workers = workers});
  std::cout << "Sweeping " << cell_count(spec) << " cells ("
            << spec.workloads.size() << " apps x " << spec.topologies.size()
            << " topologies x " << spec.goals.size() << " objectives x "
            << spec.optimizers.size() << " optimizers x " << spec.seeds.size()
            << " seeds) on " << engine.worker_count() << " worker(s)...\n";

  Timer timer;
  const auto results = engine.run(spec);
  const auto report = SweepReport::build(spec, results);

  std::cout << '\n' << report.to_ascii() << '\n';
  std::cout << "Ran " << report.run_count << " runs in "
            << format_fixed(timer.elapsed_seconds(), 1) << " s wall ("
            << format_fixed(report.total_seconds, 1)
            << " s of single-thread work; "
            << format_fixed(report.total_seconds /
                                std::max(1e-9, timer.elapsed_seconds()),
                            2)
            << "x parallel efficiency x workers).\n";

  if (const auto csv_path = cli.get("csv")) {
    std::ofstream out(*csv_path);
    if (!out) {
      std::cerr << "error: cannot open " << *csv_path << " for writing\n";
      return 1;
    }
    report.write_csv(out);
    std::cout << "Aggregated report written to " << *csv_path << '\n';
  }
  return 0;
}
