/// \file dynamic_traffic.cpp
/// \brief Dynamic-traffic walkthrough of an optimized mapping: sweep the
/// offered load on the circuit-switched simulator and watch latency,
/// goodput, link utilization and the observed SNR envelope move, with
/// the static worst-case bound drawn alongside. Demonstrates the
/// sim/ public API end to end.
///
/// Usage: dynamic_traffic [--benchmark vopd] [--evals 6000]
///                        [--duration-ns 200000] [--seed 1]

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "model/evaluation.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);

  ExperimentSpec spec;
  spec.benchmark = cli.get_or("benchmark", "vopd");
  spec.goal = OptimizationGoal::Snr;
  const auto problem = make_experiment(spec);

  OptimizerBudget budget;
  budget.max_evaluations =
      static_cast<std::uint64_t>(cli.get_int("evals", 6000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto run = Engine(problem).run("rpbla", budget, seed);
  const auto static_bound = evaluate_mapping(
      problem.network(), problem.cg(), run.search.best.assignment());

  std::cout << "dynamic traffic on the optimized " << problem.cg().name()
            << " mapping (static worst-case SNR bound: "
            << format_fixed(static_bound.worst_snr_db, 2) << " dB)\n\n";

  TableWriter table({"load tx/us/edge", "delivered", "wait ns (mean)",
                     "latency ns (p-mean)", "goodput Gbit/s", "link util %",
                     "SNR min dB", "SNR mean dB"});
  for (const double load : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    SimulationOptions sim;
    sim.duration_ns = cli.get_double("duration-ns", 200000.0);
    sim.arrivals_per_us = load;
    sim.seed = seed;
    sim.warmup_ns = sim.duration_ns * 0.1;
    const auto result =
        simulate(problem.network(), problem.cg(), run.search.best, sim);
    table.add_row({format_fixed(load, 2), std::to_string(result.delivered),
                   format_fixed(result.wait_ns.mean(), 1),
                   format_fixed(result.latency_ns.mean(), 1),
                   format_fixed(result.delivered_gbps, 2),
                   format_fixed(result.mean_link_utilization * 100.0, 1),
                   format_fixed(result.worst_snr_db, 2),
                   format_fixed(result.snr_db.mean(), 2)});
  }
  std::cout << table.to_ascii();
  std::cout << "\nreading: as the load grows, more communications overlap "
               "in flight — the observed\nSNR minimum descends toward (but "
               "never below) the static worst-case bound, while\nqueueing "
               "delay grows once circuits contend for ports.\n";
  return 0;
}
