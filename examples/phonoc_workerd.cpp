/// \file phonoc_workerd.cpp
/// \brief Serve-over-socket worker daemon of the distributed sweep
/// scheduler (src/sched/).
///
/// Listens on a TCP port and serves scheduler connections one at a
/// time: framed handshake, then SweepShard frames in / CellResult
/// frames out (the exec/serialize wire format wrapped in
/// length+checksum frames — see src/sched/README.md). Each shard's
/// cells run on an internal exec thread pool sized by the advertised
/// capacity (`--threads` pins both). Start one daemon per machine and
/// point the scheduler at the fleet:
///
///     phonoc_workerd --port=7401 --threads=8 &
///     phonoc_workerd --port=7402 --threads=8 &
///     parallel_sweep --backend=remote --hosts=host:7401,host:7402
///
/// A daemon can also enter a sweep already in flight: `--join` dials a
/// scheduler's admission port (`parallel_sweep --admit-port=N`) instead
/// of listening, serves that one connection, and exits.
///
/// Flags:
///   --port=N              listening port (0 picks an ephemeral port;
///                         the chosen port is printed either way)
///   --threads=N           internal exec pool width; also advertised as
///                         this worker's capacity in the handshake
///                         (0 = the hardware thread count)
///   --join=HOST:PORT      dial a scheduler's admission port, serve the
///                         sweep in flight, exit (ignores --port/--once)
///   --once                exit after serving one connection
///   --max-conns=N         exit after serving N connections
///   --crash-after-cells=N CI/test hook: abort() after emitting N cell
///                         results — the injected mid-sweep worker
///                         death the scheduler must recover from
///   --trace=FILE          record flight-recorder events (serve_shard /
///                         exec cell spans) and write Chrome trace_event
///                         JSON on exit — load in Perfetto
///
/// Exit codes: 0 = served the requested connections, 1 = setup error.

#include <iostream>

#include "obs/trace.hpp"
#include "sched/service.hpp"
#include "sched/transport.hpp"
#include "util/cli.hpp"

namespace {

/// Writes the trace on every exit path of main (including early
/// returns): armed by --trace=FILE, a no-op otherwise.
struct TraceFlusher {
  std::string path;
  ~TraceFlusher() {
    if (path.empty()) return;
    phonoc::obs::stop_tracing();
    phonoc::obs::write_chrome_trace_file(path);
    std::cout << "phonoc_workerd: trace ("
              << phonoc::obs::trace_event_count() << " events) written to "
              << path << std::endl;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  TraceFlusher trace{cli.get_or("trace", "")};
  if (!trace.path.empty()) obs::start_tracing();
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7401));
  const auto max_conns = cli.has("once")
                             ? 1
                             : cli.get_int("max-conns", 0);  // 0 = forever
  ServiceOptions service;
  service.crash_after_cells = cli.get_int("crash-after-cells", -1);
  const auto threads = cli.get_int("threads", 0);
  if (threads > 0) {
    service.exec_threads = static_cast<std::size_t>(threads);
    service.advertised_capacity = static_cast<std::size_t>(threads);
  }

  const std::string join = cli.get_or("join", "");
  if (!join.empty()) {
    // Late admission: the scheduler is the listener here. Dial it,
    // serve the one connection (serve_connection starts by receiving
    // the hello — the scheduler speaks first on admitted connections,
    // same as on dialed ones), and exit.
    try {
      TcpTransport transport;
      auto conn = transport.connect(join);
      std::cout << "phonoc_workerd: joined scheduler at " << join
                << std::endl;
      const auto cells = serve_connection(*conn, service);
      conn->close();
      std::cout << "phonoc_workerd: sweep connection done, " << cells
                << " cell(s) served" << std::endl;
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "phonoc_workerd: cannot join " << join << ": "
                << e.what() << "\n";
      return 1;
    }
  }

  TcpListener listener(port);
  std::cout << "phonoc_workerd: listening on 127.0.0.1:" << listener.port()
            << (service.crash_after_cells >= 0 ? " (crash injection armed)"
                                               : "")
            << std::endl;

  std::int64_t served = 0;
  for (;;) {
    auto conn = listener.accept();
    if (!conn) {
      std::cerr << "phonoc_workerd: accept failed\n";
      return 1;
    }
    const auto cells = serve_connection(*conn, service);
    conn->close();
    ++served;
    std::cout << "phonoc_workerd: connection " << served << " done, "
              << cells << " cell(s) served" << std::endl;
    if (max_conns > 0 && served >= max_conns) return 0;
  }
}
