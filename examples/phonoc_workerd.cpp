/// \file phonoc_workerd.cpp
/// \brief Serve-over-socket worker daemon of the distributed sweep
/// scheduler (src/sched/).
///
/// Listens on a TCP port and serves scheduler connections one at a
/// time: framed handshake, then SweepShard frames in / CellResult
/// frames out (the exec/serialize wire format wrapped in
/// length+checksum frames — see src/sched/README.md). Start one daemon
/// per core per machine and point the scheduler at the fleet:
///
///     phonoc_workerd --port=7401 &
///     phonoc_workerd --port=7402 &
///     parallel_sweep --backend=remote --hosts=host:7401,host:7402
///
/// Flags:
///   --port=N              listening port (0 picks an ephemeral port;
///                         the chosen port is printed either way)
///   --once                exit after serving one connection
///   --max-conns=N         exit after serving N connections
///   --crash-after-cells=N CI/test hook: abort() after emitting N cell
///                         results — the injected mid-sweep worker
///                         death the scheduler must recover from
///
/// Exit codes: 0 = served the requested connections, 1 = setup error.

#include <iostream>

#include "sched/service.hpp"
#include "sched/transport.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7401));
  const auto max_conns = cli.has("once")
                             ? 1
                             : cli.get_int("max-conns", 0);  // 0 = forever
  ServiceOptions service;
  service.crash_after_cells = cli.get_int("crash-after-cells", -1);

  TcpListener listener(port);
  std::cout << "phonoc_workerd: listening on 127.0.0.1:" << listener.port()
            << (service.crash_after_cells >= 0 ? " (crash injection armed)"
                                               : "")
            << std::endl;

  std::int64_t served = 0;
  for (;;) {
    auto conn = listener.accept();
    if (!conn) {
      std::cerr << "phonoc_workerd: accept failed\n";
      return 1;
    }
    const auto cells = serve_connection(*conn, service);
    conn->close();
    ++served;
    std::cout << "phonoc_workerd: connection " << served << " done, "
              << cells << " cell(s) served" << std::endl;
    if (max_conns > 0 && served >= max_conns) return 0;
  }
}
