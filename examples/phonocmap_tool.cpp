/// \file phonocmap_tool.cpp
/// \brief The full command-line tool, mirroring the original PhoNoCMap
/// workflow: application description in, architecture description in,
/// optimized mapping + report out.
///
/// Usage:
///   phonocmap_tool --benchmark vopd [options]
///   phonocmap_tool --cg app.cg --arch arch.txt [options]
///
/// Options:
///   --cg <file>          communication graph file (see io/cg_io.hpp)
///   --benchmark <name>   built-in application instead of --cg
///   --arch <file>        architecture description (see io/arch_io.hpp);
///                        defaults to the smallest square mesh + Crux + XY
///   --objective snr|loss optimization goal           [snr]
///   --optimizer <name>   rs|ga|rpbla|sa|tabu|greedy  [rpbla]
///   --evals <n>          evaluation budget           [10000]
///   --seconds <s>        wall-clock budget (overrides --evals)
///   --seed <n>           RNG seed                    [1]
///   --csv <file>         write per-communication metrics as CSV
///   --save-cg <file>     write the (built-in) CG out in the text format
///   --quiet              suppress the mapping grid

#include <fstream>
#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "io/arch_io.hpp"
#include "io/cg_io.hpp"
#include "io/csv.hpp"
#include "topology/mesh.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace phonoc;

int run_tool(const CliOptions& cli) {
  // --- application ---------------------------------------------------------
  CommGraph cg = cli.has("cg") ? read_cg_file(*cli.get("cg"))
                               : make_benchmark(cli.get_or("benchmark",
                                                           "mpeg4"));
  if (cli.has("save-cg")) write_cg_file(*cli.get("save-cg"), cg);

  // --- architecture ----------------------------------------------------------
  ArchitectureSpec arch;
  if (cli.has("arch")) {
    arch = read_architecture_file(*cli.get("arch"));
  } else {
    arch.rows = arch.cols = square_side_for(cg.task_count());
  }
  const auto network = build_network(arch);

  // --- problem & search --------------------------------------------------------
  const auto goal = to_lower(cli.get_or("objective", "snr")) == "loss"
                        ? OptimizationGoal::InsertionLoss
                        : OptimizationGoal::Snr;
  MappingProblem problem(std::move(cg), network, make_objective(goal));

  OptimizerBudget budget;
  budget.max_evaluations =
      static_cast<std::uint64_t>(cli.get_int("evals", 10000));
  if (cli.has("seconds")) {
    budget.max_evaluations = 0;
    budget.max_seconds = cli.get_double("seconds", 1.0);
  }

  std::cout << "PhoNoCMap: " << problem.cg().name() << " ("
            << problem.cg().task_count() << " tasks, "
            << problem.cg().communication_count() << " communications) on "
            << problem.network().topology().name() << " / "
            << problem.network().router().name() << " / "
            << problem.network().routing().name() << ", objective "
            << problem.objective().name() << "\n\n";

  const Engine engine(problem);
  const auto result =
      engine.run(cli.get_or("optimizer", "rpbla"), budget,
                 static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  if (cli.get_bool("quiet", false)) {
    std::cout << summarize_run(result) << '\n';
  } else {
    std::cout << describe_best(problem, result);
  }

  // --- optional CSV export -------------------------------------------------------
  if (cli.has("csv")) {
    std::ofstream out(*cli.get("csv"));
    require(static_cast<bool>(out),
            "cannot write CSV file '" + *cli.get("csv") + "'");
    CsvWriter csv(out);
    csv.header({"src", "dst", "bandwidth_mbps", "loss_db", "snr_db"});
    const auto edges = problem.cg().edges();
    for (const auto& em : result.best_evaluation.edges) {
      const auto& e = edges[em.edge];
      csv.row({problem.cg().task_name(e.src), problem.cg().task_name(e.dst),
               format_fixed(e.bandwidth_mbps, 1),
               format_fixed(em.loss_db, 4), format_fixed(em.snr_db, 3)});
    }
    std::cout << "\nper-communication metrics written to "
              << *cli.get("csv") << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_tool(CliOptions(argc, argv));
  } catch (const Error& e) {
    std::cerr << "phonocmap_tool: " << e.what() << '\n';
    return 1;
  }
}
