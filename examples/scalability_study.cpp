/// \file scalability_study.cpp
/// \brief Narrative walk through the paper's motivation (§I): the laser
/// must out-shout the worst-case loss but stay below the nonlinearity
/// ceiling, so worst-case loss caps the feasible network size — and
/// crosstalk caps the usable SNR. This example sweeps mesh sizes with a
/// pipeline workload, prints the power budget at each size for random
/// vs optimized mappings, and reports where each curve crosses the
/// feasibility line, including the multi-wavelength case.
///
/// Usage: scalability_study [--max-side 8] [--evals 3000]
///                          [--channels 8] [--seed 1]

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "model/power_budget.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workloads/generator.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  const auto max_side =
      static_cast<std::uint32_t>(cli.get_int("max-side", 8));
  const auto channels =
      static_cast<std::uint32_t>(cli.get_int("channels", 96));
  // The constructive heuristic places pipeline neighbours adjacently in
  // one shot, which is what large instances need within a small budget.
  const auto optimizer = cli.get_or("optimizer", "greedy");
  OptimizerBudget budget;
  budget.max_evaluations =
      static_cast<std::uint64_t>(cli.get_int("evals", 3000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // A fast receiver (-14 dBm sensitivity) with dense WDM: the regime
  // where the worst-case loss actually decides feasibility.
  PowerBudgetOptions single;
  single.detector_sensitivity_dbm =
      cli.get_double("sensitivity", -14.0);
  PowerBudgetOptions wdm = single;
  wdm.wavelength_channels = channels;

  std::cout << "photonic NoC scalability under the laser power budget\n";
  std::cout << "detector sensitivity " << single.detector_sensitivity_dbm
            << " dBm, injection ceiling " << single.max_injected_power_dbm
            << " dBm, margin " << single.margin_db << " dB, WDM case with "
            << channels << " channels\n\n";

  TableWriter table({"mesh", "mapping", "worst loss dB", "required dBm",
                     "slack dB (1 ch)", "slack dB (WDM)", "feasible"});
  int last_feasible_random = 0;
  int last_feasible_optimized = 0;

  for (std::uint32_t side = 3; side <= max_side; ++side) {
    auto cg = pipeline_cg(static_cast<std::size_t>(side) * side, 64.0);
    auto network = make_network(TopologyKind::Mesh, side, "crux");
    MappingProblem problem(std::move(cg), network,
                           make_objective(OptimizationGoal::InsertionLoss));
    const Engine engine(problem);
    OptimizerBudget one;
    one.max_evaluations = 1;

    const auto report = [&](const char* label, double loss) {
      const auto pb1 = compute_power_budget(loss, single);
      const auto pbw = compute_power_budget(loss, wdm);
      table.add_row({std::to_string(side) + "x" + std::to_string(side),
                     label, format_fixed(loss, 2),
                     format_fixed(pb1.required_power_dbm, 2),
                     format_fixed(pb1.slack_db, 2),
                     format_fixed(pbw.slack_db, 2),
                     pbw.feasible ? "yes" : (pb1.feasible ? "1ch only"
                                                          : "no")});
      return pbw.feasible;
    };
    if (report("random",
               engine.run("rs", one, seed).best_evaluation.worst_loss_db))
      last_feasible_random = static_cast<int>(side);
    if (report("optimized", engine.run(optimizer, budget, seed)
                                .best_evaluation.worst_loss_db))
      last_feasible_optimized = static_cast<int>(side);
  }
  std::cout << table.to_ascii() << '\n';
  std::cout << "largest WDM-feasible mesh with a random mapping:    "
            << last_feasible_random << "x" << last_feasible_random << '\n';
  std::cout << "largest WDM-feasible mesh with an optimized mapping: "
            << last_feasible_optimized << "x" << last_feasible_optimized
            << '\n';
  std::cout << "\nmapping optimization buys the margin that lets the same "
               "silicon scale further —\nthe paper's 'improved network "
               "scalability' claim, quantified.\n";
  return 0;
}
