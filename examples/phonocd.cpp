/// \file phonocd.cpp
/// \brief The long-lived mapping service daemon (src/service/).
///
/// Listens on a TCP port and serves concurrent clients: framed
/// handshake, then mapping/sweep requests in, streamed CellResult
/// frames out (see src/service/README.md for the protocol, the
/// admission-control policy and the metrics catalog). All connections
/// share one RequestBroker — one admission queue, one backend, one
/// cross-request problem cache and evaluator memo bank.
///
///     phonocd --port=7501 &
///     phonoc_client --port=7501 --benchmarks=pip --optimizers=rs
///
/// Flags:
///   --port=N              listening port (0 picks an ephemeral port;
///                         the chosen port is printed either way)
///   --once / --max-conns=N  exit after serving 1 / N connections
///   --workers=N           cell workers (0 = hardware threads)
///   --backend=thread|fork|remote   execution backend
///   --worker=PATH         fork backend: phonoc_worker binary
///   --hosts=EP1,EP2,...   remote backend: phonoc_workerd endpoints
///   --request-concurrency=N  requests executing concurrently (broker
///                         worker pool size; 0 = hardware threads,
///                         1 = the old one-at-a-time behavior)
///   --max-queue=N         admission queue depth (default 8)
///   --max-queue-per-client=N  requests one client may have queued
///                         (default 0 = no per-client cap)
///   --interactive-cells=N  lane routing threshold: auto-priority
///                         requests with at most N cells take the
///                         interactive lane (default 4)
///   --drr-quantum=N       deficit-round-robin quantum in cells
///                         (default 32)
///   --max-outstanding-cells=N  outstanding-cell cap (default 4096,
///                         0 = uncapped)
///   --max-cells=N         per-request grid cap (default 0 = uncapped)
///   --evaluator-cache=N   per-cell evaluator memo capacity
///   --memo-bank=N         cross-request memo bank entries per problem
///   --max-problems=N      problems kept in the cross-request cache
///   --idle-timeout=SECS   drop clients idle this long (0 = never)
///   --stats-csv=FILE      write the final metrics snapshot as CSV on
///                         graceful exit (requires --once/--max-conns)
///   --prom-port=N         serve the Prometheus text exposition of the
///                         live metrics over plain HTTP on this
///                         loopback port (GET any path; 0 picks an
///                         ephemeral port, printed at startup) —
///                         the same text a framed `stats prometheus`
///                         request returns
///   --trace=FILE          record flight-recorder events (admit /
///                         execute / cell spans, shed instants) and
///                         write Chrome trace_event JSON on exit
///
/// Exit codes: 0 = served the requested connections, 1 = setup error.

#include <fstream>
#include <iostream>
#include <optional>

#include "obs/prom_http.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7501));
  const auto max_conns = cli.has("once")
                             ? std::int64_t{1}
                             : cli.get_int("max-conns", 0);  // 0 = forever

  BrokerOptions broker;
  broker.batch.workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  const auto backend_name = cli.get_or("backend", "thread");
  if (backend_name == "fork") {
    broker.batch.backend = BatchBackend::ForkExec;
    broker.batch.worker_path = cli.get_or("worker", "");
  } else if (backend_name == "remote") {
    broker.batch.backend = BatchBackend::Remote;
    for (const auto& endpoint : split(cli.get_or("hosts", ""), ','))
      if (!trim(endpoint).empty())
        broker.batch.remote_hosts.emplace_back(trim(endpoint));
    if (broker.batch.remote_hosts.empty()) {
      std::cerr << "error: --backend=remote needs --hosts\n";
      return 1;
    }
  } else if (backend_name != "thread") {
    std::cerr << "error: --backend must be 'thread', 'fork' or 'remote'\n";
    return 1;
  }
  broker.request_concurrency =
      static_cast<std::size_t>(cli.get_int("request-concurrency", 0));
  broker.max_queue_depth =
      static_cast<std::size_t>(cli.get_int("max-queue", 8));
  broker.max_queue_per_client =
      static_cast<std::size_t>(cli.get_int("max-queue-per-client", 0));
  broker.interactive_cell_threshold = static_cast<std::size_t>(
      cli.get_int("interactive-cells",
                  static_cast<std::int64_t>(
                      BrokerOptions{}.interactive_cell_threshold)));
  broker.drr_quantum_cells = static_cast<std::size_t>(
      cli.get_int("drr-quantum",
                  static_cast<std::int64_t>(
                      BrokerOptions{}.drr_quantum_cells)));
  broker.max_outstanding_cells =
      static_cast<std::size_t>(cli.get_int("max-outstanding-cells", 4096));
  broker.max_cells_per_request =
      static_cast<std::uint64_t>(cli.get_int("max-cells", 0));
  broker.batch.evaluator.cache_capacity = static_cast<std::size_t>(
      cli.get_int("evaluator-cache",
                  static_cast<std::int64_t>(
                      EvaluatorOptions{}.cache_capacity)));
  broker.cache.memo_capacity = static_cast<std::size_t>(
      cli.get_int("memo-bank",
                  static_cast<std::int64_t>(
                      ServiceCache::Options{}.memo_capacity)));
  broker.cache.max_problems =
      static_cast<std::size_t>(cli.get_int("max-problems", 64));

  ServiceServerOptions server_options;
  server_options.idle_timeout_seconds = cli.get_double("idle-timeout", 0.0);

  const auto trace_path = cli.get_or("trace", "");
  if (!trace_path.empty()) obs::start_tracing();

  try {
    ServiceServer server(port, broker, server_options);
    std::cout << "phonocd: listening on 127.0.0.1:" << server.port()
              << " (backend=" << backend_name
              << ", queue=" << broker.max_queue_depth
              << ", request-concurrency="
              << server.broker().worker_count() << ")" << std::endl;
    std::optional<obs::PromHttpServer> prom;
    if (cli.has("prom-port")) {
      prom.emplace(static_cast<std::uint16_t>(cli.get_int("prom-port", 0)),
                   [&server] { return server.broker().prometheus_text(); });
      std::cout << "phonocd: metrics on http://127.0.0.1:" << prom->port()
                << "/metrics" << std::endl;
    }
    server.run(static_cast<std::size_t>(max_conns));
    const auto snapshot = server.broker().metrics();
    std::cout << "phonocd: served " << snapshot.connections
              << " connection(s), " << snapshot.requests_accepted
              << " request(s) accepted, "
              << snapshot.shed_overloaded + snapshot.shed_budget +
                     snapshot.shed_deadline + snapshot.shed_shutdown
              << " shed" << std::endl;
    if (const auto csv = cli.get("stats-csv")) {
      std::ofstream out(*csv);
      out << snapshot.to_csv();
      if (!out) {
        std::cerr << "phonocd: cannot write " << *csv << "\n";
        return 1;
      }
      std::cout << "phonocd: metrics written to " << *csv << std::endl;
    }
  } catch (const std::exception& e) {
    std::cerr << "phonocd: " << e.what() << "\n";
    return 1;
  }
  if (!trace_path.empty()) {
    obs::stop_tracing();
    obs::write_chrome_trace_file(trace_path);
    std::cout << "phonocd: trace (" << obs::trace_event_count()
              << " events) written to " << trace_path << std::endl;
  }
  return 0;
}
