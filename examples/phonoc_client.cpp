/// \file phonoc_client.cpp
/// \brief Command-line client of the phonocd mapping service.
///
/// Dials a daemon, submits one sweep request (optionally several times
/// down the same connection) and reorders the streamed per-cell frames
/// into grid order. Doubles as the CI smoke harness: `--verify` proves
/// the served results bit-identical to a local in-process BatchEngine
/// run, `--expect-reject` asserts structured load shedding, and
/// `--timeout` turns a hung daemon into a clean exit code instead of a
/// stuck pipeline. With `--concurrency` it becomes a load generator:
/// N connections submit the same request in parallel and per-request
/// latencies land in `--latency-csv`.
///
///     phonoc_client --port=7501 --benchmarks=pip,mwd --optimizers=rs,ga
///                   --evals=500 --seeds=2 --verify
///
/// Flags:
///   --host=H --port=N     daemon endpoint (default 127.0.0.1:7501)
///   --id=NAME             request id (default "cli")
///   --client=NAME         announce a fairness identity in the
///                         handshake; connections sharing a name share
///                         one scheduler sub-queue (default: none —
///                         the daemon treats each connection as its
///                         own client)
///   --benchmarks=A,B,...  workload dimension (default pip)
///   --topology=mesh|torus --goal=snr|loss
///   --optimizers=o1,o2    optimizer dimension (default rs)
///   --evals=N --seeds=N   budget / seed dimensions
///   --sample --samples=N  switch the grid to Sample cells
///   --deadline=SECS       per-request deadline budget (0 = none)
///   --max-cells=N         per-request cell budget (0 = none)
///   --priority=auto|interactive|bulk  requested scheduling lane
///                         (default auto: the daemon routes by grid
///                         size)
///   --repeat=N            submit the identical request N times (the
///                         cross-request memo demo; default 1)
///   --concurrency=N       load-generator mode: N connections submit
///                         the request --repeat times each, in
///                         parallel (verify/expect-reject do not apply)
///   --latency-csv=FILE    write one CSV row per load-generator
///                         request: connection, round, cells, ok,
///                         failed, latency seconds
///   --stats               fetch and print the metrics snapshot instead
///   --stats-prometheus    fetch the Prometheus text exposition instead
///                         (same body `--prom-port` serves over HTTP)
///   --verify              compare against a local in-process run
///   --expect-reject=KIND  succeed iff the request is rejected with
///                         KIND (overloaded|budget|deadline|...)
///   --timeout=SECS        per-reply receive deadline (default 120)
///
/// Exit codes: 0 = success (including an expected rejection),
/// 2 = unexpected rejection / missing expected rejection,
/// 3 = connection, protocol or timeout failure, 4 = verify mismatch.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/batch_engine.hpp"
#include "sched/transport.hpp"
#include "service/protocol.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace phonoc;

/// Bit-exact comparison of the determinism-contract fields (everything
/// except the timing fields); mirrors parallel_sweep's verify.
bool identical_cells(const CellResult& got, const CellResult& want,
                     SweepTaskKind kind) {
  if (got.status != CellStatus::Ok || want.status != CellStatus::Ok ||
      got.seed != want.seed)
    return false;
  if (kind == SweepTaskKind::Sample)
    return identical_distributions(got.distribution, want.distribution);
  const auto& g = got.run;
  const auto& w = want.run;
  return g.algorithm == w.algorithm && g.search.best == w.search.best &&
         g.search.best_fitness == w.search.best_fitness &&
         g.search.evaluations == w.search.evaluations &&
         g.search.iterations == w.search.iterations &&
         g.best_evaluation.worst_loss_db == w.best_evaluation.worst_loss_db &&
         g.best_evaluation.worst_snr_db == w.best_evaluation.worst_snr_db;
}

/// The hello payload, with the optional fairness identity appended.
std::string hello_payload(const std::string& client) {
  if (client.empty()) return kServiceHello;
  return std::string(kServiceHello) + " client " + client;
}

/// One completed load-generator request.
struct LatencyRow {
  std::size_t connection = 0;
  std::size_t round = 0;
  std::size_t cells = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  double seconds = 0.0;
};

/// Drive one connection of the load generator: handshake, then submit
/// the request `repeats` times, recording submit -> done wall time.
/// Returns the worst exit code encountered (0, 2 or 3).
int run_load_connection(const std::string& endpoint, double timeout,
                        const std::string& client,
                        const ServiceRequest& base, std::size_t connection,
                        std::size_t repeats, std::vector<LatencyRow>& rows) {
  std::unique_ptr<Connection> conn;
  try {
    TcpTransport transport(timeout);
    conn = transport.connect(endpoint);
  } catch (const std::exception& e) {
    std::cerr << "phonoc_client: cannot reach " << endpoint << ": "
              << e.what() << "\n";
    return 3;
  }
  if (!conn->send(hello_payload(client))) return 3;
  try {
    const auto hello = conn->recv(timeout);
    if (hello.status != Connection::RecvStatus::Ok ||
        parse_reply(hello.payload).kind != ServiceReply::Kind::Hello)
      return 3;
  } catch (const std::exception&) {
    return 3;
  }
  int code = 0;
  for (std::size_t round = 0; round < repeats; ++round) {
    ServiceRequest request = base;
    request.id = base.id + "-c" + std::to_string(connection) + "-r" +
                 std::to_string(round);
    const Timer wall;
    if (!conn->send(write_request(request))) return 3;
    LatencyRow row;
    row.connection = connection;
    row.round = round;
    bool done = false;
    while (!done) {
      ServiceReply reply;
      try {
        const auto received = conn->recv(timeout);
        if (received.status != Connection::RecvStatus::Ok) return 3;
        reply = parse_reply(received.payload);
      } catch (const std::exception& e) {
        std::cerr << "phonoc_client: protocol failure: " << e.what() << "\n";
        return 3;
      }
      switch (reply.kind) {
        case ServiceReply::Kind::Accepted:
          row.cells = reply.cells;
          break;
        case ServiceReply::Kind::Cell:
          break;  // latency mode cares about completion, not payloads
        case ServiceReply::Kind::Done:
          row.ok = reply.ok;
          row.failed = reply.failed;
          row.seconds = wall.elapsed_seconds();
          rows.push_back(row);
          done = true;
          break;
        case ServiceReply::Kind::Rejected:
          std::cerr << "request " << reply.id << ": rejected ("
                    << reject_kind_token(reply.reject) << ") "
                    << reply.reason << "\n";
          code = std::max(code, 2);
          done = true;
          break;
        default:
          return 3;
      }
    }
  }
  (void)conn->send(kServiceQuit);
  return code;
}

/// Load-generator mode: `connections` threads submit `base` in
/// parallel; per-request latencies go to `csv_path` (when set) and a
/// latency summary to stdout.
int run_load_generator(const CliOptions& cli, const ServiceRequest& base,
                       const std::string& endpoint, double timeout,
                       const std::string& client) {
  const auto connections = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("concurrency", 1)));
  const auto repeats = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("repeat", 1)));
  std::vector<std::vector<LatencyRow>> rows(connections);
  std::vector<int> codes(connections, 0);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i)
    threads.emplace_back([&, i] {
      codes[i] = run_load_connection(endpoint, timeout, client, base, i,
                                     repeats, rows[i]);
    });
  for (auto& thread : threads) thread.join();

  std::vector<double> latencies;
  std::size_t completed = 0;
  for (const auto& per_conn : rows)
    for (const auto& row : per_conn) {
      latencies.push_back(row.seconds);
      ++completed;
    }
  std::sort(latencies.begin(), latencies.end());
  const auto quantile = [&](double q) {
    if (latencies.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(rank, latencies.size() - 1)];
  };
  std::cout << "load: " << completed << "/" << connections * repeats
            << " request(s) completed, latency p50 "
            << format_double(quantile(0.5)) << "s p99 "
            << format_double(quantile(0.99)) << "s\n";

  if (const auto csv = cli.get("latency-csv")) {
    std::ofstream out(*csv);
    out << "connection,round,cells,ok,failed,seconds\n";
    for (const auto& per_conn : rows)
      for (const auto& row : per_conn)
        out << row.connection << ',' << row.round << ',' << row.cells << ','
            << row.ok << ',' << row.failed << ','
            << format_double(row.seconds) << '\n';
    if (!out) {
      std::cerr << "phonoc_client: cannot write " << *csv << "\n";
      return 3;
    }
  }
  return *std::max_element(codes.begin(), codes.end());
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  const auto endpoint = cli.get_or("host", "127.0.0.1") + ":" +
                        std::to_string(cli.get_int("port", 7501));
  const double timeout = cli.get_double("timeout", 120.0);
  const auto expect_reject = cli.get("expect-reject");
  const auto client_name = cli.get_or("client", "");
  if (!client_name.empty()) {
    try {
      validate_request_id(client_name);
    } catch (const std::exception& e) {
      std::cerr << "phonoc_client: bad --client: " << e.what() << "\n";
      return 2;
    }
  }

  ServiceRequest request;
  request.id = cli.get_or("id", "cli");
  request.deadline_seconds = cli.get_double("deadline", 0.0);
  request.max_cells = static_cast<std::uint64_t>(cli.get_int("max-cells", 0));
  try {
    request.priority = parse_priority(cli.get_or("priority", "auto"));
    for (const auto& name : split(cli.get_or("benchmarks", "pip"), ','))
      if (!trim(name).empty())
        request.spec.add_benchmark(std::string(trim(name)));
    request.spec.add_topology(cli.get_or("topology", "mesh") == "torus"
                                  ? TopologyKind::Torus
                                  : TopologyKind::Mesh);
    request.spec.add_goal(cli.get_or("goal", "snr") == "loss"
                              ? OptimizationGoal::InsertionLoss
                              : OptimizationGoal::Snr);
    for (const auto& name : split(cli.get_or("optimizers", "rs"), ','))
      if (!trim(name).empty())
        request.spec.add_optimizer(std::string(trim(name)));
    request.spec
        .add_budget(static_cast<std::uint64_t>(cli.get_int("evals", 500)))
        .add_seed_range(1, static_cast<std::size_t>(cli.get_int("seeds", 1)));
    if (cli.has("sample")) {
      SamplingSpec sampling;
      sampling.samples_per_cell =
          static_cast<std::uint64_t>(cli.get_int("samples", 1000));
      request.spec.use_sampling(sampling);
    }
  } catch (const std::exception& e) {
    std::cerr << "phonoc_client: bad spec: " << e.what() << "\n";
    return 2;
  }

  if (cli.has("concurrency") && !cli.has("stats") &&
      !cli.has("stats-prometheus"))
    return run_load_generator(cli, request, endpoint, timeout, client_name);

  std::unique_ptr<Connection> conn;
  try {
    TcpTransport transport(timeout);
    conn = transport.connect(endpoint);
  } catch (const std::exception& e) {
    std::cerr << "phonoc_client: cannot reach " << endpoint << ": "
              << e.what() << "\n";
    return 3;
  }
  const auto recv_reply = [&]() -> std::optional<ServiceReply> {
    try {
      const auto received = conn->recv(timeout);
      if (received.status != Connection::RecvStatus::Ok) {
        std::cerr << "phonoc_client: "
                  << (received.status == Connection::RecvStatus::Timeout
                          ? "timed out waiting for the daemon"
                          : "daemon closed the connection")
                  << "\n";
        return std::nullopt;
      }
      return parse_reply(received.payload);
    } catch (const std::exception& e) {
      std::cerr << "phonoc_client: protocol failure: " << e.what() << "\n";
      return std::nullopt;
    }
  };

  if (!conn->send(hello_payload(client_name))) {
    std::cerr << "phonoc_client: handshake send failed\n";
    return 3;
  }
  const auto hello = recv_reply();
  if (!hello || hello->kind != ServiceReply::Kind::Hello) {
    std::cerr << "phonoc_client: no service handshake\n";
    return 3;
  }

  if (cli.has("stats") || cli.has("stats-prometheus")) {
    if (!conn->send(cli.has("stats-prometheus") ? kServiceStatsPrometheus
                                                : kServiceStats))
      return 3;
    const auto reply = recv_reply();
    if (!reply || reply->kind != ServiceReply::Kind::Stats) return 3;
    std::cout << reply->body;
    (void)conn->send(kServiceQuit);
    return 0;
  }

  const auto repeats = std::max<std::int64_t>(1, cli.get_int("repeat", 1));
  std::vector<CellResult> results;
  for (std::int64_t round = 0; round < repeats; ++round) {
    if (!conn->send(write_request(request))) {
      std::cerr << "phonoc_client: request send failed\n";
      return 3;
    }
    std::size_t expected = 0;
    std::vector<CellResult> streamed;
    std::vector<bool> seen;
    bool done = false;
    while (!done) {
      const auto reply = recv_reply();
      if (!reply) return 3;
      switch (reply->kind) {
        case ServiceReply::Kind::Accepted:
          expected = reply->cells;
          streamed.resize(expected);
          seen.assign(expected, false);
          break;
        case ServiceReply::Kind::Cell: {
          const auto index = reply->result.cell.index;
          if (index >= streamed.size()) {
            std::cerr << "phonoc_client: cell index " << index
                      << " out of range\n";
            return 3;
          }
          streamed[index] = reply->result;
          seen[index] = true;
          break;
        }
        case ServiceReply::Kind::Done: {
          for (std::size_t i = 0; i < seen.size(); ++i)
            if (!seen[i]) {
              std::cerr << "phonoc_client: done without cell " << i << "\n";
              return 3;
            }
          std::cout << "request " << reply->id << ": " << reply->ok
                    << " ok, " << reply->failed << " failed\n";
          done = true;
          break;
        }
        case ServiceReply::Kind::Rejected: {
          std::cout << "request " << reply->id << ": rejected ("
                    << reject_kind_token(reply->reject) << ") "
                    << reply->reason << "\n";
          (void)conn->send(kServiceQuit);
          if (expect_reject &&
              *expect_reject == reject_kind_token(reply->reject))
            return 0;
          return 2;
        }
        default:
          std::cerr << "phonoc_client: unexpected reply\n";
          return 3;
      }
    }
    results = std::move(streamed);
  }
  (void)conn->send(kServiceQuit);

  if (expect_reject) {
    std::cerr << "phonoc_client: expected a '" << *expect_reject
              << "' rejection, but the request completed\n";
    return 2;
  }

  if (cli.has("verify")) {
    const auto local = BatchEngine(BatchOptions{}).run(request.spec);
    if (local.size() != results.size()) {
      std::cerr << "verify: cell count mismatch\n";
      return 4;
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < local.size(); ++i)
      if (!identical_cells(results[i], local[i], request.spec.task_kind)) {
        std::cerr << "verify: cell " << i << " differs\n";
        ++mismatches;
      }
    if (mismatches != 0) return 4;
    std::cout << "verify: " << local.size()
              << " cell(s) bit-identical to the in-process run\n";
  }
  return 0;
}
