#include "routing/registry.hpp"

#include <map>

#include "routing/torus_dor.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

namespace {

std::map<std::string, RoutingFactory>& registry() {
  static std::map<std::string, RoutingFactory> instance = [] {
    std::map<std::string, RoutingFactory> m;
    m["xy"] = [] { return std::make_unique<XyRouting>(); };
    m["yx"] = [] { return std::make_unique<YxRouting>(); };
    m["torus_dor"] = [] { return std::make_unique<TorusDorRouting>(); };
    return m;
  }();
  return instance;
}

}  // namespace

void register_routing(const std::string& name, RoutingFactory factory) {
  require(!name.empty(), "register_routing: empty name");
  require(factory != nullptr, "register_routing: null factory");
  registry()[to_lower(name)] = std::move(factory);
}

std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name) {
  const auto it = registry().find(to_lower(name));
  if (it == registry().end()) {
    std::string known;
    for (const auto& [key, unused] : registry()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw InvalidArgument("unknown routing '" + name + "' (registered: " +
                          known + ")");
  }
  return it->second();
}

std::vector<std::string> registered_routings() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, unused] : registry()) names.push_back(key);
  return names;
}

}  // namespace phonoc
