#pragma once
/// \file table_routing.hpp
/// \brief Explicit per-pair routing table (arbitrary user routes), plus
/// a BFS shortest-path table generator for irregular topologies.

#include <map>
#include <utility>
#include <vector>

#include "routing/route.hpp"

namespace phonoc {

/// Routes are stored as direction sequences (output ports taken at each
/// hop, excluding the final Local ejection).
class TableRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "table"; }

  /// Define (or replace) the route for a pair.
  void set_route(TileId src, TileId dst, std::vector<PortId> directions);

  [[nodiscard]] bool has_route(TileId src, TileId dst) const noexcept;

  [[nodiscard]] Route compute_route(const Topology& topo, TileId src,
                                    TileId dst) const override;

  /// Build a complete table of BFS shortest paths (hop-count metric)
  /// over the topology's links. Deterministic: neighbour expansion
  /// follows link insertion order.
  [[nodiscard]] static TableRouting shortest_paths(const Topology& topo);

 private:
  std::map<std::pair<TileId, TileId>, std::vector<PortId>> table_;
};

}  // namespace phonoc
