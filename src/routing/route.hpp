#pragma once
/// \file route.hpp
/// \brief Network route representation and the routing-algorithm
/// interface (paper Fig. 1: routing algorithm is an input/extension
/// point of the architecture description).

#include <memory>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace phonoc {

/// One router traversal: light enters `tile`'s router at `in_port` and
/// leaves at `out_port`. The first hop of a route enters at the Local
/// port (injection), the last exits at the Local port (ejection); a
/// single-hop route does both in the same router.
struct Hop {
  TileId tile;
  PortId in_port;
  PortId out_port;
};

/// A source-to-destination path: hops through routers and the links
/// connecting consecutive hops (links.size() == hops.size() - 1).
struct Route {
  std::vector<Hop> hops;
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hop_count() const noexcept { return hops.size(); }

  /// Total link length in cm over the topology's links.
  [[nodiscard]] double total_link_length_cm(const Topology& topo) const;
};

/// Verify structural consistency of a route on a topology: starts at
/// `src` with Local in-port, ends at `dst` with Local out-port, every
/// intermediate (out_port, link, in_port) triple matches the topology.
/// Throws ModelError with a description when inconsistent.
void validate_route(const Topology& topo, const Route& route, TileId src,
                    TileId dst);

/// Deterministic routing algorithm: one route per (src, dst) pair.
class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Compute the route src -> dst. Requires src != dst; implementations
  /// throw ModelError when the pair is unreachable.
  [[nodiscard]] virtual Route compute_route(const Topology& topo, TileId src,
                                            TileId dst) const = 0;
};

/// Helper for grid routing algorithms: extend `route` by moving out of
/// its last tile through `direction` (following the topology link) and
/// entering the neighbouring tile. The new hop's out_port is left as
/// Local; callers overwrite it unless the hop is final.
void extend_route(const Topology& topo, Route& route, PortId direction);

/// Start a route at `src` (Local in-port, out-port filled later).
[[nodiscard]] Route start_route(TileId src);

}  // namespace phonoc
