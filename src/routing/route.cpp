#include "routing/route.hpp"

#include "util/error.hpp"

namespace phonoc {

double Route::total_link_length_cm(const Topology& topo) const {
  double sum = 0.0;
  for (const auto id : links) sum += topo.link(id).length_cm;
  return sum;
}

void validate_route(const Topology& topo, const Route& route, TileId src,
                    TileId dst) {
  require_model(!route.hops.empty(), "route: empty hop list");
  require_model(route.links.size() + 1 == route.hops.size(),
                "route: link/hop count mismatch");
  require_model(route.hops.front().tile == src,
                "route: does not start at the source tile");
  require_model(route.hops.front().in_port == kPortLocal,
                "route: source hop must enter at the Local port");
  require_model(route.hops.back().tile == dst,
                "route: does not end at the destination tile");
  require_model(route.hops.back().out_port == kPortLocal,
                "route: destination hop must exit at the Local port");
  for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
    const auto& from = route.hops[i];
    const auto& to = route.hops[i + 1];
    const auto& link = topo.link(route.links[i]);
    require_model(link.src_tile == from.tile && link.src_port == from.out_port,
                  "route: link does not leave the previous hop's out port");
    require_model(link.dst_tile == to.tile && link.dst_port == to.in_port,
                  "route: link does not enter the next hop's in port");
  }
}

void extend_route(const Topology& topo, Route& route, PortId direction) {
  require_model(!route.hops.empty(), "extend_route: route not started");
  auto& last = route.hops.back();
  const auto link_id = topo.link_from(last.tile, direction);
  require_model(link_id != kInvalidLink,
                "extend_route: no link through port " +
                    standard_port_name(direction) + " from tile " +
                    std::to_string(last.tile));
  const auto& link = topo.link(link_id);
  last.out_port = direction;
  route.links.push_back(link_id);
  route.hops.push_back(Hop{link.dst_tile, link.dst_port, kPortLocal});
}

Route start_route(TileId src) {
  Route route;
  route.hops.push_back(Hop{src, kPortLocal, kPortLocal});
  return route;
}

}  // namespace phonoc
