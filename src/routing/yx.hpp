#pragma once
/// \file yx.hpp
/// \brief YX dimension-order routing (extension beyond the paper).
///
/// Routes the Y dimension first. Note that YX emits Y-to-X turns, which
/// Crux deliberately does not support: building a NetworkModel with
/// Crux + YX throws a ModelError, demonstrating the connection-set
/// validation. Use the full crossbar router with YX.

#include "routing/route.hpp"

namespace phonoc {

class YxRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "yx"; }
  [[nodiscard]] Route compute_route(const Topology& topo, TileId src,
                                    TileId dst) const override;
};

}  // namespace phonoc
