#pragma once
/// \file xy.hpp
/// \brief XY dimension-order routing on a mesh (the paper's default).

#include "routing/route.hpp"

namespace phonoc {

/// Route along the X dimension (columns, East/West) first, then Y
/// (rows, North/South). Minimal and deadlock-free on meshes; only uses
/// the XY-legal connection set (Crux-compatible).
class XyRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "xy"; }
  [[nodiscard]] Route compute_route(const Topology& topo, TileId src,
                                    TileId dst) const override;
};

}  // namespace phonoc
