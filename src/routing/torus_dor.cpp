#include "routing/torus_dor.hpp"

#include "util/error.hpp"

namespace phonoc {

namespace {

/// Steps and direction along one cyclic dimension of size `extent`:
/// positive result = move in the increasing direction (East/South),
/// negative = decreasing. Shortest way; ties go to increasing.
int cyclic_delta(std::uint32_t from, std::uint32_t to, std::uint32_t extent) {
  const int forward =
      static_cast<int>((to + extent - from) % extent);  // increasing steps
  const int backward = static_cast<int>(extent) - forward;
  return forward <= backward ? forward : -backward;
}

}  // namespace

Route TorusDorRouting::compute_route(const Topology& topo, TileId src,
                                     TileId dst) const {
  require(src != dst, "TorusDorRouting: src == dst");
  const auto from = topo.position(src);
  const auto to = topo.position(dst);

  auto route = start_route(src);
  const int dx = cyclic_delta(from.col, to.col, topo.cols());
  for (int i = 0; i < dx; ++i) extend_route(topo, route, kPortEast);
  for (int i = 0; i > dx; --i) extend_route(topo, route, kPortWest);
  const int dy = cyclic_delta(from.row, to.row, topo.rows());
  for (int i = 0; i < dy; ++i) extend_route(topo, route, kPortSouth);
  for (int i = 0; i > dy; --i) extend_route(topo, route, kPortNorth);

  route.hops.back().out_port = kPortLocal;
  validate_route(topo, route, src, dst);
  return route;
}

}  // namespace phonoc
