#pragma once
/// \file torus_dor.hpp
/// \brief Dimension-order routing on a torus with shortest-way wrap
/// selection (X first, then Y; ties broken toward East/South).

#include "routing/route.hpp"

namespace phonoc {

class TorusDorRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "torus_dor"; }
  [[nodiscard]] Route compute_route(const Topology& topo, TileId src,
                                    TileId dst) const override;
};

}  // namespace phonoc
