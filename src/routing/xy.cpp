#include "routing/xy.hpp"

#include "util/error.hpp"

namespace phonoc {

Route XyRouting::compute_route(const Topology& topo, TileId src,
                               TileId dst) const {
  require(src != dst, "XyRouting: src == dst");
  const auto from = topo.position(src);
  const auto to = topo.position(dst);

  auto route = start_route(src);
  // X dimension: columns (East increases col).
  for (std::uint32_t c = from.col; c < to.col; ++c)
    extend_route(topo, route, kPortEast);
  for (std::uint32_t c = from.col; c > to.col; --c)
    extend_route(topo, route, kPortWest);
  // Y dimension: rows (South increases row; row 0 is the north edge).
  for (std::uint32_t r = from.row; r < to.row; ++r)
    extend_route(topo, route, kPortSouth);
  for (std::uint32_t r = from.row; r > to.row; --r)
    extend_route(topo, route, kPortNorth);

  route.hops.back().out_port = kPortLocal;
  validate_route(topo, route, src, dst);
  return route;
}

}  // namespace phonoc
