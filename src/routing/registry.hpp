#pragma once
/// \file registry.hpp
/// \brief Name-based routing-algorithm factory.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "routing/route.hpp"

namespace phonoc {

using RoutingFactory = std::function<std::unique_ptr<RoutingAlgorithm>()>;

void register_routing(const std::string& name, RoutingFactory factory);

/// Instantiate by name; built-ins: "xy", "yx", "torus_dor".
[[nodiscard]] std::unique_ptr<RoutingAlgorithm> make_routing(
    const std::string& name);

[[nodiscard]] std::vector<std::string> registered_routings();

}  // namespace phonoc
