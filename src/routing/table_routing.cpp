#include "routing/table_routing.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace phonoc {

void TableRouting::set_route(TileId src, TileId dst,
                             std::vector<PortId> directions) {
  require(src != dst, "TableRouting::set_route: src == dst");
  require(!directions.empty(), "TableRouting::set_route: empty route");
  table_[{src, dst}] = std::move(directions);
}

bool TableRouting::has_route(TileId src, TileId dst) const noexcept {
  return table_.count({src, dst}) > 0;
}

Route TableRouting::compute_route(const Topology& topo, TileId src,
                                  TileId dst) const {
  require(src != dst, "TableRouting: src == dst");
  const auto it = table_.find({src, dst});
  require_model(it != table_.end(),
                "TableRouting: no route for pair " + std::to_string(src) +
                    " -> " + std::to_string(dst));
  auto route = start_route(src);
  for (const auto direction : it->second)
    extend_route(topo, route, direction);
  route.hops.back().out_port = kPortLocal;
  validate_route(topo, route, src, dst);
  return route;
}

TableRouting TableRouting::shortest_paths(const Topology& topo) {
  TableRouting table;
  const auto tiles = topo.tile_count();
  for (TileId src = 0; src < tiles; ++src) {
    // BFS over links from src, remembering the (previous tile, direction)
    // that first reached each tile.
    std::vector<TileId> prev(tiles, kInvalidTile);
    std::vector<PortId> dir_taken(tiles, 0);
    std::vector<bool> seen(tiles, false);
    std::queue<TileId> frontier;
    frontier.push(src);
    seen[src] = true;
    while (!frontier.empty()) {
      const auto t = frontier.front();
      frontier.pop();
      for (PortId port = 0; port < topo.router_ports(); ++port) {
        const auto link_id = topo.link_from(t, port);
        if (link_id == kInvalidLink) continue;
        const auto& link = topo.link(link_id);
        if (seen[link.dst_tile]) continue;
        seen[link.dst_tile] = true;
        prev[link.dst_tile] = t;
        dir_taken[link.dst_tile] = port;
        frontier.push(link.dst_tile);
      }
    }
    for (TileId dst = 0; dst < tiles; ++dst) {
      if (dst == src || !seen[dst]) continue;
      std::vector<PortId> directions;
      for (TileId t = dst; t != src; t = prev[t])
        directions.push_back(dir_taken[t]);
      std::reverse(directions.begin(), directions.end());
      table.set_route(src, dst, std::move(directions));
    }
  }
  return table;
}

}  // namespace phonoc
