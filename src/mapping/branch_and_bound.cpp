#include "mapping/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace phonoc {

namespace {

struct SearchContext {
  const CommGraph& cg;
  const NetworkModel& net;
  SearchState& state;
  const std::vector<NodeId>& order;       ///< task placement order
  std::vector<int>& tile_of;              ///< task -> tile or -1
  std::vector<bool>& occupied;            ///< tile -> taken
  std::vector<CommGraph::EdgeView> edges;
  /// best_free_loss[task] = best (closest to 0) loss achievable for any
  /// edge of `task` if it were placed on the best possible free tile;
  /// recomputing exactly is quadratic, so we use the static bound over
  /// *all* tiles (valid: free subset of all).
  std::vector<double> optimistic_edge_loss;
  double incumbent = -std::numeric_limits<double>::infinity();
  std::uint64_t nodes = 0;
  bool complete = true;
};

/// Loss of the worst already-decided edge under the partial assignment.
double partial_worst(const SearchContext& ctx) {
  double worst = 0.0;
  for (const auto& e : ctx.edges) {
    const int s = ctx.tile_of[e.src];
    const int d = ctx.tile_of[e.dst];
    if (s < 0 || d < 0) continue;
    worst = std::min(worst, ctx.net.path_loss_db(static_cast<TileId>(s),
                                                 static_cast<TileId>(d)));
  }
  return worst;
}

void descend(SearchContext& ctx, std::size_t depth) {
  if (ctx.state.exhausted()) {
    ctx.complete = false;
    return;
  }
  ++ctx.nodes;
  if (depth == ctx.order.size()) {
    std::vector<TileId> assignment(ctx.cg.task_count());
    for (NodeId t = 0; t < ctx.cg.task_count(); ++t)
      assignment[t] = static_cast<TileId>(ctx.tile_of[t]);
    const double fitness = ctx.state.evaluate(
        Mapping::from_assignment(std::move(assignment),
                                 ctx.occupied.size()));
    ctx.incumbent = std::max(ctx.incumbent, fitness);
    return;
  }

  const auto task = ctx.order[depth];
  // Candidate tiles, best-first by the loss of edges to already-placed
  // partners (good incumbents early = strong pruning).
  std::vector<std::pair<double, TileId>> candidates;
  for (TileId tile = 0; tile < ctx.occupied.size(); ++tile) {
    if (ctx.occupied[tile]) continue;
    double worst_new = 0.0;
    for (const auto& e : ctx.edges) {
      if (e.src == task && ctx.tile_of[e.dst] >= 0)
        worst_new = std::min(
            worst_new,
            ctx.net.path_loss_db(tile,
                                 static_cast<TileId>(ctx.tile_of[e.dst])));
      else if (e.dst == task && ctx.tile_of[e.src] >= 0)
        worst_new = std::min(
            worst_new,
            ctx.net.path_loss_db(static_cast<TileId>(ctx.tile_of[e.src]),
                                 tile));
    }
    candidates.emplace_back(worst_new, tile);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  const double already = partial_worst(ctx);
  for (const auto& [new_edge_worst, tile] : candidates) {
    // Bound 1: decided edges (incl. this placement) cannot improve.
    const double bound = std::min(already, new_edge_worst);
    if (bound <= ctx.incumbent) continue;  // maximization: prune
    // Bound 2: optimistic bound for edges with undecided endpoints.
    double optimistic = bound;
    for (std::size_t later = depth + 1; later < ctx.order.size(); ++later)
      optimistic =
          std::min(optimistic, ctx.optimistic_edge_loss[ctx.order[later]]);
    if (optimistic <= ctx.incumbent) continue;

    ctx.tile_of[task] = static_cast<int>(tile);
    ctx.occupied[tile] = true;
    descend(ctx, depth + 1);
    ctx.occupied[tile] = false;
    ctx.tile_of[task] = -1;
    if (ctx.state.exhausted()) {
      ctx.complete = false;
      return;
    }
  }
}

}  // namespace

BranchAndBound::BranchAndBound(CommGraph cg,
                               std::shared_ptr<const NetworkModel> network)
    : cg_(std::move(cg)), network_(std::move(network)) {
  require(network_ != nullptr, "BranchAndBound: null network");
  cg_.validate();
}

OptimizerResult BranchAndBound::optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const {
  require(task_count == cg_.task_count(),
          "BranchAndBound: task count mismatch with the CG");
  require(tile_count == network_->tile_count(),
          "BranchAndBound: tile count mismatch with the network");
  SearchState state(fitness, task_count, tile_count, budget, seed);

  // Place high-degree tasks first: their edges decide early and prune.
  std::vector<NodeId> order(task_count);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::vector<std::size_t> degree(task_count, 0);
  for (const auto& e : cg_.edges()) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });

  // Optimistic per-task edge bound: the single cheapest path loss in the
  // whole network bounds any still-undecided edge. Per-task refinement:
  // a task with at least one edge cannot beat the network's best pair.
  double best_pair_loss = -std::numeric_limits<double>::infinity();
  for (TileId s = 0; s < tile_count; ++s)
    for (TileId d = 0; d < tile_count; ++d)
      if (s != d)
        best_pair_loss = std::max(best_pair_loss,
                                  network_->path_loss_db(s, d));
  std::vector<double> optimistic(task_count, 0.0);
  for (NodeId t = 0; t < task_count; ++t)
    if (degree[t] > 0) optimistic[t] = best_pair_loss;

  std::vector<int> tile_of(task_count, -1);
  std::vector<bool> occupied(tile_count, false);
  SearchContext ctx{cg_,     *network_, state,    order,
                    tile_of, occupied,  cg_.edges(), optimistic};
  descend(ctx, 0);
  proved_optimal_ = ctx.complete;

  // A fully pruned search can finish without ever evaluating a complete
  // mapping (when pruning is driven by an externally better incumbent
  // this cannot happen here, but a zero-edge CG prunes nothing and a
  // one-node order always reaches a leaf). Guarantee one evaluation.
  if (!state.has_best()) {
    Rng rng(seed);
    state.evaluate(Mapping::random(task_count, tile_count, rng));
  }
  return state.finish(ctx.nodes);
}

}  // namespace phonoc
