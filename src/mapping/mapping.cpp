#include "mapping/mapping.hpp"

#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace phonoc {

std::uint64_t assignment_hash(std::span<const TileId> assignment) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + assignment.size();
  for (const auto tile : assignment) {
    std::uint64_t state = h ^ (static_cast<std::uint64_t>(tile) +
                               0xbf58476d1ce4e5b9ULL);
    h = splitmix64(state);
  }
  return h;
}

Mapping::Mapping(std::vector<TileId> assignment, std::size_t tiles)
    : assignment_(std::move(assignment)), tile_to_task_(tiles, -1) {
  require(assignment_.size() <= tiles,
          "Mapping: more tasks than tiles (violates Eq. 2)");
  for (std::size_t task = 0; task < assignment_.size(); ++task) {
    const auto tile = assignment_[task];
    require(tile < tiles, "Mapping: tile out of range");
    require(tile_to_task_[tile] < 0,
            "Mapping: two tasks on one tile (violates Eq. 6)");
    tile_to_task_[tile] = static_cast<int>(task);
  }
}

Mapping Mapping::identity(std::size_t tasks, std::size_t tiles) {
  std::vector<TileId> assignment(tasks);
  std::iota(assignment.begin(), assignment.end(), TileId{0});
  return Mapping(std::move(assignment), tiles);
}

Mapping Mapping::random(std::size_t tasks, std::size_t tiles, Rng& rng) {
  require(tasks <= tiles, "Mapping::random: more tasks than tiles");
  std::vector<TileId> tile_order(tiles);
  std::iota(tile_order.begin(), tile_order.end(), TileId{0});
  rng.shuffle(tile_order);
  tile_order.resize(tasks);
  return Mapping(std::move(tile_order), tiles);
}

Mapping Mapping::from_assignment(std::vector<TileId> assignment,
                                 std::size_t tiles) {
  return Mapping(std::move(assignment), tiles);
}

TileId Mapping::tile_of(NodeId task) const {
  require(task < assignment_.size(), "Mapping::tile_of: task out of range");
  return assignment_[task];
}

int Mapping::task_at(TileId tile) const {
  require(tile < tile_to_task_.size(), "Mapping::task_at: tile out of range");
  return tile_to_task_[tile];
}

std::uint64_t Mapping::hash() const noexcept {
  return assignment_hash(assignment_);
}

void Mapping::swap_tiles(TileId a, TileId b) {
  require(a < tile_to_task_.size() && b < tile_to_task_.size(),
          "Mapping::swap_tiles: tile out of range");
  if (a == b) return;
  const int task_a = tile_to_task_[a];
  const int task_b = tile_to_task_[b];
  if (task_a >= 0) assignment_[static_cast<std::size_t>(task_a)] = b;
  if (task_b >= 0) assignment_[static_cast<std::size_t>(task_b)] = a;
  std::swap(tile_to_task_[a], tile_to_task_[b]);
}

void Mapping::move_task(NodeId task, TileId tile) {
  require(task < assignment_.size(), "Mapping::move_task: task out of range");
  require(tile < tile_to_task_.size(),
          "Mapping::move_task: tile out of range");
  require(tile_to_task_[tile] < 0, "Mapping::move_task: tile occupied");
  tile_to_task_[assignment_[task]] = -1;
  assignment_[task] = tile;
  tile_to_task_[tile] = static_cast<int>(task);
}

}  // namespace phonoc
