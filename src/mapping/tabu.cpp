#include "mapping/tabu.hpp"

#include <map>
#include <utility>

#include "util/error.hpp"

namespace phonoc {

TabuSearch::TabuSearch(TabuOptions options) : options_(options) {
  require(options_.candidates_per_tile > 0.0,
          "TabuSearch: candidates_per_tile must be positive");
  require(options_.tenure >= 1, "TabuSearch: tenure must be >= 1");
  require(options_.restart_after >= 1,
          "TabuSearch: restart_after must be >= 1");
}

OptimizerResult TabuSearch::optimize(FitnessFunction& fitness,
                                     std::size_t task_count,
                                     std::size_t tile_count,
                                     const OptimizerBudget& budget,
                                     std::uint64_t seed) const {
  SearchState state(fitness, task_count, tile_count, budget, seed);
  auto& rng = state.rng();

  Mapping current = Mapping::random(task_count, tile_count, rng);
  double current_fitness = state.evaluate(current);
  // Tabu book-keeping: (a, b) -> iteration until which the pair is tabu.
  std::map<std::pair<TileId, TileId>, std::uint64_t> tabu_until;
  const auto candidates = static_cast<std::size_t>(std::max(
      1.0, options_.candidates_per_tile * static_cast<double>(tile_count)));

  std::uint64_t iteration = 0;
  std::size_t stagnation = 0;
  while (!state.exhausted()) {
    ++iteration;
    bool found = false;
    double best_move_fitness = 0.0;
    std::pair<TileId, TileId> best_move{0, 0};
    for (std::size_t c = 0; c < candidates && !state.exhausted(); ++c) {
      auto a = static_cast<TileId>(rng.next_below(tile_count));
      auto b = static_cast<TileId>(rng.next_below(tile_count));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      if (current.task_at(a) < 0 && current.task_at(b) < 0) continue;
      const double moved = state.propose_swap(current, a, b);
      state.revert_move(current, a, b);
      const auto it = tabu_until.find({a, b});
      const bool is_tabu = it != tabu_until.end() && it->second > iteration;
      // Aspiration: a tabu move is admitted when it beats the incumbent.
      if (is_tabu && moved <= state.best_fitness()) continue;
      if (!found || moved > best_move_fitness) {
        found = true;
        best_move_fitness = moved;
        best_move = {a, b};
      }
    }
    if (found) {
      // The winning candidate's fitness is already known: adopt the swap
      // without spending an evaluation.
      state.apply_move(current, best_move.first, best_move.second);
      tabu_until[best_move] = iteration + options_.tenure;
      stagnation = best_move_fitness > current_fitness ? 0 : stagnation + 1;
      current_fitness = best_move_fitness;
    } else {
      ++stagnation;
    }
    if (stagnation >= options_.restart_after) {
      current = Mapping::random(task_count, tile_count, rng);
      current_fitness = state.evaluate(current);
      tabu_until.clear();
      stagnation = 0;
    }
  }
  return state.finish(iteration);
}

}  // namespace phonoc
