#include "mapping/registry.hpp"

#include <map>

#include "mapping/annealing.hpp"
#include "mapping/exhaustive.hpp"
#include "mapping/genetic.hpp"
#include "mapping/random_search.hpp"
#include "mapping/rpbla.hpp"
#include "mapping/tabu.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

namespace {

std::map<std::string, OptimizerFactory>& registry() {
  static std::map<std::string, OptimizerFactory> instance = [] {
    std::map<std::string, OptimizerFactory> m;
    m["rs"] = [] { return std::make_unique<RandomSearch>(); };
    m["ga"] = [] { return std::make_unique<GeneticAlgorithm>(); };
    m["rpbla"] = [] { return std::make_unique<Rpbla>(); };
    m["sa"] = [] { return std::make_unique<SimulatedAnnealing>(); };
    m["tabu"] = [] { return std::make_unique<TabuSearch>(); };
    m["exhaustive"] = [] { return std::make_unique<ExhaustiveSearch>(); };
    return m;
  }();
  return instance;
}

}  // namespace

void register_optimizer(const std::string& name, OptimizerFactory factory) {
  require(!name.empty(), "register_optimizer: empty name");
  require(factory != nullptr, "register_optimizer: null factory");
  registry()[to_lower(name)] = std::move(factory);
}

std::unique_ptr<MappingOptimizer> make_optimizer(const std::string& name) {
  const auto it = registry().find(to_lower(name));
  if (it == registry().end()) {
    std::string known;
    for (const auto& [key, unused] : registry()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw InvalidArgument("unknown optimizer '" + name + "' (registered: " +
                          known + ")");
  }
  return it->second();
}

std::vector<std::string> registered_optimizers() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, unused] : registry()) names.push_back(key);
  return names;
}

}  // namespace phonoc
