#pragma once
/// \file mapping.hpp
/// \brief The mapping function Omega: C -> T (paper Eq. 5/6): every task
/// on exactly one tile, every tile hosting at most one task.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace phonoc {

/// SplitMix64-mixed hash of a task->tile assignment. Position-sensitive
/// (the same tile set in a different task order hashes differently).
/// Collisions are possible — memoization callers must confirm with a
/// full-assignment equality check before trusting a bucket.
[[nodiscard]] std::uint64_t assignment_hash(
    std::span<const TileId> assignment) noexcept;

class Mapping {
 public:
  Mapping() = default;

  /// Identity-ish mapping: task i on tile i. Requires tasks <= tiles.
  static Mapping identity(std::size_t tasks, std::size_t tiles);

  /// Uniform random injective mapping.
  static Mapping random(std::size_t tasks, std::size_t tiles, Rng& rng);

  /// Adopt an explicit assignment (validated: injective, in range).
  static Mapping from_assignment(std::vector<TileId> assignment,
                                 std::size_t tiles);

  [[nodiscard]] std::size_t task_count() const noexcept {
    return assignment_.size();
  }
  [[nodiscard]] std::size_t tile_count() const noexcept {
    return tile_to_task_.size();
  }

  [[nodiscard]] TileId tile_of(NodeId task) const;
  /// Task on `tile`, or -1 when the tile is empty.
  [[nodiscard]] int task_at(TileId tile) const;

  [[nodiscard]] std::span<const TileId> assignment() const noexcept {
    return assignment_;
  }

  /// Swap the contents of two tiles (task<->task, task<->empty or
  /// no-op for empty<->empty). This is the R-PBLA move.
  void swap_tiles(TileId a, TileId b);

  /// Move `task` to `tile`; the tile must be empty.
  void move_task(NodeId task, TileId tile);

  [[nodiscard]] bool operator==(const Mapping& other) const noexcept {
    return assignment_ == other.assignment_ &&
           tile_count() == other.tile_count();
  }

  /// 64-bit hash of the assignment (see assignment_hash); the key the
  /// evaluation memoization layer buckets by.
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  Mapping(std::vector<TileId> assignment, std::size_t tiles);

  std::vector<TileId> assignment_;   ///< task -> tile
  std::vector<int> tile_to_task_;    ///< tile -> task or -1
};

}  // namespace phonoc
