#pragma once
/// \file greedy.hpp
/// \brief Greedy constructive mapping + local descent (extension).
///
/// Classic NoC-mapping constructive heuristic adapted to the photonic
/// objectives: order tasks by communication volume, place the first at
/// the grid center, then place each next task on the empty tile that
/// minimizes the bandwidth-weighted hop distance to its already-placed
/// communication partners. The constructed mapping is then refined by
/// steepest-descent tile swaps until a local optimum or budget
/// exhaustion. Unlike the context-free optimizers this one needs the CG
/// and the topology, so it is constructed explicitly (the core Engine
/// does this for you).

#include "graph/comm_graph.hpp"
#include "mapping/optimizer.hpp"
#include "topology/topology.hpp"

namespace phonoc {

class GreedyConstructive final : public MappingOptimizer {
 public:
  GreedyConstructive(CommGraph cg, Topology topology);
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;

 private:
  CommGraph cg_;
  Topology topology_;
};

}  // namespace phonoc
