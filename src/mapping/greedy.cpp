#include "mapping/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace phonoc {

namespace {

/// All-pairs hop distances over the topology's links (BFS per tile).
std::vector<std::vector<std::uint32_t>> hop_distances(const Topology& topo) {
  const auto tiles = topo.tile_count();
  std::vector<std::vector<std::uint32_t>> dist(
      tiles, std::vector<std::uint32_t>(tiles, ~std::uint32_t{0}));
  for (TileId src = 0; src < tiles; ++src) {
    auto& d = dist[src];
    d[src] = 0;
    std::queue<TileId> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
      const auto t = frontier.front();
      frontier.pop();
      for (PortId port = 0; port < topo.router_ports(); ++port) {
        const auto link_id = topo.link_from(t, port);
        if (link_id == kInvalidLink) continue;
        const auto next = topo.link(link_id).dst_tile;
        if (d[next] != ~std::uint32_t{0}) continue;
        d[next] = d[t] + 1;
        frontier.push(next);
      }
    }
  }
  return dist;
}

}  // namespace

GreedyConstructive::GreedyConstructive(CommGraph cg, Topology topology)
    : cg_(std::move(cg)), topology_(std::move(topology)) {}

OptimizerResult GreedyConstructive::optimize(FitnessFunction& fitness,
                                             std::size_t task_count,
                                             std::size_t tile_count,
                                             const OptimizerBudget& budget,
                                             std::uint64_t seed) const {
  require(task_count == cg_.task_count(),
          "GreedyConstructive: task count mismatch with the CG");
  require(tile_count == topology_.tile_count(),
          "GreedyConstructive: tile count mismatch with the topology");
  SearchState state(fitness, task_count, tile_count, budget, seed);

  const auto dist = hop_distances(topology_);
  const auto edges = cg_.edges();

  // Per-task total communication volume (in + out), for ordering.
  std::vector<double> volume(task_count, 0.0);
  for (const auto& e : edges) {
    volume[e.src] += e.bandwidth_mbps;
    volume[e.dst] += e.bandwidth_mbps;
  }
  std::vector<NodeId> order(task_count);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (volume[a] != volume[b]) return volume[a] > volume[b];
    return a < b;
  });

  // Center tile: minimum total hop distance to all tiles.
  TileId center = 0;
  std::uint64_t best_sum = ~std::uint64_t{0};
  for (TileId t = 0; t < tile_count; ++t) {
    std::uint64_t sum = 0;
    for (TileId u = 0; u < tile_count; ++u) sum += dist[t][u];
    if (sum < best_sum) {
      best_sum = sum;
      center = t;
    }
  }

  // Constructive placement.
  std::vector<int> tile_of(task_count, -1);
  std::vector<bool> occupied(tile_count, false);
  tile_of[order.front()] = static_cast<int>(center);
  occupied[center] = true;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto task = order[i];
    TileId best_tile = kInvalidTile;
    double best_cost = std::numeric_limits<double>::infinity();
    for (TileId tile = 0; tile < tile_count; ++tile) {
      if (occupied[tile]) continue;
      double cost = 0.0;
      for (const auto& e : edges) {
        const NodeId partner =
            e.src == task ? e.dst : (e.dst == task ? e.src : kInvalidNode);
        if (partner == kInvalidNode || tile_of[partner] < 0) continue;
        cost += e.bandwidth_mbps *
                static_cast<double>(
                    dist[tile][static_cast<TileId>(tile_of[partner])]);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_tile = tile;
      }
    }
    tile_of[task] = static_cast<int>(best_tile);
    occupied[best_tile] = true;
  }

  std::vector<TileId> assignment(task_count);
  for (NodeId t = 0; t < task_count; ++t)
    assignment[t] = static_cast<TileId>(tile_of[t]);
  Mapping current = Mapping::from_assignment(std::move(assignment),
                                             tile_count);
  double current_fitness = state.evaluate(current);

  // Steepest-descent refinement (single run, no restart).
  std::uint64_t passes = 0;
  bool improved = true;
  while (improved && !state.exhausted()) {
    ++passes;
    improved = false;
    double best_move_fitness = current_fitness;
    std::pair<TileId, TileId> best_move{0, 0};
    for (TileId a = 0; a < tile_count && !state.exhausted(); ++a) {
      for (TileId b = a + 1; b < tile_count && !state.exhausted(); ++b) {
        if (current.task_at(a) < 0 && current.task_at(b) < 0) continue;
        current.swap_tiles(a, b);
        const double moved = state.evaluate(current);
        current.swap_tiles(a, b);
        if (moved > best_move_fitness) {
          best_move_fitness = moved;
          best_move = {a, b};
          improved = true;
        }
      }
    }
    if (improved) {
      current.swap_tiles(best_move.first, best_move.second);
      current_fitness = best_move_fitness;
    }
  }
  return state.finish(passes);
}

}  // namespace phonoc
