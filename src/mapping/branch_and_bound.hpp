#pragma once
/// \file branch_and_bound.hpp
/// \brief Exact branch-and-bound solver for the insertion-loss objective
/// (Eq. 3). Extension beyond the paper's heuristics: certifies optimal
/// worst-case loss on small and mid-size instances, which the test suite
/// uses to grade the heuristics beyond tiny exhaustive cases.
///
/// The max-min structure of the loss objective prunes aggressively: the
/// worst edge loss of a partial assignment can only get worse as tasks
/// are added, and an unassigned endpoint's edge is bounded by the best
/// loss any free tile could still give it. The SNR objective has no such
/// monotone bound (noise depends on every other placement), so this
/// solver is loss-only by design.

#include "graph/comm_graph.hpp"
#include "mapping/optimizer.hpp"
#include "model/network_model.hpp"

namespace phonoc {

class BranchAndBound final : public MappingOptimizer {
 public:
  /// The solver needs direct network access for its bounds; the
  /// FitnessFunction passed to optimize() is still used to score
  /// complete mappings so budgets and traces work like any optimizer.
  /// The fitness must be the worst-loss objective on the same problem.
  BranchAndBound(CommGraph cg, std::shared_ptr<const NetworkModel> network);

  [[nodiscard]] std::string name() const override { return "bnb"; }

  /// Runs to completion (proved optimum) unless the budget preempts it;
  /// `iterations` in the result counts explored search nodes, and
  /// `proved_optimal()` reports whether the last run finished.
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;

  [[nodiscard]] bool proved_optimal() const noexcept {
    return proved_optimal_;
  }

 private:
  CommGraph cg_;
  std::shared_ptr<const NetworkModel> network_;
  mutable bool proved_optimal_ = false;
};

}  // namespace phonoc
