#include "mapping/genetic.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace phonoc {

namespace {

/// A permutation of all tiles; positions [0, tasks) are the assignment.
struct Individual {
  std::vector<TileId> perm;
  double fitness = 0.0;
};

Mapping to_mapping(const std::vector<TileId>& perm, std::size_t tasks,
                   std::size_t tiles) {
  std::vector<TileId> assignment(perm.begin(),
                                 perm.begin() + static_cast<long>(tasks));
  return Mapping::from_assignment(std::move(assignment), tiles);
}

std::vector<TileId> random_permutation(std::size_t tiles, Rng& rng) {
  std::vector<TileId> perm(tiles);
  std::iota(perm.begin(), perm.end(), TileId{0});
  rng.shuffle(perm);
  return perm;
}

}  // namespace

std::vector<TileId> pmx_crossover(const std::vector<TileId>& parent_a,
                                  const std::vector<TileId>& parent_b,
                                  std::size_t lo, std::size_t hi) {
  const auto n = parent_a.size();
  require(parent_b.size() == n && lo <= hi && hi < n,
          "pmx_crossover: invalid arguments");
  std::vector<TileId> child(n, kInvalidTile);
  std::vector<int> position_in_child(n, -1);  // tile -> child index

  // Copy the cut segment from parent A.
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = parent_a[i];
    position_in_child[parent_a[i]] = static_cast<int>(i);
  }
  // Place parent B's segment genes displaced by the copy.
  for (std::size_t i = lo; i <= hi; ++i) {
    const TileId gene = parent_b[i];
    if (position_in_child[gene] >= 0) continue;  // already present
    // Follow the PMX chain: the slot of gene in B is occupied by A's
    // value there; find where that value sits in B, repeatedly.
    std::size_t slot = i;
    while (slot >= lo && slot <= hi) {
      const TileId displaced = parent_a[slot];
      slot = static_cast<std::size_t>(
          std::find(parent_b.begin(), parent_b.end(), displaced) -
          parent_b.begin());
    }
    child[slot] = gene;
    position_in_child[gene] = static_cast<int>(slot);
  }
  // Fill the rest from parent B verbatim.
  for (std::size_t i = 0; i < n; ++i) {
    if (child[i] != kInvalidTile) continue;
    child[i] = parent_b[i];
  }
  return child;
}

std::vector<TileId> ox_crossover(const std::vector<TileId>& parent_a,
                                 const std::vector<TileId>& parent_b,
                                 std::size_t lo, std::size_t hi) {
  const auto n = parent_a.size();
  require(parent_b.size() == n && lo <= hi && hi < n,
          "ox_crossover: invalid arguments");
  std::vector<TileId> child(n, kInvalidTile);
  std::vector<bool> used(n, false);
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = parent_a[i];
    used[parent_a[i]] = true;
  }
  // Fill remaining slots in parent B's cyclic order starting after hi.
  std::size_t write = (hi + 1) % n;
  for (std::size_t step = 0; step < n; ++step) {
    const TileId gene = parent_b[(hi + 1 + step) % n];
    if (used[gene]) continue;
    child[write] = gene;
    used[gene] = true;
    write = (write + 1) % n;
    while (write >= lo && write <= hi) write = (write + 1) % n;
  }
  return child;
}

GeneticAlgorithm::GeneticAlgorithm(GeneticOptions options)
    : options_(options) {
  require(options_.population >= 2, "GeneticAlgorithm: population >= 2");
  require(options_.tournament >= 1, "GeneticAlgorithm: tournament >= 1");
  require(options_.elites < options_.population,
          "GeneticAlgorithm: elites must be < population");
  require(options_.crossover_rate >= 0.0 && options_.crossover_rate <= 1.0,
          "GeneticAlgorithm: crossover_rate in [0,1]");
  require(options_.mutation_rate >= 0.0 && options_.mutation_rate < 1.0,
          "GeneticAlgorithm: mutation_rate in [0,1)");
}

OptimizerResult GeneticAlgorithm::optimize(FitnessFunction& fitness,
                                           std::size_t task_count,
                                           std::size_t tile_count,
                                           const OptimizerBudget& budget,
                                           std::uint64_t seed) const {
  SearchState state(fitness, task_count, tile_count, budget, seed);
  auto& rng = state.rng();

  const auto eval_perm = [&](const std::vector<TileId>& perm) {
    return state.evaluate(to_mapping(perm, task_count, tile_count));
  };

  // Batch-score freshly generated individuals and append them to `dst`.
  // Generation consumes RNG, evaluation does not, so generating a whole
  // chunk up front and scoring it in one batched pass preserves the
  // exact sequential trajectory; the chunk is capped by the remaining
  // evaluation budget, matching the per-individual `exhausted()` check
  // of a sequential loop.
  std::vector<Mapping> chunk_mappings;
  std::vector<double> chunk_fitness;
  const auto score_chunk = [&](std::vector<Individual>& generated,
                               std::vector<Individual>& dst) {
    chunk_mappings.clear();
    chunk_mappings.reserve(generated.size());
    for (const auto& ind : generated)
      chunk_mappings.push_back(to_mapping(ind.perm, task_count, tile_count));
    chunk_fitness.resize(generated.size());
    state.evaluate_batch(chunk_mappings, chunk_fitness);
    for (std::size_t i = 0; i < generated.size(); ++i) {
      generated[i].fitness = chunk_fitness[i];
      dst.push_back(std::move(generated[i]));
    }
    generated.clear();
  };

  // Initial population.
  std::vector<Individual> population;
  population.reserve(options_.population);
  std::vector<Individual> generated;
  while (population.size() < options_.population && !state.exhausted()) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(options_.population - population.size(),
                                state.remaining_evaluations()));
    generated.reserve(chunk);
    for (std::size_t i = 0; i < chunk; ++i)
      generated.push_back(Individual{random_permutation(tile_count, rng), 0.0});
    score_chunk(generated, population);
  }
  if (population.empty()) {
    // Budget smaller than one population: fall back to a single sample.
    eval_perm(random_permutation(tile_count, rng));
    return state.finish(0);
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* best =
        &population[rng.next_below(population.size())];
    for (std::size_t k = 1; k < options_.tournament; ++k) {
      const Individual& other =
          population[rng.next_below(population.size())];
      if (other.fitness > best->fitness) best = &other;
    }
    return *best;
  };

  std::uint64_t generations = 0;
  while (!state.exhausted()) {
    ++generations;
    std::sort(population.begin(), population.end(),
              [](const Individual& x, const Individual& y) {
                return x.fitness > y.fitness;
              });
    std::vector<Individual> next;
    next.reserve(options_.population);
    for (std::size_t e = 0; e < options_.elites; ++e)
      next.push_back(population[e]);

    // Selection and variation read only the current generation (whose
    // fitness is known) and the RNG, never a sibling's score — so a
    // whole chunk of children can be generated first and scored in one
    // batched pass without changing any RNG draw or selection.
    while (next.size() < options_.population && !state.exhausted()) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(options_.population - next.size(),
                                  state.remaining_evaluations()));
      generated.reserve(chunk);
      for (std::size_t c = 0; c < chunk; ++c) {
        const auto& parent_a = tournament_pick();
        const auto& parent_b = tournament_pick();
        std::vector<TileId> child_perm;
        if (rng.next_bool(options_.crossover_rate)) {
          auto lo = static_cast<std::size_t>(rng.next_below(tile_count));
          auto hi = static_cast<std::size_t>(rng.next_below(tile_count));
          if (lo > hi) std::swap(lo, hi);
          child_perm = options_.crossover == GeneticOptions::Crossover::Pmx
                           ? pmx_crossover(parent_a.perm, parent_b.perm, lo, hi)
                           : ox_crossover(parent_a.perm, parent_b.perm, lo, hi);
        } else {
          child_perm = parent_a.perm;
        }
        while (rng.next_bool(options_.mutation_rate)) {
          const auto i = rng.next_below(tile_count);
          const auto j = rng.next_below(tile_count);
          std::swap(child_perm[i], child_perm[j]);
        }
        generated.push_back(Individual{std::move(child_perm), 0.0});
      }
      score_chunk(generated, next);
    }
    if (!next.empty()) population = std::move(next);
  }
  return state.finish(generations);
}

}  // namespace phonoc
