#pragma once
/// \file annealing.hpp
/// \brief Simulated annealing over tile swaps (extension beyond the
/// paper's three strategies; registered as "sa").

#include "mapping/optimizer.hpp"

namespace phonoc {

struct AnnealingOptions {
  /// Initial temperature as a multiple of the fitness spread observed
  /// in a short calibration sample.
  double initial_temperature_factor = 1.0;
  /// Geometric cooling rate per temperature step.
  double cooling = 0.95;
  /// Moves attempted per temperature step, as a multiple of tile count.
  double moves_per_tile = 4.0;
  /// Stop when temperature falls below this fraction of the initial.
  double min_temperature_fraction = 1e-4;
};

class SimulatedAnnealing final : public MappingOptimizer {
 public:
  explicit SimulatedAnnealing(AnnealingOptions options = {});
  [[nodiscard]] std::string name() const override { return "sa"; }
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;

 private:
  AnnealingOptions options_;
};

}  // namespace phonoc
