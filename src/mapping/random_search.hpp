#pragma once
/// \file random_search.hpp
/// \brief Random search (paper baseline): sample random injective
/// mappings and keep the best.

#include "mapping/optimizer.hpp"

namespace phonoc {

class RandomSearch final : public MappingOptimizer {
 public:
  [[nodiscard]] std::string name() const override { return "rs"; }
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;
};

}  // namespace phonoc
