#pragma once
/// \file rpbla.hpp
/// \brief R-PBLA — the paper's randomized priority-based list algorithm
/// (§II-D2).
///
/// From a random starting mapping, repeatedly consider the full list of
/// admitted moves (swapping the contents of two tiles), ordered by the
/// worst-case cost each move would yield, and take the best one. Uphill
/// moves are never taken; when no move improves the current mapping (a
/// local minimum), the solution is recorded and the search restarts
/// from a fresh random mapping, hoping to fall into a different region
/// of attraction. The best recorded local minimum wins.

#include "mapping/optimizer.hpp"

namespace phonoc {

struct RpblaOptions {
  /// Evaluate only tile pairs where at least one tile hosts a task
  /// (swapping two empty tiles is always a no-op move).
  bool skip_empty_pairs = true;
};

class Rpbla final : public MappingOptimizer {
 public:
  explicit Rpbla(RpblaOptions options = {});
  [[nodiscard]] std::string name() const override { return "rpbla"; }
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;

 private:
  RpblaOptions options_;
};

}  // namespace phonoc
