#include "mapping/objective.hpp"

#include "util/error.hpp"

namespace phonoc {

std::string to_string(OptimizationGoal goal) {
  return goal == OptimizationGoal::InsertionLoss ? "insertion_loss" : "snr";
}

CompositeObjective::CompositeObjective(double loss_weight, double snr_weight)
    : loss_weight_(loss_weight), snr_weight_(snr_weight) {
  require(loss_weight >= 0.0 && snr_weight >= 0.0 &&
              loss_weight + snr_weight > 0.0,
          "CompositeObjective: weights must be non-negative, not both zero");
}

double CompositeObjective::fitness(const EvaluationView& v) const {
  return loss_weight_ * v.worst_loss_db + snr_weight_ * v.worst_snr_db;
}

BandwidthWeightedLossObjective::BandwidthWeightedLossObjective(
    const CommGraph& cg) {
  const double total = cg.total_bandwidth();
  require(total > 0.0,
          "BandwidthWeightedLossObjective: CG has no bandwidth annotations");
  weights_.reserve(cg.communication_count());
  for (const auto& e : cg.edges())
    weights_.push_back(e.bandwidth_mbps / total);
}

double BandwidthWeightedLossObjective::fitness(const EvaluationView& v) const {
  require(v.edges.size() == weights_.size(),
          "BandwidthWeightedLossObjective: evaluation lacks per-edge detail");
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i)
    sum += weights_[i] * v.edges[i].loss_db;
  return sum;
}

std::unique_ptr<Objective> make_objective(OptimizationGoal goal) {
  if (goal == OptimizationGoal::InsertionLoss)
    return std::make_unique<WorstLossObjective>();
  return std::make_unique<WorstSnrObjective>();
}

}  // namespace phonoc
