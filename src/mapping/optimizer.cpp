#include "mapping/optimizer.hpp"

#include "util/error.hpp"

namespace phonoc {

SearchState::SearchState(FitnessFunction& fitness, std::size_t task_count,
                         std::size_t tile_count, OptimizerBudget budget,
                         std::uint64_t seed)
    : fitness_(fitness),
      tasks_(task_count),
      tiles_(tile_count),
      budget_(budget),
      rng_(seed) {
  require(task_count >= 1, "SearchState: no tasks");
  require(task_count <= tile_count,
          "SearchState: more tasks than tiles (violates Eq. 2)");
  require(budget_.max_evaluations > 0 || budget_.max_seconds > 0.0,
          "SearchState: empty budget");
}

bool SearchState::exhausted() const {
  if (budget_.max_evaluations > 0 && evals_ >= budget_.max_evaluations)
    return true;
  if (budget_.max_seconds > 0.0 &&
      timer_.elapsed_seconds() >= budget_.max_seconds)
    return true;
  return false;
}

double SearchState::evaluate(const Mapping& mapping) {
  const double fitness = fitness_.evaluate(mapping);
  record(mapping, fitness);
  return fitness;
}

void SearchState::evaluate_batch(std::span<const Mapping> mappings,
                                 std::span<double> out) {
  require(out.size() == mappings.size(),
          "SearchState::evaluate_batch: out size != mapping count");
  fitness_.evaluate_batch(mappings, out);
  for (std::size_t i = 0; i < mappings.size(); ++i)
    record(mappings[i], out[i]);
}

std::uint64_t SearchState::remaining_evaluations() const noexcept {
  if (budget_.max_evaluations == 0) return UINT64_MAX;
  return budget_.max_evaluations > evals_ ? budget_.max_evaluations - evals_
                                          : 0;
}

double SearchState::propose_swap(Mapping& current, TileId a, TileId b) {
  current.swap_tiles(a, b);
  const double fitness = fitness_.propose_swap(current, a, b);
  record(current, fitness);
  return fitness;
}

void SearchState::commit_move() { fitness_.commit_move(); }

void SearchState::revert_move(Mapping& current, TileId a, TileId b) {
  current.swap_tiles(a, b);
  fitness_.revert_move();
}

void SearchState::apply_move(Mapping& current, TileId a, TileId b) {
  current.swap_tiles(a, b);
  fitness_.apply_move(current, a, b);
}

void SearchState::record(const Mapping& mapping, double fitness) {
  ++evals_;
  if (!has_best_ || fitness > best_fitness_) {
    has_best_ = true;
    best_ = mapping;
    best_fitness_ = fitness;
    trace_.push_back(ImprovementEvent{evals_, fitness});
  }
}

const Mapping& SearchState::best() const {
  require(has_best_, "SearchState: no evaluation performed yet");
  return best_;
}

OptimizerResult SearchState::finish(std::uint64_t iterations) const {
  require(has_best_, "SearchState: optimizer performed no evaluation");
  OptimizerResult result;
  result.best = best_;
  result.best_fitness = best_fitness_;
  result.evaluations = evals_;
  result.seconds = timer_.elapsed_seconds();
  result.trace = trace_;
  result.iterations = iterations;
  return result;
}

}  // namespace phonoc
