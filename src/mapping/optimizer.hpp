#pragma once
/// \file optimizer.hpp
/// \brief Mapping-optimizer interface and the shared search bookkeeping
/// (budget, incumbent tracking, improvement trace).
///
/// Optimizers are deterministic functions of (fitness function, problem
/// dimensions, budget, seed). Budgets are expressed in evaluations by
/// default — the machine-independent analogue of the paper's "same
/// running time" rule — with an optional wall-clock cap.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace phonoc {

/// Fitness callback: higher is better. Implemented by core::Evaluator.
///
/// Beyond whole-mapping evaluation, the interface carries a transactional
/// *move* API so neighborhood searches (SA / tabu / R-PBLA, whose move is
/// a two-tile swap) can be scored incrementally: `propose_swap` evaluates
/// the mapping that results from one swap, then exactly one of
/// `commit_move` (keep it) or `revert_move` (restore the previous state)
/// follows. `apply_move` adopts a swap whose fitness is already known
/// without spending an evaluation. The default implementations fall back
/// to `evaluate`, so state-free fitness functions need not override
/// anything; implementations that answer `supports_moves() == true` may
/// keep arbitrary internal state between calls. One proposal may be
/// outstanding at a time. Every `propose_swap` counts as one *logical*
/// evaluation, exactly like `evaluate` — budgets and determinism
/// contracts observe logical evaluations, never the physical work done.
class FitnessFunction {
 public:
  virtual ~FitnessFunction() = default;
  [[nodiscard]] virtual double evaluate(const Mapping& mapping) = 0;

  /// Score a batch: `out[i]` = fitness of `mappings[i]`, semantically
  /// identical to calling `evaluate` in index order — same values, same
  /// logical counting, same memo trajectory. Implementations may
  /// override to amortize the physical work (core::Evaluator routes the
  /// batch through the SoA kernel); the default simply loops.
  virtual void evaluate_batch(std::span<const Mapping> mappings,
                              std::span<double> out) {
    for (std::size_t i = 0; i < mappings.size(); ++i)
      out[i] = evaluate(mappings[i]);
  }

  /// True when propose/commit/revert are served by an incremental path.
  [[nodiscard]] virtual bool supports_moves() const { return false; }
  /// Fitness of `after`, which is the previous mapping with the (a, b)
  /// tile swap already applied.
  [[nodiscard]] virtual double propose_swap(const Mapping& after, TileId a,
                                            TileId b) {
    (void)a;
    (void)b;
    return evaluate(after);
  }
  virtual void commit_move() {}
  virtual void revert_move() {}
  /// Adopt the (a, b) swap (already applied in `after`) without counting
  /// an evaluation; used when the move's fitness is already known.
  virtual void apply_move(const Mapping& after, TileId a, TileId b) {
    (void)after;
    (void)a;
    (void)b;
  }
};

struct OptimizerBudget {
  /// Hard cap on fitness evaluations (0 = unlimited; then max_seconds
  /// must be set).
  std::uint64_t max_evaluations = 20000;
  /// Wall-clock cap in seconds (0 = none).
  double max_seconds = 0.0;
};

/// One improvement event: evaluation count at which a new incumbent was
/// found, and its fitness.
struct ImprovementEvent {
  std::uint64_t evaluation;
  double fitness;
};

struct OptimizerResult {
  Mapping best;
  double best_fitness = 0.0;
  std::uint64_t evaluations = 0;
  double seconds = 0.0;
  std::vector<ImprovementEvent> trace;
  /// Algorithm-specific counter (GA: generations; R-PBLA: restarts;
  /// SA: temperature steps). Informational.
  std::uint64_t iterations = 0;
};

/// Shared bookkeeping used by every optimizer implementation.
class SearchState {
 public:
  SearchState(FitnessFunction& fitness, std::size_t task_count,
              std::size_t tile_count, OptimizerBudget budget,
              std::uint64_t seed);

  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_; }
  [[nodiscard]] std::size_t tile_count() const noexcept { return tiles_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// True once the evaluation or time budget is exhausted.
  [[nodiscard]] bool exhausted() const;

  /// Evaluate a candidate, tracking the incumbent and the trace.
  double evaluate(const Mapping& mapping);

  /// Batched `evaluate`: scores every candidate through the fitness
  /// function's batch entry, then records each result in index order —
  /// incumbent, trace and evaluation counts are identical to calling
  /// `evaluate` per mapping. Callers size batches with
  /// `remaining_evaluations()` so the evaluation budget is never
  /// overshot.
  void evaluate_batch(std::span<const Mapping> mappings,
                      std::span<double> out);

  /// Evaluations left under the budget's evaluation cap;
  /// UINT64_MAX when the budget is time-only.
  [[nodiscard]] std::uint64_t remaining_evaluations() const noexcept;

  /// Move-based search steps. `propose_swap` applies the (a, b) tile
  /// swap to `current`, scores it through the fitness function's move
  /// API (one logical evaluation, incumbent-tracked like `evaluate`),
  /// and leaves the swap applied; the caller then either commits or
  /// reverts (which undoes the swap in `current`). `apply_move` adopts
  /// a swap whose fitness is already known without spending an
  /// evaluation — the optimizer protocols (tabu / R-PBLA) re-apply the
  /// winning candidate this way, exactly as the whole-mapping code did.
  double propose_swap(Mapping& current, TileId a, TileId b);
  void commit_move();
  void revert_move(Mapping& current, TileId a, TileId b);
  void apply_move(Mapping& current, TileId a, TileId b);

  [[nodiscard]] bool has_best() const noexcept { return has_best_; }
  [[nodiscard]] const Mapping& best() const;
  [[nodiscard]] double best_fitness() const noexcept { return best_fitness_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evals_; }

  /// Package the result; `iterations` is the algorithm-specific counter.
  [[nodiscard]] OptimizerResult finish(std::uint64_t iterations) const;

 private:
  /// Count one logical evaluation and track the incumbent/trace.
  void record(const Mapping& mapping, double fitness);

  FitnessFunction& fitness_;
  std::size_t tasks_;
  std::size_t tiles_;
  OptimizerBudget budget_;
  Rng rng_;
  Timer timer_;
  std::uint64_t evals_ = 0;
  bool has_best_ = false;
  Mapping best_;
  double best_fitness_ = 0.0;
  std::vector<ImprovementEvent> trace_;
};

class MappingOptimizer {
 public:
  virtual ~MappingOptimizer() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Run the search. Guarantees at least one evaluation even with a
  /// zero budget so the result always carries a valid mapping.
  [[nodiscard]] virtual OptimizerResult optimize(FitnessFunction& fitness,
                                                 std::size_t task_count,
                                                 std::size_t tile_count,
                                                 const OptimizerBudget& budget,
                                                 std::uint64_t seed) const = 0;
};

}  // namespace phonoc
