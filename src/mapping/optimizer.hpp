#pragma once
/// \file optimizer.hpp
/// \brief Mapping-optimizer interface and the shared search bookkeeping
/// (budget, incumbent tracking, improvement trace).
///
/// Optimizers are deterministic functions of (fitness function, problem
/// dimensions, budget, seed). Budgets are expressed in evaluations by
/// default — the machine-independent analogue of the paper's "same
/// running time" rule — with an optional wall-clock cap.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace phonoc {

/// Fitness callback: higher is better. Implemented by core::Evaluator.
class FitnessFunction {
 public:
  virtual ~FitnessFunction() = default;
  [[nodiscard]] virtual double evaluate(const Mapping& mapping) = 0;
};

struct OptimizerBudget {
  /// Hard cap on fitness evaluations (0 = unlimited; then max_seconds
  /// must be set).
  std::uint64_t max_evaluations = 20000;
  /// Wall-clock cap in seconds (0 = none).
  double max_seconds = 0.0;
};

/// One improvement event: evaluation count at which a new incumbent was
/// found, and its fitness.
struct ImprovementEvent {
  std::uint64_t evaluation;
  double fitness;
};

struct OptimizerResult {
  Mapping best;
  double best_fitness = 0.0;
  std::uint64_t evaluations = 0;
  double seconds = 0.0;
  std::vector<ImprovementEvent> trace;
  /// Algorithm-specific counter (GA: generations; R-PBLA: restarts;
  /// SA: temperature steps). Informational.
  std::uint64_t iterations = 0;
};

/// Shared bookkeeping used by every optimizer implementation.
class SearchState {
 public:
  SearchState(FitnessFunction& fitness, std::size_t task_count,
              std::size_t tile_count, OptimizerBudget budget,
              std::uint64_t seed);

  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_; }
  [[nodiscard]] std::size_t tile_count() const noexcept { return tiles_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// True once the evaluation or time budget is exhausted.
  [[nodiscard]] bool exhausted() const;

  /// Evaluate a candidate, tracking the incumbent and the trace.
  double evaluate(const Mapping& mapping);

  [[nodiscard]] bool has_best() const noexcept { return has_best_; }
  [[nodiscard]] const Mapping& best() const;
  [[nodiscard]] double best_fitness() const noexcept { return best_fitness_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evals_; }

  /// Package the result; `iterations` is the algorithm-specific counter.
  [[nodiscard]] OptimizerResult finish(std::uint64_t iterations) const;

 private:
  FitnessFunction& fitness_;
  std::size_t tasks_;
  std::size_t tiles_;
  OptimizerBudget budget_;
  Rng rng_;
  Timer timer_;
  std::uint64_t evals_ = 0;
  bool has_best_ = false;
  Mapping best_;
  double best_fitness_ = 0.0;
  std::vector<ImprovementEvent> trace_;
};

class MappingOptimizer {
 public:
  virtual ~MappingOptimizer() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Run the search. Guarantees at least one evaluation even with a
  /// zero budget so the result always carries a valid mapping.
  [[nodiscard]] virtual OptimizerResult optimize(FitnessFunction& fitness,
                                                 std::size_t task_count,
                                                 std::size_t tile_count,
                                                 const OptimizerBudget& budget,
                                                 std::uint64_t seed) const = 0;
};

}  // namespace phonoc
