#pragma once
/// \file objective.hpp
/// \brief Optimization objectives over evaluated mappings.
///
/// Fitness is always maximized. The two paper objectives (Eq. 3/4) are
/// worst-case insertion loss (dB values are negative, so maximizing
/// pushes the worst edge toward 0 dB) and worst-case SNR. Extensions:
/// a weighted composite of the two and a bandwidth-weighted average
/// loss (uses the CG's bandwidth annotations).

#include <memory>
#include <string>

#include "graph/comm_graph.hpp"
#include "model/evaluation.hpp"

namespace phonoc {

/// The paper's two optimization goals.
enum class OptimizationGoal { InsertionLoss, Snr };

[[nodiscard]] std::string to_string(OptimizationGoal goal);

class Objective {
 public:
  virtual ~Objective() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Higher is better. The view form is the primary interface so the
  /// incremental evaluation kernel can fold the cached per-edge state
  /// without materializing an EvaluationResult per move; both paths
  /// run the same fold code, keeping fitness bit-identical.
  [[nodiscard]] virtual double fitness(const EvaluationView& view) const = 0;
  /// Convenience for whole-mapping evaluation results.
  [[nodiscard]] double fitness(const EvaluationResult& r) const {
    return fitness(EvaluationView{r.worst_loss_db, r.worst_snr_db, r.edges});
  }
  /// True when fitness() reads the per-edge detail (the evaluator must
  /// then run with detail enabled).
  [[nodiscard]] virtual bool needs_detail() const { return false; }
};

/// Eq. (3): maximize the worst-case insertion loss (toward 0 dB).
class WorstLossObjective final : public Objective {
 public:
  using Objective::fitness;
  [[nodiscard]] std::string name() const override { return "worst_loss"; }
  [[nodiscard]] double fitness(const EvaluationView& v) const override {
    return v.worst_loss_db;
  }
};

/// Eq. (4): maximize the worst-case SNR.
class WorstSnrObjective final : public Objective {
 public:
  using Objective::fitness;
  [[nodiscard]] std::string name() const override { return "worst_snr"; }
  [[nodiscard]] double fitness(const EvaluationView& v) const override {
    return v.worst_snr_db;
  }
};

/// Extension: weighted sum of the two worst-case metrics (both in dB,
/// so a plain linear combination is meaningful).
class CompositeObjective final : public Objective {
 public:
  using Objective::fitness;
  /// fitness = loss_weight * worst_loss_db + snr_weight * worst_snr_db.
  CompositeObjective(double loss_weight, double snr_weight);
  [[nodiscard]] std::string name() const override { return "composite"; }
  [[nodiscard]] double fitness(const EvaluationView& v) const override;

 private:
  double loss_weight_;
  double snr_weight_;
};

/// Extension: maximize the bandwidth-weighted average of per-edge loss
/// (heavier flows matter more). Needs per-edge detail. The weighted sum
/// is re-folded over the (cached) per-edge values in edge order on
/// every call rather than kept as a running delta-updated total: the
/// ascending fold is what keeps incremental fitness bit-identical to a
/// full re-evaluation, and it is O(|E|) against the evaluation's
/// O(touched x |E|) noise work.
class BandwidthWeightedLossObjective final : public Objective {
 public:
  using Objective::fitness;
  explicit BandwidthWeightedLossObjective(const CommGraph& cg);
  [[nodiscard]] std::string name() const override {
    return "bandwidth_weighted_loss";
  }
  [[nodiscard]] bool needs_detail() const override { return true; }
  [[nodiscard]] double fitness(const EvaluationView& v) const override;

 private:
  std::vector<double> weights_;  ///< per-edge bandwidth / total
};

/// The paper objective for a goal.
[[nodiscard]] std::unique_ptr<Objective> make_objective(OptimizationGoal goal);

}  // namespace phonoc
