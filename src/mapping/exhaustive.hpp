#pragma once
/// \file exhaustive.hpp
/// \brief Exhaustive enumeration of injective mappings (ground truth on
/// tiny instances; used by the integration tests to certify the
/// heuristics).

#include "mapping/optimizer.hpp"

namespace phonoc {

class ExhaustiveSearch final : public MappingOptimizer {
 public:
  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  /// Enumerates all P(tiles, tasks) assignments in lexicographic order;
  /// stops early when the budget runs out (partial enumeration). The
  /// number of complete assignments visited is reported in
  /// OptimizerResult::iterations.
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;

  /// Number of injective assignments, saturating at UINT64_MAX.
  [[nodiscard]] static std::uint64_t search_space(std::size_t task_count,
                                                  std::size_t tile_count);
};

}  // namespace phonoc
