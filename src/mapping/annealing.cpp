#include "mapping/annealing.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace phonoc {

SimulatedAnnealing::SimulatedAnnealing(AnnealingOptions options)
    : options_(options) {
  require(options_.cooling > 0.0 && options_.cooling < 1.0,
          "SimulatedAnnealing: cooling must be in (0,1)");
  require(options_.initial_temperature_factor > 0.0,
          "SimulatedAnnealing: temperature factor must be positive");
  require(options_.moves_per_tile > 0.0,
          "SimulatedAnnealing: moves_per_tile must be positive");
}

OptimizerResult SimulatedAnnealing::optimize(FitnessFunction& fitness,
                                             std::size_t task_count,
                                             std::size_t tile_count,
                                             const OptimizerBudget& budget,
                                             std::uint64_t seed) const {
  SearchState state(fitness, task_count, tile_count, budget, seed);
  auto& rng = state.rng();

  // Calibrate the initial temperature from a small random sample so the
  // acceptance probability starts meaningfully scaled to the landscape.
  RunningStats calibration;
  Mapping current = Mapping::random(task_count, tile_count, rng);
  double current_fitness = state.evaluate(current);
  calibration.add(current_fitness);
  for (int i = 0; i < 15 && !state.exhausted(); ++i) {
    const auto sample = Mapping::random(task_count, tile_count, rng);
    calibration.add(state.evaluate(sample));
  }
  const double spread = std::max(calibration.stddev(), 1e-6);
  const double t0 = spread * options_.initial_temperature_factor;
  double temperature = t0;

  const auto moves_per_step = static_cast<std::uint64_t>(
      std::max(1.0, options_.moves_per_tile * static_cast<double>(tile_count)));

  std::uint64_t steps = 0;
  while (!state.exhausted()) {
    ++steps;
    for (std::uint64_t m = 0; m < moves_per_step && !state.exhausted(); ++m) {
      auto a = static_cast<TileId>(rng.next_below(tile_count));
      auto b = static_cast<TileId>(rng.next_below(tile_count));
      if (a == b) continue;
      // Swapping two empty tiles is a no-op; skip without evaluating.
      if (current.task_at(a) < 0 && current.task_at(b) < 0) continue;
      const double moved = state.propose_swap(current, a, b);
      const double delta = moved - current_fitness;
      if (delta >= 0.0 ||
          rng.next_double() < std::exp(delta / temperature)) {
        state.commit_move();  // accept
        current_fitness = moved;
      } else {
        state.revert_move(current, a, b);  // reject: undo
      }
    }
    temperature *= options_.cooling;
    if (temperature < t0 * options_.min_temperature_fraction) {
      // Reheat from the incumbent: keeps improving within big budgets.
      current = state.best();
      current_fitness = state.best_fitness();
      temperature = t0 * 0.1;
    }
  }
  return state.finish(steps);
}

}  // namespace phonoc
