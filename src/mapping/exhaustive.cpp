#include "mapping/exhaustive.hpp"

#include <limits>
#include <numeric>

namespace phonoc {

std::uint64_t ExhaustiveSearch::search_space(std::size_t task_count,
                                             std::size_t tile_count) {
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < task_count; ++i) {
    const auto factor = static_cast<std::uint64_t>(tile_count - i);
    if (total > std::numeric_limits<std::uint64_t>::max() / factor)
      return std::numeric_limits<std::uint64_t>::max();
    total *= factor;
  }
  return total;
}

OptimizerResult ExhaustiveSearch::optimize(FitnessFunction& fitness,
                                           std::size_t task_count,
                                           std::size_t tile_count,
                                           const OptimizerBudget& budget,
                                           std::uint64_t seed) const {
  SearchState state(fitness, task_count, tile_count, budget, seed);

  std::vector<TileId> assignment(task_count, 0);
  std::vector<bool> used(tile_count, false);
  std::uint64_t complete = 0;

  // Iterative depth-first enumeration of injective assignments.
  const auto descend = [&](auto&& self, std::size_t task) -> void {
    if (state.exhausted()) return;
    if (task == task_count) {
      state.evaluate(Mapping::from_assignment(assignment, tile_count));
      ++complete;
      return;
    }
    for (TileId tile = 0; tile < tile_count; ++tile) {
      if (used[tile]) continue;
      used[tile] = true;
      assignment[task] = tile;
      self(self, task + 1);
      used[tile] = false;
      if (state.exhausted()) return;
    }
  };
  descend(descend, 0);
  (void)seed;  // enumeration is deterministic; seed only feeds SearchState
  return state.finish(complete);
}

}  // namespace phonoc
