#pragma once
/// \file tabu.hpp
/// \brief Tabu search over tile swaps (extension; registered as "tabu").

#include "mapping/optimizer.hpp"

namespace phonoc {

struct TabuOptions {
  /// Number of candidate swaps sampled per iteration, as a multiple of
  /// tile count.
  double candidates_per_tile = 2.0;
  /// Iterations for which a swapped tile pair stays tabu.
  std::size_t tenure = 16;
  /// Restart from a random mapping after this many non-improving
  /// iterations.
  std::size_t restart_after = 64;
};

class TabuSearch final : public MappingOptimizer {
 public:
  explicit TabuSearch(TabuOptions options = {});
  [[nodiscard]] std::string name() const override { return "tabu"; }
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;

 private:
  TabuOptions options_;
};

}  // namespace phonoc
