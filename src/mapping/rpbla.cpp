#include "mapping/rpbla.hpp"

#include <utility>
#include <vector>

namespace phonoc {

Rpbla::Rpbla(RpblaOptions options) : options_(options) {}

OptimizerResult Rpbla::optimize(FitnessFunction& fitness,
                                std::size_t task_count,
                                std::size_t tile_count,
                                const OptimizerBudget& budget,
                                std::uint64_t seed) const {
  SearchState state(fitness, task_count, tile_count, budget, seed);
  auto& rng = state.rng();

  // Enumerate candidate tile pairs once; the random permutation of the
  // list (re-shuffled per descent step) provides unbiased tie-breaking.
  std::vector<std::pair<TileId, TileId>> pairs;
  for (TileId a = 0; a < tile_count; ++a)
    for (TileId b = a + 1; b < tile_count; ++b) pairs.emplace_back(a, b);

  std::uint64_t restarts = 0;
  while (!state.exhausted()) {
    ++restarts;
    Mapping current = Mapping::random(task_count, tile_count, rng);
    double current_fitness = state.evaluate(current);

    bool at_local_minimum = false;
    while (!at_local_minimum && !state.exhausted()) {
      rng.shuffle(pairs);
      double best_move_fitness = current_fitness;
      std::pair<TileId, TileId> best_move{0, 0};
      bool found = false;
      // Build the move list: every admitted swap, scored by the cost of
      // the mapping it produces; the best entry of the list is taken.
      for (const auto& [a, b] : pairs) {
        if (state.exhausted()) break;
        if (options_.skip_empty_pairs && current.task_at(a) < 0 &&
            current.task_at(b) < 0)
          continue;  // swapping two empty tiles changes nothing
        const double moved = state.propose_swap(current, a, b);
        state.revert_move(current, a, b);  // undo
        if (moved > best_move_fitness) {
          best_move_fitness = moved;
          best_move = {a, b};
          found = true;
        }
      }
      if (found) {
        // Fitness already known from the candidate scan: adopt the swap
        // without spending an evaluation.
        state.apply_move(current, best_move.first, best_move.second);
        current_fitness = best_move_fitness;
      } else {
        // No downhill move: local minimum. SearchState already recorded
        // the incumbent; restart from a fresh random point.
        at_local_minimum = true;
      }
    }
  }
  return state.finish(restarts);
}

}  // namespace phonoc
