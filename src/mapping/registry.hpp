#pragma once
/// \file registry.hpp
/// \brief Name-based optimizer factory — the "mapping optimization
/// strategies" extension point (paper Fig. 1, block 4).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapping/optimizer.hpp"

namespace phonoc {

using OptimizerFactory = std::function<std::unique_ptr<MappingOptimizer>()>;

void register_optimizer(const std::string& name, OptimizerFactory factory);

/// Instantiate by name; built-ins: "rs", "ga", "rpbla", "sa", "tabu",
/// "exhaustive". ("greedy" needs CG + topology context and is built by
/// the core Engine instead.)
[[nodiscard]] std::unique_ptr<MappingOptimizer> make_optimizer(
    const std::string& name);

[[nodiscard]] std::vector<std::string> registered_optimizers();

}  // namespace phonoc
