#include "mapping/random_search.hpp"

namespace phonoc {

OptimizerResult RandomSearch::optimize(FitnessFunction& fitness,
                                       std::size_t task_count,
                                       std::size_t tile_count,
                                       const OptimizerBudget& budget,
                                       std::uint64_t seed) const {
  SearchState state(fitness, task_count, tile_count, budget, seed);
  std::uint64_t samples = 0;
  do {
    state.evaluate(Mapping::random(task_count, tile_count, state.rng()));
    ++samples;
  } while (!state.exhausted());
  return state.finish(samples);
}

}  // namespace phonoc
