#pragma once
/// \file genetic.hpp
/// \brief Genetic algorithm over tile permutations (paper §II-D2).
///
/// Chromosomes are permutations of all tiles; the first `task_count`
/// positions are the task assignment, the remainder encode empty tiles
/// (so crossover/mutation stay within the injective-mapping space).
/// Standard machinery: tournament selection, PMX or OX crossover,
/// swap/insertion mutation, elitism.

#include "mapping/optimizer.hpp"

namespace phonoc {

struct GeneticOptions {
  std::size_t population = 64;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  /// Per-offspring probability of one swap mutation; applied repeatedly
  /// (geometric number of swaps).
  double mutation_rate = 0.3;
  std::size_t elites = 2;
  enum class Crossover { Pmx, Ox };
  Crossover crossover = Crossover::Pmx;
};

class GeneticAlgorithm final : public MappingOptimizer {
 public:
  explicit GeneticAlgorithm(GeneticOptions options = {});
  [[nodiscard]] std::string name() const override { return "ga"; }
  [[nodiscard]] OptimizerResult optimize(FitnessFunction& fitness,
                                         std::size_t task_count,
                                         std::size_t tile_count,
                                         const OptimizerBudget& budget,
                                         std::uint64_t seed) const override;

  [[nodiscard]] const GeneticOptions& options() const noexcept {
    return options_;
  }

 private:
  GeneticOptions options_;
};

/// Exposed for unit testing: PMX (partially mapped crossover) and OX
/// (order crossover) over permutations, producing one child from two
/// parents and a cut range [lo, hi].
[[nodiscard]] std::vector<TileId> pmx_crossover(
    const std::vector<TileId>& parent_a, const std::vector<TileId>& parent_b,
    std::size_t lo, std::size_t hi);
[[nodiscard]] std::vector<TileId> ox_crossover(
    const std::vector<TileId>& parent_a, const std::vector<TileId>& parent_b,
    std::size_t lo, std::size_t hi);

}  // namespace phonoc
