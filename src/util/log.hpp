#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger (stderr). Default level is Warning so the
/// library is silent in normal operation; examples and benches raise it.

#include <sstream>
#include <string>

namespace phonoc {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Set / query the global log threshold. The threshold is an atomic:
/// worker threads of the exec subsystem may log while the hosting
/// binary adjusts the level.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a single log line when `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) noexcept : level_(level) {}
  ~LogStream() { log_message(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::Debug);
}
[[nodiscard]] inline detail::LogStream log_info() {
  return detail::LogStream(LogLevel::Info);
}
[[nodiscard]] inline detail::LogStream log_warning() {
  return detail::LogStream(LogLevel::Warning);
}
[[nodiscard]] inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::Error);
}

}  // namespace phonoc
