#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger (stderr). Default level is Warning so the
/// library is silent in normal operation; examples and benches raise it.
///
/// Call sites may name their subsystem — `log_info("sched") << ...` —
/// and every exec/sched/service line does, so a daemon's interleaved
/// stderr can be filtered by layer. Line shape is opt-in via
/// set_log_format():
///  - LogFormat::Plain (default):  `[phonoc INFO  sched] message`
///  - LogFormat::Detailed:
///    `2026-08-08T12:34:56.789Z [phonoc INFO  sched tid=1234] message`
///    (ISO-8601 UTC timestamp with milliseconds plus the emitting
///    thread id — what a long-lived phonocd or phonoc_workerd wants).

#include <sstream>
#include <string>

namespace phonoc {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Per-line shape of the emitted log (see file comment). The format is
/// an atomic like the level: worker threads log while the hosting
/// binary flips it.
enum class LogFormat { Plain = 0, Detailed = 1 };

/// Set / query the global log threshold. The threshold is an atomic:
/// worker threads of the exec subsystem may log while the hosting
/// binary adjusts the level.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Set / query the global line format (default LogFormat::Plain).
void set_log_format(LogFormat format) noexcept;
[[nodiscard]] LogFormat log_format() noexcept;

/// Emit a single log line when `level` passes the threshold.
/// `subsystem` is a short static tag ("exec", "sched", "service", ...);
/// empty means untagged.
void log_message(LogLevel level, const std::string& message);
void log_message(LogLevel level, const char* subsystem,
                 const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level, const char* subsystem = "") noexcept
      : level_(level), subsystem_(subsystem) {}
  ~LogStream() { log_message(level_, subsystem_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* subsystem_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogStream log_debug(const char* subsystem = "") {
  return detail::LogStream(LogLevel::Debug, subsystem);
}
[[nodiscard]] inline detail::LogStream log_info(const char* subsystem = "") {
  return detail::LogStream(LogLevel::Info, subsystem);
}
[[nodiscard]] inline detail::LogStream log_warning(
    const char* subsystem = "") {
  return detail::LogStream(LogLevel::Warning, subsystem);
}
[[nodiscard]] inline detail::LogStream log_error(const char* subsystem = "") {
  return detail::LogStream(LogLevel::Error, subsystem);
}

}  // namespace phonoc
