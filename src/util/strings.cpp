#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace phonoc {

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

double parse_double(std::string_view text, int line) {
  text = trim(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ParseError("expected a real number, got '" + std::string(text) + "'",
                     line);
  return value;
}

long parse_long(std::string_view text, int line) {
  text = trim(text);
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ParseError("expected an integer, got '" + std::string(text) + "'",
                     line);
  return value;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream out;
  out.precision(digits);
  out << std::fixed << value;
  return out.str();
}

std::string format_double(double value) {
  // Non-finite spellings vary across standard libraries (MSVC prints
  // "nan(ind)"); emit the canonical from_chars tokens so every value —
  // including NaN/±Inf metrics — round-trips through parse_double.
  if (std::isnan(value)) return std::signbit(value) ? "-nan" : "nan";
  if (std::isinf(value)) return std::signbit(value) ? "-inf" : "inf";
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

}  // namespace phonoc
