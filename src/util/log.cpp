#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <thread>

namespace phonoc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warning};
std::atomic<LogFormat> g_format{LogFormat::Plain};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warning: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

/// `2026-08-08T12:34:56.789Z` — UTC wall clock with milliseconds.
std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &seconds);
#else
  gmtime_r(&seconds, &utc);
#endif
  char buffer[40];
  std::snprintf(buffer, sizeof buffer,
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(ms));
  return buffer;
}

std::string thread_tag() {
  std::ostringstream out;
  out << std::this_thread::get_id();
  return out.str();
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void set_log_format(LogFormat format) noexcept {
  g_format.store(format, std::memory_order_relaxed);
}
LogFormat log_format() noexcept {
  return g_format.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  log_message(level, "", message);
}

void log_message(LogLevel level, const char* subsystem,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (level == LogLevel::Off) return;
  std::string line;
  const bool tagged = subsystem != nullptr && subsystem[0] != '\0';
  if (log_format() == LogFormat::Detailed) {
    line = iso8601_now() + " [phonoc " + level_tag(level);
    if (tagged) line += std::string(" ") + subsystem;
    line += " tid=" + thread_tag() + "] " + message + '\n';
  } else {
    line = "[phonoc " + std::string(level_tag(level));
    if (tagged) line += std::string(" ") + subsystem;
    line += "] " + message + '\n';
  }
  // One insertion per line so concurrent worker-thread logs cannot
  // interleave mid-line.
  std::cerr << line;
}

}  // namespace phonoc
