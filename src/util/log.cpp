#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace phonoc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warning};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warning: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (level == LogLevel::Off) return;
  // One insertion per line so concurrent worker-thread logs cannot
  // interleave mid-line.
  std::cerr << "[phonoc " + std::string(level_tag(level)) + "] " + message +
                   '\n';
}

}  // namespace phonoc
