#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace phonoc {

void RunningStats::add(double value) noexcept {
  if (n_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

RunningStats RunningStats::from_parts(std::size_t n, double mean, double m2,
                                      double min, double max) noexcept {
  RunningStats stats;
  stats.n_ = n;
  stats.mean_ = mean;
  stats.m2_ = m2;
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  require(bins >= 1, "Histogram requires at least one bin");
  require(hi > lo, "Histogram range must be non-empty");
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((value - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge guard
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  require(lo_ == other.lo_ && hi_ == other.hi_,
          "Histogram::merge: range mismatch");
  require(counts_.size() == other.counts_.size(),
          "Histogram::merge: bin count mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

Histogram Histogram::from_parts(double lo, double hi,
                                std::vector<std::size_t> counts,
                                std::size_t underflow, std::size_t overflow) {
  Histogram hist(lo, hi, counts.empty() ? 1 : counts.size());
  require(!counts.empty(), "Histogram::from_parts requires at least one bin");
  hist.counts_ = std::move(counts);
  hist.underflow_ = underflow;
  hist.overflow_ = overflow;
  hist.total_ = underflow + overflow;
  for (const auto c : hist.counts_) hist.total_ += c;
  return hist;
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const noexcept {
  return bin_low(i) + bin_width_;
}

double Histogram::bin_center(std::size_t i) const noexcept {
  return bin_low(i) + bin_width_ / 2.0;
}

double Histogram::probability(std::size_t i) const noexcept {
  return total_ ? static_cast<double>(counts_[i]) / static_cast<double>(total_)
                : 0.0;
}

double Histogram::cumulative(std::size_t i) const noexcept {
  std::size_t acc = underflow_;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) acc += counts_[b];
  return total_ ? static_cast<double>(acc) / static_cast<double>(total_) : 0.0;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total_);
  double acc = static_cast<double>(underflow_);
  if (target <= acc) return lo_;  // mass below range: its values are unknown
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto count = static_cast<double>(counts_[i]);
    if (count > 0.0 && target <= acc + count)
      return bin_low(i) + bin_width_ * ((target - acc) / count);
    acc += count;
  }
  return hi_;  // mass at or above hi
}

std::string Histogram::ascii_chart(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    out << '[';
    out.precision(3);
    out << std::fixed << bin_low(i) << ", " << bin_high(i) << ") ";
    out << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] * (1.0 - frac) + values[lower + 1] * frac;
}

}  // namespace phonoc
