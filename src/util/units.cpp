#include "util/units.hpp"

// Header-only; this translation unit exists so the module shows up in the
// library and gets compiled with the project warning set at least once.
namespace phonoc {
namespace {
[[maybe_unused]] constexpr double kCompileCheck = mm_to_cm(25.0);
static_assert(kCompileCheck == 2.5);
}  // namespace
}  // namespace phonoc
