#include "util/error.hpp"

namespace phonoc {

void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

void require_model(bool condition, const std::string& message) {
  if (!condition) throw ModelError(message);
}

}  // namespace phonoc
