#pragma once
/// \file stats.hpp
/// \brief Streaming statistics and fixed-bin histograms.
///
/// Used by the Fig. 3 reproduction (probability distribution of SNR /
/// power loss over large random-mapping samples) and by the benchmark
/// summaries.

#include <cstddef>
#include <string>
#include <vector>

namespace phonoc {

/// Single-pass accumulator for mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double value) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Raw Welford sum of squared deviations (the m2 accumulator).
  /// Exposed so the accumulator state can cross a process boundary and
  /// merge bit-exactly on the other side (exec/serialize round-trips
  /// it with format_double).
  [[nodiscard]] double sum_squared_deviations() const noexcept { return m2_; }

  /// Rebuild an accumulator from its serialized state. The inverse of
  /// reading {count, mean, sum_squared_deviations, min, max}: with
  /// bit-exact doubles the restored accumulator merges identically to
  /// the original.
  [[nodiscard]] static RunningStats from_parts(std::size_t n, double mean,
                                               double m2, double min,
                                               double max) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range, uniform-bin histogram with under/overflow bins.
class Histogram {
 public:
  /// Bins span [lo, hi) uniformly; values outside land in the
  /// underflow/overflow counters. `bins` must be >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  /// Fold another histogram into this one. Requires an identical
  /// binning — bit-equal lo/hi and the same bin count — so shards of
  /// one sampling experiment merge exactly; anything else throws
  /// InvalidArgument (merging across binnings would silently smear
  /// probability mass).
  void merge(const Histogram& other);

  /// Rebuild a histogram from its serialized state (counts plus the
  /// under/overflow counters); `total()` is recomputed as their sum.
  [[nodiscard]] static Histogram from_parts(double lo, double hi,
                                            std::vector<std::size_t> counts,
                                            std::size_t underflow,
                                            std::size_t overflow);

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_low(std::size_t i) const noexcept;
  [[nodiscard]] double bin_high(std::size_t i) const noexcept;
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Probability mass of bin i (count / total samples), 0 when empty.
  [[nodiscard]] double probability(std::size_t i) const noexcept;

  /// Cumulative probability up to and including bin i.
  [[nodiscard]] double cumulative(std::size_t i) const noexcept;

  /// Approximate quantile from the binned counts (linear interpolation
  /// inside the bin where the cumulative mass crosses `q`). Mass in the
  /// underflow bin resolves to lo(), overflow to hi() — the histogram
  /// cannot know those values. Empty histogram returns 0. This is what
  /// lets sampling runs report quartiles without keeping the raw
  /// sample vectors around.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Render a compact fixed-width ASCII chart (one row per bin), used by
  /// the Fig. 3 harness for terminal inspection.
  [[nodiscard]] std::string ascii_chart(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Quantile of an unsorted sample (copies and sorts; linear interpolation).
/// `q` in [0,1]; empty input returns 0.
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace phonoc
