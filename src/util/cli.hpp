#pragma once
/// \file cli.hpp
/// \brief Tiny command-line / environment option reader used by the
/// examples and benchmark harnesses (no external dependency).
///
/// Options use `--name=value` or `--name value` syntax; `--flag` alone is
/// a boolean true. Environment fallbacks allow the bench suite to be
/// scaled globally (e.g. PHONOC_FULL=1) without editing command lines.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace phonoc {

class CliOptions {
 public:
  CliOptions(int argc, const char* const* argv);

  /// Positional (non-option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const noexcept;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Read an environment variable as integer with fallback.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read an environment variable as double with fallback.
[[nodiscard]] double env_double(const char* name, double fallback);

/// True when PHONOC_FULL is set to a non-zero / non-empty value; the bench
/// harness uses this to switch to paper-scale sample counts.
[[nodiscard]] bool full_scale_requested();

}  // namespace phonoc
