#pragma once
/// \file error.hpp
/// \brief Exception hierarchy and precondition helpers for PhoNoCMap.

#include <stdexcept>
#include <string>

namespace phonoc {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Parsing of an input file / description failed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = -1)
      : Error(line >= 0 ? what + " (line " + std::to_string(line) + ")" : what),
        line_(line) {}
  /// 1-based line number of the offending input, or -1 if unknown.
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_ = -1;
};

/// An architectural description is internally inconsistent (e.g. a router
/// netlist with a dangling port, or a routing function that emits an
/// illegal turn for the router in use).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// The parallel execution subsystem was misused (e.g. work submitted to
/// a thread pool that has already shut down).
class ExecError : public Error {
 public:
  explicit ExecError(const std::string& what) : Error(what) {}
};

/// Throw InvalidArgument with `message` unless `condition` holds.
void require(bool condition, const std::string& message);

/// Throw ModelError with `message` unless `condition` holds.
void require_model(bool condition, const std::string& message);

}  // namespace phonoc
