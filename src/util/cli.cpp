#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

CliOptions::CliOptions(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option,
    // otherwise a bare boolean flag.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "1";
    }
  }
}

bool CliOptions::has(const std::string& name) const noexcept {
  return options_.count(name) > 0;
}

std::optional<std::string> CliOptions::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliOptions::get_or(const std::string& name,
                               const std::string& fallback) const {
  return get(name).value_or(fallback);
}

double CliOptions::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  return value ? parse_double(*value) : fallback;
}

std::int64_t CliOptions::get_int(const std::string& name,
                                 std::int64_t fallback) const {
  const auto value = get(name);
  return value ? parse_long(*value) : fallback;
}

bool CliOptions::get_bool(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  const auto lowered = to_lower(*value);
  return !(lowered == "0" || lowered == "false" || lowered == "no" ||
           lowered.empty());
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  try {
    return parse_long(raw);
  } catch (const ParseError&) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  try {
    return parse_double(raw);
  } catch (const ParseError&) {
    return fallback;
  }
}

bool full_scale_requested() { return env_int("PHONOC_FULL", 0) != 0; }

}  // namespace phonoc
