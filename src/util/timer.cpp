#include "util/timer.hpp"

// Header-only component; translation unit kept for uniform module layout.
