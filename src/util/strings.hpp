#pragma once
/// \file strings.hpp
/// \brief Small string helpers shared by the IO and reporting layers.

#include <string>
#include <string_view>
#include <vector>

namespace phonoc {

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Split on a delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Split on arbitrary whitespace runs; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view text);

/// True when `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Parse helpers that throw phonoc::ParseError on malformed input.
[[nodiscard]] double parse_double(std::string_view text, int line = -1);
[[nodiscard]] long parse_long(std::string_view text, int line = -1);

/// Format a double with fixed precision (reporting convenience).
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Round-trippable double formatting (max_digits10) for CSV output.
[[nodiscard]] std::string format_double(double value);

}  // namespace phonoc
