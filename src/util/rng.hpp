#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable random number generation.
///
/// All stochastic components of PhoNoCMap (random search, GA, R-PBLA
/// restarts, workload generators) draw from this engine so that every
/// experiment is reproducible from a single 64-bit seed. The engine is
/// xoshiro256** (public domain, Blackman & Vigna), seeded via SplitMix64.

#include <array>
#include <cstdint>
#include <vector>

namespace phonoc {

/// SplitMix64 step; used for seeding and for hashing seeds into streams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions when needed, but the common paths
/// (uniform ints/doubles, shuffles) are provided as members to keep
/// behaviour identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed with a single 64-bit value (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli trial with success probability `p`.
  [[nodiscard]] bool next_bool(double p) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derive an independent child stream (e.g. one per optimizer restart).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace phonoc
