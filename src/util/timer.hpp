#pragma once
/// \file timer.hpp
/// \brief Monotonic wall-clock timer used for optimizer time budgets.

#include <chrono>

namespace phonoc {

/// Thin wrapper over steady_clock; starts on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace phonoc
