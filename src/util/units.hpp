#pragma once
/// \file units.hpp
/// \brief Decibel / linear power conversions and small physical-unit helpers.
///
/// Conventions used throughout PhoNoCMap:
///  * power *gains* are expressed either in dB (negative for losses, e.g.
///    a crossing contributes -0.04 dB) or as linear power ratios in (0, 1];
///  * `db_to_linear(-3.0) ~= 0.5`, `linear_to_db(0.5) ~= -3.0`;
///  * distances are in centimetres, matching the paper's propagation-loss
///    coefficient of -0.274 dB/cm.

#include <cmath>
#include <limits>

namespace phonoc {

/// Convert a power ratio expressed in decibel to a linear power ratio.
[[nodiscard]] inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Convert a linear power ratio to decibel. `linear <= 0` yields -infinity,
/// which models a fully blocked path (and keeps min/max reductions sane).
[[nodiscard]] inline double linear_to_db(double linear) noexcept {
  if (linear <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(linear);
}

/// Signal-to-noise ratio in dB from linear signal/noise powers.
/// Zero noise maps to +infinity; callers clamp with `snr_ceiling_db`.
[[nodiscard]] inline double snr_db(double signal_linear,
                                   double noise_linear) noexcept {
  if (noise_linear <= 0.0) return std::numeric_limits<double>::infinity();
  if (signal_linear <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal_linear / noise_linear);
}

/// Millimetres to centimetres (floorplan dimensions are entered in mm).
[[nodiscard]] constexpr double mm_to_cm(double mm) noexcept { return mm / 10.0; }

/// True when two doubles agree within an absolute tolerance.
[[nodiscard]] inline bool approx_equal(double a, double b,
                                       double tol = 1e-9) noexcept {
  return std::fabs(a - b) <= tol;
}

}  // namespace phonoc
