#include "model/power_budget.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

PowerBudget compute_power_budget(double worst_loss_db,
                                 const PowerBudgetOptions& options) {
  require(worst_loss_db <= 0.0,
          "compute_power_budget: worst_loss_db must be <= 0");
  require(options.wavelength_channels >= 1,
          "compute_power_budget: at least one wavelength channel");

  PowerBudget budget;
  // P_laser >= sensitivity + |loss| + margin (all dB-domain).
  budget.required_power_dbm = options.detector_sensitivity_dbm -
                              worst_loss_db + options.margin_db;
  // The nonlinearity ceiling applies to the total power in a waveguide;
  // with N wavelengths each channel gets 1/N of it.
  budget.available_power_dbm =
      options.max_injected_power_dbm -
      10.0 * std::log10(static_cast<double>(options.wavelength_channels));
  budget.slack_db = budget.available_power_dbm - budget.required_power_dbm;
  budget.feasible = budget.slack_db >= 0.0;
  return budget;
}

}  // namespace phonoc
