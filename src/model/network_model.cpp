#include "model/network_model.hpp"

#include <algorithm>

#include "model/path_builder.hpp"
#include "util/error.hpp"

namespace phonoc {

NetworkModel::NetworkModel(Topology topology, RouterModelPtr router,
                           std::shared_ptr<const RoutingAlgorithm> routing,
                           NetworkModelOptions options)
    : topology_(std::move(topology)),
      router_(std::move(router)),
      routing_(std::move(routing)),
      options_(options) {
  require(router_ != nullptr, "NetworkModel: null router model");
  require(routing_ != nullptr, "NetworkModel: null routing algorithm");
  topology_.validate();
  require_model(topology_.router_ports() <= router_->port_count(),
                "NetworkModel: topology uses more ports than the router has");
  require(options_.snr_ceiling_db > 0.0,
          "NetworkModel: snr_ceiling_db must be positive");

  const auto tiles = topology_.tile_count();
  require_model(tiles <= 32768,
                "NetworkModel: tile count exceeds PathData index range");
  paths_.resize(tiles * tiles);
  for (TileId src = 0; src < tiles; ++src) {
    for (TileId dst = 0; dst < tiles; ++dst) {
      if (src == dst) continue;
      const auto route = routing_->compute_route(topology_, src, dst);
      validate_route(topology_, route, src, dst);
      paths_[src * tiles + dst] = build_path_data(topology_, *router_, route);
    }
  }
}

const PathData& NetworkModel::path(TileId src, TileId dst) const {
  const auto tiles = topology_.tile_count();
  require(src < tiles && dst < tiles, "NetworkModel::path: tile out of range");
  require(src != dst, "NetworkModel::path: src == dst");
  return paths_[src * tiles + dst];
}

double NetworkModel::worst_case_path_loss_db() const {
  double worst = 0.0;
  const auto tiles = topology_.tile_count();
  for (TileId src = 0; src < tiles; ++src)
    for (TileId dst = 0; dst < tiles; ++dst)
      if (src != dst)
        worst = std::min(worst, paths_[src * tiles + dst].total_loss_db);
  return worst;
}

}  // namespace phonoc
