#include "model/wavelength.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

std::vector<std::vector<double>> interference_matrix(
    const NetworkModel& net, const CommGraph& cg,
    std::span<const TileId> assignment) {
  require(assignment.size() == cg.task_count(),
          "interference_matrix: assignment size != task count");
  const auto edges = cg.graph().edges();
  std::vector<const PathData*> paths;
  paths.reserve(edges.size());
  for (const auto& e : edges)
    paths.push_back(&net.path(assignment[e.src], assignment[e.dst]));

  std::vector<std::vector<double>> w(
      edges.size(), std::vector<double>(edges.size(), 0.0));
  for (std::size_t v = 0; v < edges.size(); ++v)
    for (std::size_t a = 0; a < edges.size(); ++a)
      if (v != a) w[v][a] = noise_contribution(net, *paths[v], *paths[a]);
  return w;
}

WdmAssignment assign_wavelengths(const NetworkModel& net, const CommGraph& cg,
                                 std::span<const TileId> assignment,
                                 const WdmOptions& options) {
  require(options.channels >= 1, "assign_wavelengths: need >= 1 channel");
  const auto w = interference_matrix(net, cg, assignment);
  const auto n = w.size();

  WdmAssignment result;
  result.channel.assign(n, 0);
  if (n == 0) return result;

  // Order: total interference (received + caused), heaviest first.
  std::vector<double> total(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) total[i] += w[i][j] + w[j][i];
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (total[a] != total[b]) return total[a] > total[b];
    return a < b;
  });

  std::vector<bool> placed(n, false);
  for (const auto i : order) {
    double best_cost = 0.0;
    std::uint32_t best_channel = 0;
    bool first = true;
    for (std::uint32_t c = 0; c < options.channels; ++c) {
      double cost = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (!placed[j] || result.channel[j] != c) continue;
        cost += w[i][j] + w[j][i];
      }
      if (first || cost < best_cost) {
        first = false;
        best_cost = cost;
        best_channel = c;
      }
    }
    result.channel[i] = best_channel;
    result.residual_weight += best_cost;
    placed[i] = true;
  }
  std::uint32_t used = 0;
  for (const auto c : result.channel)
    used = std::max(used, c + 1);
  result.channels_used = used;
  return result;
}

EvaluationResult evaluate_mapping_wdm(const NetworkModel& net,
                                      const CommGraph& cg,
                                      std::span<const TileId> assignment,
                                      const WdmAssignment& wdm,
                                      const WdmOptions& options,
                                      bool detailed) {
  const auto edges = cg.graph().edges();
  require(wdm.channel.size() == edges.size(),
          "evaluate_mapping_wdm: assignment does not cover the CG edges");
  require(options.inter_channel_isolation_db <= 0.0,
          "evaluate_mapping_wdm: isolation must be <= 0 dB");
  const double isolation = db_to_linear(options.inter_channel_isolation_db);
  const auto w = interference_matrix(net, cg, assignment);

  std::vector<const PathData*> paths;
  paths.reserve(edges.size());
  for (const auto& e : edges)
    paths.push_back(&net.path(assignment[e.src], assignment[e.dst]));

  EvaluationResult result;
  result.worst_snr_db = net.options().snr_ceiling_db;
  if (edges.empty()) return result;
  if (detailed) result.edges.reserve(edges.size());

  for (std::size_t v = 0; v < edges.size(); ++v) {
    double noise = 0.0;
    for (std::size_t a = 0; a < edges.size(); ++a) {
      if (a == v) continue;
      const double factor =
          wdm.channel[a] == wdm.channel[v] ? 1.0 : isolation;
      noise += w[v][a] * factor;
    }
    const double snr = std::min(snr_db(paths[v]->total_gain, noise),
                                net.options().snr_ceiling_db);
    result.worst_loss_db =
        std::min(result.worst_loss_db, paths[v]->total_loss_db);
    result.worst_snr_db = std::min(result.worst_snr_db, snr);
    if (detailed)
      result.edges.push_back(EdgeMetrics{
          static_cast<EdgeId>(v), assignment[edges[v].src],
          assignment[edges[v].dst], paths[v]->total_loss_db,
          paths[v]->total_gain, noise, snr});
  }
  return result;
}

}  // namespace phonoc
