#pragma once
/// \file incremental.hpp
/// \brief Incremental (delta) mapping evaluation for two-tile-swap moves.
///
/// The SA / tabu / R-PBLA neighborhood move is a two-tile swap, yet
/// `evaluate_mapping` re-derives loss and crosstalk noise for every CG
/// edge on every call — O(|E|^2) noise_contribution evaluations per
/// optimizer step. This kernel keeps the full per-edge state of the
/// current mapping alive (paths, the |E|x|E| pairwise-contribution
/// matrix, the per-victim crosstalk-partner adjacency, and per-edge
/// metrics) and, on a swap, re-evaluates only the edges touching the
/// swapped tiles plus the partner entries they invalidate.
///
/// Bit-identity contract: every quantity this kernel exposes is
/// bit-identical to a fresh `evaluate_mapping` of the same assignment,
/// with zero tolerance. Three properties make that possible:
///  1. each pairwise `noise_contribution` is a pure function of the two
///     paths, so a cached value equals a recomputed one;
///  2. a victim's noise is re-summed over its nonzero partners in
///     ascending edge order — contributions are never negative and
///     adding an exact +0.0 is the identity, so skipping the zero terms
///     reproduces `evaluate_mapping`'s full ascending sum bitwise;
///  3. the worst-case folds are pure selections (std::min), which are
///     replayed in ascending edge order whenever they must be rebuilt.
///
/// Transactional protocol: `propose_swap` applies a move and updates
/// the state in place while recording an undo log; `commit` keeps it,
/// `revert` restores the pre-move state exactly (bitwise). At most one
/// proposal may be outstanding. `reset` is the full-rebuild fallback
/// for arbitrary re-assignments (restarts, reheats, GA offspring).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/comm_graph.hpp"
#include "model/evaluation.hpp"
#include "model/network_model.hpp"

namespace phonoc {

class IncrementalEvaluation {
 public:
  /// Precomputes the task -> incident-edge adjacency. The network and
  /// the CG must outlive the kernel.
  IncrementalEvaluation(const NetworkModel& net, const CommGraph& cg);

  /// Full rebuild from an arbitrary assignment (validated like
  /// `evaluate_mapping`: injective, every tile in range). O(|E|^2).
  void reset(std::span<const TileId> assignment);

  /// True once `reset` has established a base state.
  [[nodiscard]] bool has_state() const noexcept { return has_state_; }
  /// True while a proposal awaits commit/revert.
  [[nodiscard]] bool pending() const noexcept { return pending_; }

  /// Apply the two-tile swap (a, b) and update all affected state.
  /// O(touched edges x |E|) noise_contribution calls instead of
  /// O(|E|^2). Requires a base state and no outstanding proposal.
  void propose_swap(TileId a, TileId b);
  /// Keep the proposed move as the new base state.
  void commit();
  /// Restore the exact pre-proposal state (bitwise).
  void revert();

  /// Current (possibly proposed) state as a view; `edges` is always
  /// populated — the kernel maintains per-edge detail continuously.
  [[nodiscard]] EvaluationView view() const noexcept;
  /// Materialize the current state; bit-identical to `evaluate_mapping`
  /// of `assignment()` with the same `detailed` flag.
  [[nodiscard]] EvaluationResult result(bool detailed) const;

  [[nodiscard]] std::span<const TileId> assignment() const noexcept {
    return assignment_;
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return cg_edges_.size();
  }

  /// Number of full rebuilds / incremental proposals served (telemetry
  /// for benches; not part of the evaluation-count contract).
  [[nodiscard]] std::uint64_t rebuild_count() const noexcept {
    return rebuilds_;
  }
  [[nodiscard]] std::uint64_t proposal_count() const noexcept {
    return proposals_;
  }

 private:
  /// Ascending-order selection fold mirroring evaluate_mapping's
  /// std::min chain: `value` is the running minimum, `arg` the edge
  /// that set it (kNoArg when the seed value survived).
  struct MinFold {
    double value = 0.0;
    std::uint32_t arg = kNoArg;
  };
  static constexpr std::uint32_t kNoArg = ~std::uint32_t{0};

  [[nodiscard]] double& cell(std::uint32_t victim,
                             std::uint32_t attacker) noexcept {
    return contrib_[static_cast<std::size_t>(victim) * cg_edges_.size() +
                    attacker];
  }
  [[nodiscard]] const PathData& path_of_edge(std::uint32_t e) const;
  void mark_changed(std::uint32_t victim);
  void resum_victim(std::uint32_t victim);
  [[nodiscard]] MinFold fold_loss() const;
  [[nodiscard]] MinFold fold_snr() const;
  void apply_tile_swap(TileId a, TileId b);

  const NetworkModel& net_;
  std::vector<std::pair<NodeId, NodeId>> cg_edges_;  ///< (src, dst) per edge
  std::vector<std::vector<std::uint32_t>> task_edges_;  ///< task -> edges
  std::size_t tiles_;
  std::size_t tasks_;
  double ceiling_db_;

  bool has_state_ = false;
  bool pending_ = false;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t proposals_ = 0;

  // --- committed/proposed state ---------------------------------------------
  std::vector<TileId> assignment_;       ///< task -> tile
  std::vector<int> tile_to_task_;        ///< tile -> task or -1
  std::vector<const PathData*> paths_;   ///< per edge
  std::vector<double> contrib_;          ///< |E|x|E| victim-major matrix
  /// Crosstalk-partner adjacency: per victim, the attackers with a
  /// nonzero contribution, ascending (the resum order).
  std::vector<std::vector<std::uint32_t>> partners_;
  std::vector<EdgeMetrics> metrics_;     ///< per edge, always maintained
  MinFold worst_loss_;
  MinFold worst_snr_;

  // --- undo log (one outstanding proposal) ----------------------------------
  struct Undo {
    TileId tile_a = 0;
    TileId tile_b = 0;
    bool swapped = false;  ///< the proposal moved at least one task
    std::vector<std::pair<std::uint32_t, const PathData*>> paths;
    std::vector<std::pair<std::uint32_t, EdgeMetrics>> metrics;
    /// (victim, attacker, previous contribution)
    std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> cells;
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> partners;
    MinFold worst_loss;
    MinFold worst_snr;
  };
  Undo undo_;

  // --- scratch (reused across proposals) ------------------------------------
  std::vector<std::uint32_t> touched_;       ///< edges with a changed path
  std::vector<std::uint32_t> changed_;       ///< victims needing a resum
  std::vector<std::uint8_t> touched_mark_;   ///< per-edge flags
  std::vector<std::uint8_t> changed_mark_;
  std::vector<std::uint8_t> partners_saved_;
};

}  // namespace phonoc
