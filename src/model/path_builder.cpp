#include "model/path_builder.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

PathData build_path_data(const Topology& topology, const RouterModel& router,
                         const Route& route) {
  PathData data;
  data.hops = route.hops;
  const auto n = route.hops.size();
  data.conn.reserve(n);

  const auto& linear = router.linear_parameters();

  // Per-hop connection indices (validated against the router).
  for (const auto& hop : route.hops) {
    const int idx = router.connection_index(hop.in_port, hop.out_port);
    require_model(idx >= 0,
                  "router '" + router.name() + "' does not support the " +
                      standard_port_name(hop.in_port) + "->" +
                      standard_port_name(hop.out_port) +
                      " connection required by the routing algorithm");
    data.conn.push_back(static_cast<std::uint16_t>(idx));
  }

  // Link gains between consecutive hops.
  std::vector<double> link_gain(route.links.size(), 1.0);
  for (std::size_t i = 0; i < route.links.size(); ++i) {
    const double len = topology.link(route.links[i]).length_cm;
    data.link_length_cm += len;
    link_gain[i] = linear.propagation_gain(len);
  }

  // Prefix: power arriving at hop i's router input.
  data.arrive_gain.assign(n, 1.0);
  for (std::size_t i = 1; i < n; ++i)
    data.arrive_gain[i] = data.arrive_gain[i - 1] *
                          router.connection_gain(data.conn[i - 1]) *
                          link_gain[i - 1];

  // Suffix: gain from hop i's router output to the detector.
  data.exit_suffix.assign(n, 1.0);
  for (std::size_t i = n - 1; i-- > 0;)
    data.exit_suffix[i] = link_gain[i] *
                          router.connection_gain(data.conn[i + 1]) *
                          data.exit_suffix[i + 1];

  data.total_gain = data.arrive_gain[n - 1] *
                    router.connection_gain(data.conn[n - 1]);
  data.total_loss_db = linear_to_db(data.total_gain);

  data.hop_at_tile.assign(topology.tile_count(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    require_model(data.hop_at_tile[route.hops[i].tile] < 0,
                  "route visits a tile twice (unsupported by the "
                  "crosstalk analysis)");
    data.hop_at_tile[route.hops[i].tile] = static_cast<std::int16_t>(i);
  }
  return data;
}

}  // namespace phonoc
