#pragma once
/// \file network_model.hpp
/// \brief Composition of topology + router microarchitecture + routing
/// into a fully precomputed photonic network model.
///
/// For every ordered tile pair the model stores the route together with
/// the per-hop quantities the analyses need in O(1): the connection
/// index at each router, the attacker-side prefix gain (power arriving
/// at each hop's router input) and the victim-side suffix gain (from
/// each hop's router output to the destination detector). Building the
/// model validates that the routing algorithm only requests connections
/// the router actually supports.

#include <cstdint>
#include <memory>
#include <vector>

#include "router/router_model.hpp"
#include "routing/route.hpp"
#include "topology/topology.hpp"

namespace phonoc {

/// How the crosstalk analysis treats connection pairs that cannot be
/// simultaneously active in one router (see PairAnalysis::conflict).
enum class ConflictPolicy {
  /// Skip conflicting pairs' contribution at that router (default;
  /// matches the feasibility constraints of circuit-switched photonic
  /// NoCs).
  Exclude,
  /// Sum every pair regardless (naive worst case; ablation A2).
  Ignore,
};

struct NetworkModelOptions {
  ModelFidelity fidelity = ModelFidelity::Simplified;
  ConflictPolicy conflict_policy = ConflictPolicy::Exclude;
  /// SNR reported for a communication with zero accumulated noise, dB.
  double snr_ceiling_db = 200.0;
};

/// Precomputed route data for one ordered tile pair.
struct PathData {
  std::vector<Hop> hops;
  /// Router connection index per hop (into the shared RouterModel).
  std::vector<std::uint16_t> conn;
  /// Linear gain from injected power to the input of hop i's router.
  std::vector<double> arrive_gain;
  /// Linear gain from hop i's router output to the destination detector.
  std::vector<double> exit_suffix;
  /// End-to-end linear gain and the same in dB.
  double total_gain = 1.0;
  double total_loss_db = 0.0;
  /// Total waveguide length over links, cm.
  double link_length_cm = 0.0;
  /// hop_at_tile[tile] = hop index on this path, or -1.
  std::vector<std::int16_t> hop_at_tile;

  /// Hop index at `tile`, or -1 when the path does not visit it.
  [[nodiscard]] int hop_index_at(TileId tile) const noexcept {
    return hop_at_tile[tile];
  }
};

class NetworkModel {
 public:
  /// Builds and verifies all tile-pair paths. Throws ModelError when the
  /// routing algorithm emits a connection the router lacks.
  NetworkModel(Topology topology, RouterModelPtr router,
               std::shared_ptr<const RoutingAlgorithm> routing,
               NetworkModelOptions options = {});

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const RouterModel& router() const noexcept { return *router_; }
  [[nodiscard]] const RoutingAlgorithm& routing() const noexcept {
    return *routing_;
  }
  [[nodiscard]] const NetworkModelOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] std::size_t tile_count() const noexcept {
    return topology_.tile_count();
  }

  /// Path for src != dst (both in range).
  [[nodiscard]] const PathData& path(TileId src, TileId dst) const;

  /// Insertion loss of the (src, dst) communication, dB (<= 0).
  [[nodiscard]] double path_loss_db(TileId src, TileId dst) const {
    return path(src, dst).total_loss_db;
  }

  /// Crosstalk coefficient used by the analyses: linear noise gain for
  /// the (victim conn, attacker conn) pair at one router under this
  /// model's fidelity and conflict policy.
  [[nodiscard]] double pair_noise_gain(std::uint16_t victim_conn,
                                       std::uint16_t attacker_conn) const {
    if (options_.conflict_policy == ConflictPolicy::Exclude &&
        router_->conflicts(victim_conn, attacker_conn))
      return 0.0;
    return router_->crosstalk_gain(victim_conn, attacker_conn,
                                   options_.fidelity);
  }

  /// Worst path loss over all ordered tile pairs (network property,
  /// independent of any mapping), dB.
  [[nodiscard]] double worst_case_path_loss_db() const;

 private:
  Topology topology_;
  RouterModelPtr router_;
  std::shared_ptr<const RoutingAlgorithm> routing_;
  NetworkModelOptions options_;
  /// paths_[src * tiles + dst]; diagonal entries unused.
  std::vector<PathData> paths_;
};

}  // namespace phonoc
