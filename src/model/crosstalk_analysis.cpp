#include "model/crosstalk_analysis.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

std::vector<VictimReport> analyze_crosstalk(
    const NetworkModel& net, const CommGraph& cg,
    std::span<const TileId> assignment) {
  require(assignment.size() == cg.task_count(),
          "analyze_crosstalk: assignment size != task count");
  const auto& edges = cg.graph().edges();

  std::vector<const PathData*> paths;
  paths.reserve(edges.size());
  for (const auto& e : edges)
    paths.push_back(&net.path(assignment[e.src], assignment[e.dst]));

  std::vector<VictimReport> reports;
  reports.reserve(edges.size());
  for (std::size_t v = 0; v < edges.size(); ++v) {
    const auto& victim = *paths[v];
    VictimReport report;
    report.victim_edge = static_cast<EdgeId>(v);
    report.signal_gain = victim.total_gain;

    for (std::size_t a = 0; a < edges.size(); ++a) {
      if (a == v) continue;
      const auto& attacker = *paths[a];
      for (std::size_t ai = 0; ai < attacker.hops.size(); ++ai) {
        const int vi = victim.hop_index_at(attacker.hops[ai].tile);
        if (vi < 0) continue;
        const double k = net.pair_noise_gain(
            victim.conn[static_cast<std::size_t>(vi)], attacker.conn[ai]);
        if (k <= 0.0) continue;
        NoiseEvent event;
        event.attacker_edge = static_cast<EdgeId>(a);
        event.router_tile = attacker.hops[ai].tile;
        event.attacker_power = attacker.arrive_gain[ai];
        event.coefficient = k;
        event.downstream_gain =
            victim.exit_suffix[static_cast<std::size_t>(vi)];
        event.noise_at_detector =
            event.attacker_power * k * event.downstream_gain;
        report.total_noise += event.noise_at_detector;
        report.events.push_back(event);
      }
    }
    std::sort(report.events.begin(), report.events.end(),
              [](const NoiseEvent& x, const NoiseEvent& y) {
                return x.noise_at_detector > y.noise_at_detector;
              });
    report.snr_db = std::min(snr_db(report.signal_gain, report.total_noise),
                             net.options().snr_ceiling_db);
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace phonoc
