#pragma once
/// \file crosstalk_analysis.hpp
/// \brief Detailed crosstalk breakdown: which attacker hurts which
/// victim, at which router, and by how much. Used by the reporting
/// example, the tests, and anyone debugging a mapping's SNR.

#include <span>
#include <vector>

#include "graph/comm_graph.hpp"
#include "model/network_model.hpp"

namespace phonoc {

/// One noise injection event onto a victim communication.
struct NoiseEvent {
  EdgeId attacker_edge = 0;      ///< index into the CG edge list
  TileId router_tile = 0;        ///< router where the leak happens
  double attacker_power = 0.0;   ///< linear attacker power entering the router
  double coefficient = 0.0;      ///< linear leak coefficient (pair matrix)
  double downstream_gain = 0.0;  ///< victim-side gain from router to detector
  double noise_at_detector = 0.0;  ///< product of the three above
};

/// All noise received by one victim communication under a mapping.
struct VictimReport {
  EdgeId victim_edge = 0;
  double signal_gain = 0.0;  ///< linear end-to-end signal gain
  double total_noise = 0.0;  ///< linear sum over events
  double snr_db = 0.0;       ///< clamped to the model ceiling
  std::vector<NoiseEvent> events;
};

/// Per-victim crosstalk reports for every communication of `cg` under
/// `assignment` (same contract as evaluate_mapping). Event lists are
/// sorted by decreasing noise contribution.
[[nodiscard]] std::vector<VictimReport> analyze_crosstalk(
    const NetworkModel& net, const CommGraph& cg,
    std::span<const TileId> assignment);

}  // namespace phonoc
