#include "model/batch_eval.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define PHONOC_RESTRICT __restrict__
#else
#define PHONOC_RESTRICT
#endif

/// The vectorized sieve (single-mask-word fast path, tiles <= 64):
/// intersect the victim's tile mask with every attacker's. A zero word
/// means the two paths share no tile, so every per-hop term of the pair
/// is exactly +0.0 and the whole attacker is skipped. Kept as its own
/// function over restrict-qualified pointers so the loop carries no
/// aliasing barrier — CI compiles this TU with -fopt-info-vec and
/// fails if the loop stops vectorizing.
void sieve_row(const std::uint64_t* PHONOC_RESTRICT masks,
               std::uint64_t victim_mask,
               std::uint64_t* PHONOC_RESTRICT inter, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) inter[i] = masks[i] & victim_mask;
}

/// Generic multi-word sieve (tiles > 64): OR-fold the per-word
/// intersections into one nonzero/zero word per attacker.
void sieve_row_wide(const std::uint64_t* PHONOC_RESTRICT masks,
                    const std::uint64_t* PHONOC_RESTRICT victim_mask,
                    std::uint64_t* PHONOC_RESTRICT inter, std::size_t n,
                    std::size_t words) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < words; ++w)
      acc |= masks[i * words + w] & victim_mask[w];
    inter[i] = acc;
  }
}

}  // namespace

BatchEvalPlan::BatchEvalPlan(const NetworkModel& net, const CommGraph& cg)
    : tiles_(net.tile_count()),
      tasks_(cg.task_count()),
      ceiling_db_(net.options().snr_ceiling_db),
      conns_(net.router().connection_count()),
      mask_words_((net.tile_count() + 63) / 64) {
  require(tasks_ <= tiles_,
          "BatchEvalPlan: more tasks than tiles (violates Eq. 2)");

  const auto edges = cg.edges();
  edge_src_.reserve(edges.size());
  edge_dst_.reserve(edges.size());
  for (const auto& e : edges) {
    edge_src_.push_back(e.src);
    edge_dst_.push_back(e.dst);
  }

  // Dense pair-gain table with the conflict policy and fidelity baked
  // in. evaluate_mapping skips terms with k <= 0 before multiplying;
  // clamping those entries to exactly 0.0 makes the multiplied-through
  // term an exact +0.0 — the same identity on a non-negative
  // accumulator, so the dense lookup needs no skip branch.
  pair_gain_.resize(conns_ * conns_);
  for (std::size_t v = 0; v < conns_; ++v)
    for (std::size_t a = 0; a < conns_; ++a) {
      const double k = net.pair_noise_gain(static_cast<std::uint16_t>(v),
                                           static_cast<std::uint16_t>(a));
      pair_gain_[v * conns_ + a] = k > 0.0 ? k : 0.0;
    }

  // Flatten every ordered tile pair's path. Diagonal rows stay empty
  // (hop_begin == hop_end) and are never referenced: assignments are
  // injective and the CG has no self-loops.
  const std::size_t path_rows = tiles_ * tiles_;
  hop_begin_.assign(path_rows, 0);
  hop_end_.assign(path_rows, 0);
  total_gain_.assign(path_rows, 1.0);
  total_loss_db_.assign(path_rows, 0.0);
  tile_mask_.assign(path_rows * mask_words_, 0);
  victim_hop_.assign(path_rows * tiles_, std::int16_t{-1});

  std::size_t total_hops = 0;
  for (TileId s = 0; s < tiles_; ++s)
    for (TileId d = 0; d < tiles_; ++d)
      if (s != d) total_hops += net.path(s, d).hops.size();
  hop_tile_.reserve(total_hops);
  hop_conn_.reserve(total_hops);
  hop_arrive_.reserve(total_hops);
  hop_exit_.reserve(total_hops);

  for (TileId s = 0; s < tiles_; ++s) {
    for (TileId d = 0; d < tiles_; ++d) {
      if (s == d) continue;
      const PathData& p = net.path(s, d);
      const std::size_t pid = path_id(s, d);
      hop_begin_[pid] = static_cast<std::uint32_t>(hop_tile_.size());
      for (std::size_t h = 0; h < p.hops.size(); ++h) {
        hop_tile_.push_back(p.hops[h].tile);
        hop_conn_.push_back(p.conn[h]);
        hop_arrive_.push_back(p.arrive_gain[h]);
        hop_exit_.push_back(p.exit_suffix[h]);
      }
      hop_end_[pid] = static_cast<std::uint32_t>(hop_tile_.size());
      total_gain_[pid] = p.total_gain;
      total_loss_db_[pid] = p.total_loss_db;
      // The probe row and the mask both mirror hop_at_tile (not the hop
      // list), so the kernel's visited test agrees with hop_index_at
      // exactly.
      for (TileId t = 0; t < tiles_; ++t) {
        const int hi = p.hop_index_at(t);
        if (hi < 0) continue;
        victim_hop_[pid * tiles_ + t] = static_cast<std::int16_t>(hi);
        tile_mask_[pid * mask_words_ + t / 64] |= std::uint64_t{1} << (t % 64);
      }
    }
  }
}

BatchEvaluator::BatchEvaluator(const NetworkModel& net, const CommGraph& cg)
    : BatchEvaluator(std::make_shared<const BatchEvalPlan>(net, cg)) {}

BatchEvaluator::BatchEvaluator(std::shared_ptr<const BatchEvalPlan> plan)
    : plan_(std::move(plan)) {
  require(plan_ != nullptr, "BatchEvaluator: null plan");
  const std::size_t edges = plan_->edge_count();
  path_of_edge_.resize(edges);
  edge_mask_.resize(edges * plan_->mask_words_);
  sieve_.resize(edges);
  tile_used_.resize(plan_->tiles_);
}

void BatchEvaluator::evaluate(std::span<const TileId> assignments,
                              std::size_t batch, std::span<BatchPoint> out) {
  run(assignments, batch, out, {}, /*validate=*/true);
}

void BatchEvaluator::evaluate_detailed(std::span<const TileId> assignments,
                                       std::size_t batch,
                                       std::span<BatchPoint> out,
                                       std::span<EdgeMetrics> edges_out) {
  require(edges_out.size() == batch * plan_->edge_count(),
          "BatchEvaluator: edges_out size != batch * edge_count");
  run(assignments, batch, out, edges_out, /*validate=*/true);
}

void BatchEvaluator::evaluate_trusted(std::span<const TileId> assignments,
                                      std::size_t batch,
                                      std::span<BatchPoint> out,
                                      std::span<EdgeMetrics> edges_out) {
  if (!edges_out.empty())
    require(edges_out.size() == batch * plan_->edge_count(),
            "BatchEvaluator: edges_out size != batch * edge_count");
  run(assignments, batch, out, edges_out, /*validate=*/false);
}

void BatchEvaluator::validate_assignment(std::span<const TileId> assignment) {
  std::fill(tile_used_.begin(), tile_used_.end(), std::uint8_t{0});
  for (const auto tile : assignment) {
    require(tile < plan_->tiles_,
            "BatchEvaluator: assignment targets a tile out of range");
    require(!tile_used_[tile],
            "BatchEvaluator: two tasks mapped to the same tile");
    tile_used_[tile] = 1;
  }
}

void BatchEvaluator::run(std::span<const TileId> assignments,
                         std::size_t batch, std::span<BatchPoint> out,
                         std::span<EdgeMetrics> edges_out, bool validate) {
  const BatchEvalPlan& plan = *plan_;
  const std::size_t tasks = plan.tasks_;
  const std::size_t edges = plan.edge_count();
  require(assignments.size() == batch * tasks,
          "BatchEvaluator: assignments size != batch * task_count");
  require(out.size() == batch, "BatchEvaluator: out size != batch");

  const std::size_t words = plan.mask_words_;
  const std::size_t conns = plan.conns_;
  const std::uint32_t* PHONOC_RESTRICT hop_tile = plan.hop_tile_.data();
  const std::uint32_t* PHONOC_RESTRICT hop_conn = plan.hop_conn_.data();
  const double* PHONOC_RESTRICT hop_arrive = plan.hop_arrive_.data();
  const double* PHONOC_RESTRICT hop_exit = plan.hop_exit_.data();
  const double* PHONOC_RESTRICT gain_table = plan.pair_gain_.data();

  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const TileId> assignment =
        assignments.subspan(b * tasks, tasks);
    if (validate) validate_assignment(assignment);

    BatchPoint point;
    point.worst_snr_db = plan.ceiling_db_;
    if (edges == 0) {
      out[b] = point;
      continue;
    }

    // Resolve this mapping's edges to path ids once and gather their
    // tile masks into contiguous scratch (the sieve's operands).
    for (std::size_t e = 0; e < edges; ++e) {
      const std::size_t pid =
          plan.path_id(assignment[plan.edge_src_[e]],
                       assignment[plan.edge_dst_[e]]);
      path_of_edge_[e] = static_cast<std::uint32_t>(pid);
      for (std::size_t w = 0; w < words; ++w)
        edge_mask_[e * words + w] = plan.tile_mask_[pid * words + w];
    }

    EdgeMetrics* detail =
        edges_out.empty() ? nullptr : edges_out.data() + b * edges;

    for (std::size_t v = 0; v < edges; ++v) {
      const std::size_t pv = path_of_edge_[v];

      if (words == 1)
        sieve_row(edge_mask_.data(), plan.tile_mask_[pv], sieve_.data(),
                  edges);
      else
        sieve_row_wide(edge_mask_.data(), &plan.tile_mask_[pv * words],
                       sieve_.data(), edges, words);
      sieve_[v] = 0;  // a == v contributes nothing (self-pair)

      const std::int16_t* PHONOC_RESTRICT victim_row =
          &plan.victim_hop_[pv * plan.tiles_];
      const std::size_t vbase = plan.hop_begin_[pv];

      // Ascending attacker order with per-attacker subtotals — the
      // exact addition sequence of evaluate_mapping's nested
      // noise_contribution calls (skipped pairs/hops add exact +0.0,
      // the identity on this non-negative accumulator).
      double noise = 0.0;
      for (std::size_t a = 0; a < edges; ++a) {
        if (sieve_[a] == 0) continue;
        const std::size_t pa = path_of_edge_[a];
        const std::size_t end = plan.hop_end_[pa];
        double contribution = 0.0;
        for (std::size_t h = plan.hop_begin_[pa]; h < end; ++h) {
          const int vi = victim_row[hop_tile[h]];
          if (vi < 0) continue;
          const std::size_t vh = vbase + static_cast<std::size_t>(vi);
          contribution += hop_arrive[h] *
                          gain_table[hop_conn[vh] * conns + hop_conn[h]] *
                          hop_exit[vh];
        }
        noise += contribution;
      }

      const double snr =
          std::min(snr_db(plan.total_gain_[pv], noise), plan.ceiling_db_);
      point.worst_loss_db =
          std::min(point.worst_loss_db, plan.total_loss_db_[pv]);
      point.worst_snr_db = std::min(point.worst_snr_db, snr);
      if (detail != nullptr) {
        detail[v] = EdgeMetrics{static_cast<EdgeId>(v),
                                assignment[plan.edge_src_[v]],
                                assignment[plan.edge_dst_[v]],
                                plan.total_loss_db_[pv],
                                plan.total_gain_[pv],
                                noise,
                                snr};
      }
    }
    out[b] = point;
  }
}

}  // namespace phonoc
