#pragma once
/// \file loss_analysis.hpp
/// \brief Detailed insertion-loss breakdown of a single path (used by
/// the reporting example and the model unit tests).

#include <string>
#include <vector>

#include "model/network_model.hpp"

namespace phonoc {

/// One contribution to a path's insertion loss.
struct LossContribution {
  enum class Kind { RouterConnection, LinkPropagation };
  Kind kind;
  TileId tile;         ///< router tile (RouterConnection) or link source
  std::string label;   ///< e.g. "L->E" or "link 0.25 cm"
  double loss_db;      ///< contribution in dB (<= 0)
};

struct LossBreakdown {
  std::vector<LossContribution> contributions;
  double total_db = 0.0;
  std::size_t hop_count = 0;
  double link_length_cm = 0.0;
};

/// Decompose the (src, dst) insertion loss into per-router and per-link
/// contributions. The contributions sum to the path's total loss.
[[nodiscard]] LossBreakdown analyze_path_loss(const NetworkModel& net,
                                              TileId src, TileId dst);

}  // namespace phonoc
