#include "model/incremental.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

IncrementalEvaluation::IncrementalEvaluation(const NetworkModel& net,
                                             const CommGraph& cg)
    : net_(net),
      tiles_(net.tile_count()),
      tasks_(cg.task_count()),
      ceiling_db_(net.options().snr_ceiling_db) {
  const auto& edges = cg.graph().edges();
  cg_edges_.reserve(edges.size());
  task_edges_.resize(tasks_);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    cg_edges_.emplace_back(edges[e].src, edges[e].dst);
    task_edges_[edges[e].src].push_back(static_cast<std::uint32_t>(e));
    task_edges_[edges[e].dst].push_back(static_cast<std::uint32_t>(e));
  }
  const auto count = cg_edges_.size();
  paths_.resize(count, nullptr);
  contrib_.assign(count * count, 0.0);
  partners_.resize(count);
  metrics_.resize(count);
  touched_mark_.assign(count, 0);
  changed_mark_.assign(count, 0);
  partners_saved_.assign(count, 0);
}

const PathData& IncrementalEvaluation::path_of_edge(std::uint32_t e) const {
  const auto& [src, dst] = cg_edges_[e];
  return net_.path(assignment_[src], assignment_[dst]);
}

void IncrementalEvaluation::reset(std::span<const TileId> assignment) {
  require(!pending_,
          "IncrementalEvaluation::reset: a proposal is outstanding");
  require(assignment.size() == tasks_,
          "IncrementalEvaluation: assignment size != task count");
  std::vector<int> tile_to_task(tiles_, -1);
  for (std::size_t task = 0; task < assignment.size(); ++task) {
    const auto tile = assignment[task];
    require(tile < tiles_,
            "IncrementalEvaluation: assignment targets a tile out of range");
    require(tile_to_task[tile] < 0,
            "IncrementalEvaluation: two tasks mapped to the same tile");
    tile_to_task[tile] = static_cast<int>(task);
  }
  assignment_.assign(assignment.begin(), assignment.end());
  tile_to_task_ = std::move(tile_to_task);

  const auto count = static_cast<std::uint32_t>(cg_edges_.size());
  for (std::uint32_t e = 0; e < count; ++e) paths_[e] = &path_of_edge(e);
  for (std::uint32_t v = 0; v < count; ++v) {
    auto& partner_list = partners_[v];
    partner_list.clear();
    for (std::uint32_t a = 0; a < count; ++a) {
      const double k = a == v ? 0.0
                              : noise_contribution(net_, *paths_[v],
                                                   *paths_[a]);
      cell(v, a) = k;
      if (k != 0.0) partner_list.push_back(a);
    }
  }
  for (std::uint32_t v = 0; v < count; ++v) {
    metrics_[v].edge = v;
    metrics_[v].src_tile = assignment_[cg_edges_[v].first];
    metrics_[v].dst_tile = assignment_[cg_edges_[v].second];
    metrics_[v].loss_db = paths_[v]->total_loss_db;
    metrics_[v].signal_gain = paths_[v]->total_gain;
    resum_victim(v);
  }
  worst_loss_ = fold_loss();
  worst_snr_ = fold_snr();
  has_state_ = true;
  ++rebuilds_;
}

void IncrementalEvaluation::mark_changed(std::uint32_t victim) {
  if (changed_mark_[victim]) return;
  changed_mark_[victim] = 1;
  changed_.push_back(victim);
  undo_.metrics.emplace_back(victim, metrics_[victim]);
}

/// Re-derive `victim`'s noise sum and SNR from the cached contributions,
/// in ascending partner order (see the bit-identity contract: skipping
/// the exact-zero terms of evaluate_mapping's full ascending sum is the
/// identity, so this reproduces it bitwise).
void IncrementalEvaluation::resum_victim(std::uint32_t victim) {
  double noise = 0.0;
  for (const auto attacker : partners_[victim])
    noise += cell(victim, attacker);
  metrics_[victim].noise_gain = noise;
  metrics_[victim].snr_db =
      std::min(snr_db(paths_[victim]->total_gain, noise), ceiling_db_);
}

IncrementalEvaluation::MinFold IncrementalEvaluation::fold_loss() const {
  MinFold fold{0.0, kNoArg};
  for (std::uint32_t v = 0; v < metrics_.size(); ++v) {
    if (metrics_[v].loss_db < fold.value) {
      fold.value = metrics_[v].loss_db;
      fold.arg = v;
    }
  }
  return fold;
}

IncrementalEvaluation::MinFold IncrementalEvaluation::fold_snr() const {
  MinFold fold{ceiling_db_, kNoArg};
  for (std::uint32_t v = 0; v < metrics_.size(); ++v) {
    if (metrics_[v].snr_db < fold.value) {
      fold.value = metrics_[v].snr_db;
      fold.arg = v;
    }
  }
  return fold;
}

void IncrementalEvaluation::apply_tile_swap(TileId a, TileId b) {
  const int task_a = tile_to_task_[a];
  const int task_b = tile_to_task_[b];
  if (task_a >= 0) assignment_[static_cast<std::size_t>(task_a)] = b;
  if (task_b >= 0) assignment_[static_cast<std::size_t>(task_b)] = a;
  std::swap(tile_to_task_[a], tile_to_task_[b]);
}

void IncrementalEvaluation::propose_swap(TileId a, TileId b) {
  require(has_state_, "IncrementalEvaluation::propose_swap: no base state");
  require(!pending_,
          "IncrementalEvaluation::propose_swap: proposal already pending");
  require(a < tiles_ && b < tiles_,
          "IncrementalEvaluation::propose_swap: tile out of range");

  undo_.tile_a = a;
  undo_.tile_b = b;
  undo_.paths.clear();
  undo_.metrics.clear();
  undo_.cells.clear();
  undo_.partners.clear();
  undo_.worst_loss = worst_loss_;
  undo_.worst_snr = worst_snr_;
  touched_.clear();
  changed_.clear();
  pending_ = true;
  ++proposals_;

  const int task_a = a == b ? -1 : tile_to_task_[a];
  const int task_b = a == b ? -1 : tile_to_task_[b];
  undo_.swapped = task_a >= 0 || task_b >= 0;
  if (!undo_.swapped) return;  // no mapped task moved: no-op
  apply_tile_swap(a, b);

  // Edges whose path changed: those incident to a moved task.
  for (const int task : {task_a, task_b}) {
    if (task < 0) continue;
    for (const auto e : task_edges_[static_cast<std::size_t>(task)]) {
      if (touched_mark_[e]) continue;
      touched_mark_[e] = 1;
      touched_.push_back(e);
    }
  }
  for (const auto e : touched_) {
    mark_changed(e);
    undo_.paths.emplace_back(e, paths_[e]);
    paths_[e] = &path_of_edge(e);
    metrics_[e].src_tile = assignment_[cg_edges_[e].first];
    metrics_[e].dst_tile = assignment_[cg_edges_[e].second];
    metrics_[e].loss_db = paths_[e]->total_loss_db;
    metrics_[e].signal_gain = paths_[e]->total_gain;
  }

  const auto count = static_cast<std::uint32_t>(cg_edges_.size());
  for (const auto t : touched_) {
    // Row t: edge t as victim against every attacker's (new) path. The
    // partner list is rebuilt wholesale while the row is recomputed.
    undo_.partners.emplace_back(t, std::move(partners_[t]));
    partners_saved_[t] = 1;
    auto& partner_list = partners_[t];
    partner_list.clear();
    for (std::uint32_t att = 0; att < count; ++att) {
      if (att == t) continue;
      const double k = noise_contribution(net_, *paths_[t], *paths_[att]);
      double& slot = cell(t, att);
      if (k != slot) {
        undo_.cells.emplace_back(t, att, slot);
        slot = k;
      }
      if (k != 0.0) partner_list.push_back(att);
    }
    // Column t: edge t as attacker onto every untouched victim (touched
    // victims were fully re-rowed above).
    for (std::uint32_t v = 0; v < count; ++v) {
      if (v == t || touched_mark_[v]) continue;
      double& slot = cell(v, t);
      const double k = noise_contribution(net_, *paths_[v], *paths_[t]);
      if (k == slot) continue;
      mark_changed(v);
      undo_.cells.emplace_back(v, t, slot);
      const bool was_partner = slot != 0.0;
      const bool is_partner = k != 0.0;
      slot = k;
      if (was_partner != is_partner) {
        if (!partners_saved_[v]) {
          partners_saved_[v] = 1;
          undo_.partners.emplace_back(v, partners_[v]);
        }
        auto& partner_list = partners_[v];
        const auto pos =
            std::lower_bound(partner_list.begin(), partner_list.end(), t);
        if (is_partner)
          partner_list.insert(pos, t);
        else
          partner_list.erase(pos);
      }
    }
  }

  for (const auto v : changed_) resum_victim(v);

  // The folds are selections; they only need a replay when a changed
  // edge could displace the minimum or the current argmin was changed.
  bool rescan_loss = false;
  bool rescan_snr = false;
  for (const auto v : changed_) {
    if (v == worst_loss_.arg || metrics_[v].loss_db < worst_loss_.value)
      rescan_loss = true;
    if (v == worst_snr_.arg || metrics_[v].snr_db < worst_snr_.value)
      rescan_snr = true;
  }
  if (rescan_loss) worst_loss_ = fold_loss();
  if (rescan_snr) worst_snr_ = fold_snr();

  for (const auto e : touched_) touched_mark_[e] = 0;
  for (const auto v : changed_) changed_mark_[v] = 0;
  for (const auto& entry : undo_.partners) partners_saved_[entry.first] = 0;
}

void IncrementalEvaluation::commit() {
  require(pending_, "IncrementalEvaluation::commit: nothing proposed");
  pending_ = false;
}

void IncrementalEvaluation::revert() {
  require(pending_, "IncrementalEvaluation::revert: nothing proposed");
  worst_loss_ = undo_.worst_loss;
  worst_snr_ = undo_.worst_snr;
  for (auto& [v, list] : undo_.partners) partners_[v] = std::move(list);
  for (const auto& [v, att, value] : undo_.cells) cell(v, att) = value;
  for (const auto& [e, metrics] : undo_.metrics) metrics_[e] = metrics;
  for (const auto& [e, path] : undo_.paths) paths_[e] = path;
  // Re-swapping the same tile pair is its own inverse.
  if (undo_.swapped) apply_tile_swap(undo_.tile_a, undo_.tile_b);
  pending_ = false;
}

EvaluationView IncrementalEvaluation::view() const noexcept {
  return EvaluationView{worst_loss_.value, worst_snr_.value, metrics_};
}

EvaluationResult IncrementalEvaluation::result(bool detailed) const {
  require(has_state_, "IncrementalEvaluation::result: no base state");
  EvaluationResult out;
  out.worst_loss_db = worst_loss_.value;
  out.worst_snr_db = worst_snr_.value;
  if (detailed) out.edges = metrics_;
  return out;
}

}  // namespace phonoc
