#pragma once
/// \file power_budget.hpp
/// \brief Laser power budget / scalability analysis.
///
/// The paper's motivation (§I): the injected optical power must exceed
/// the photodetector sensitivity plus the worst-case loss, while staying
/// below the silicon nonlinearity ceiling — so reducing worst-case
/// insertion loss directly buys network scalability. This module turns a
/// worst-case loss figure into a laser-power requirement and a
/// feasibility verdict, and the scalability bench (E5) sweeps network
/// sizes with it.

#include <cstdint>

namespace phonoc {

struct PowerBudgetOptions {
  /// Photodetector sensitivity, dBm (typical chip-scale receiver).
  double detector_sensitivity_dbm = -20.0;
  /// Maximum per-wavelength power injectable before silicon
  /// nonlinearities, dBm.
  double max_injected_power_dbm = 10.0;
  /// System margin added on top of sensitivity + loss, dB.
  double margin_db = 1.0;
  /// Wavelength channels sharing the waveguide (multi-wavelength signals
  /// tighten the ceiling: total power splits across channels).
  std::uint32_t wavelength_channels = 1;
};

struct PowerBudget {
  /// Required injected power per wavelength, dBm.
  double required_power_dbm = 0.0;
  /// Ceiling per wavelength after dividing the total across channels, dBm.
  double available_power_dbm = 0.0;
  /// available - required, dB; feasible iff >= 0.
  double slack_db = 0.0;
  bool feasible = false;
};

/// Budget for a network whose worst-case insertion loss is
/// `worst_loss_db` (a value <= 0, as reported by the evaluator).
[[nodiscard]] PowerBudget compute_power_budget(
    double worst_loss_db, const PowerBudgetOptions& options = {});

}  // namespace phonoc
