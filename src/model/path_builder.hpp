#pragma once
/// \file path_builder.hpp
/// \brief Route -> PathData conversion (prefix/suffix gain tables).

#include "model/network_model.hpp"

namespace phonoc {

/// Convert a validated route into the precomputed PathData form.
/// Throws ModelError if a hop requires a connection the router lacks.
[[nodiscard]] PathData build_path_data(const Topology& topology,
                                       const RouterModel& router,
                                       const Route& route);

}  // namespace phonoc
