#pragma once
/// \file wavelength.hpp
/// \brief WDM extension: wavelength-channel assignment for crosstalk
/// mitigation.
///
/// The paper (§I) notes that multiwavelength signals make both power
/// budget and crosstalk harder — but WDM also offers a lever the static
/// mapping cannot: two communications carried on different wavelength
/// channels couple only through the (filtered) inter-channel response
/// of the rings and crossings. This module builds the interference
/// graph between mapped communications (pairwise noise coefficients
/// from the derived router matrices), assigns channels greedily —
/// heaviest-interfering communication first, each placed on the channel
/// that minimizes the intra-channel noise it joins — and re-evaluates
/// the worst-case SNR with cross-channel contributions attenuated by a
/// configurable isolation factor.
///
/// This composes with mapping optimization (map first, color second)
/// and is exercised by `bench_wdm_channels` and the property tests.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/comm_graph.hpp"
#include "model/evaluation.hpp"
#include "model/network_model.hpp"

namespace phonoc {

struct WdmOptions {
  /// Number of wavelength channels available.
  std::uint32_t channels = 1;
  /// Attenuation applied to crosstalk between communications on
  /// different channels, dB (<= 0). Models the ring filter roll-off;
  /// -300 dB is effectively ideal filtering.
  double inter_channel_isolation_db = -30.0;
};

struct WdmAssignment {
  /// channel[i] = wavelength channel of CG edge i, in [0, channels).
  std::vector<std::uint32_t> channel;
  std::uint32_t channels_used = 0;
  /// Total intra-channel pairwise noise weight after assignment
  /// (the greedy objective; useful for reporting/regression).
  double residual_weight = 0.0;
};

/// Pairwise interference weights under a mapping: w[i][j] = linear noise
/// power edge j injects onto edge i's detector (not symmetric).
[[nodiscard]] std::vector<std::vector<double>> interference_matrix(
    const NetworkModel& net, const CommGraph& cg,
    std::span<const TileId> assignment);

/// Greedy channel assignment (largest-total-interference first; each
/// communication joins the channel minimizing the added intra-channel
/// weight, ties to the lowest channel index). Deterministic.
[[nodiscard]] WdmAssignment assign_wavelengths(
    const NetworkModel& net, const CommGraph& cg,
    std::span<const TileId> assignment, const WdmOptions& options);

/// Worst-case evaluation with the channel assignment applied:
/// same-channel attackers contribute fully, cross-channel attackers are
/// attenuated by the isolation factor. With channels == 1 this equals
/// evaluate_mapping exactly.
[[nodiscard]] EvaluationResult evaluate_mapping_wdm(
    const NetworkModel& net, const CommGraph& cg,
    std::span<const TileId> assignment, const WdmAssignment& wdm,
    const WdmOptions& options, bool detailed = false);

}  // namespace phonoc
