#pragma once
/// \file batch_eval.hpp
/// \brief SoA batched mapping evaluation: score B assignments per pass,
/// bit-identical (tolerance 0) to per-mapping `evaluate_mapping`.
///
/// `evaluate_mapping` is an arrays-of-structs walk: every CG edge
/// resolves a `PathData` whose per-hop state lives in five separate
/// heap vectors, every (victim, attacker) pair calls the out-of-line
/// `noise_contribution`, and every hop probes `hop_at_tile` and the
/// router's conflict + crosstalk tables behind two more indirections.
/// Bulk consumers — Sample cells evaluate 100k random mappings per
/// cell, GA generations score whole populations — pay that layout tax
/// per mapping.
///
/// This kernel splits the work into a per-{NetworkModel, CommGraph}
/// precompute (`BatchEvalPlan`) and a per-batch pass (`BatchEvaluator`):
///
///  * the plan flattens every path's per-hop {tile, connection,
///    arrive_gain, exit_suffix} into one contiguous SoA arena, mirrors
///    `hop_at_tile` as one dense contiguous int16 table (the victim-side
///    probe), bakes the router's conflict policy + fidelity into one
///    dense connection-pair gain table, and derives a tile-occupancy
///    bitmask per path;
///  * the pass resolves each mapping's edges to path ids once, then for
///    each victim edge runs a vectorized bitmask sieve over all
///    attacker masks — path pairs sharing no tile contribute exactly
///    +0.0 and are skipped wholesale — and walks only the surviving
///    attackers' flat hop arrays, branch-free on the gain lookups.
///
/// Bit-identity contract (the regression oracle): every metric equals a
/// fresh `evaluate_mapping` of the same assignment bitwise. The same
/// three properties as `incremental.hpp` carry the argument:
///  1. each per-hop term `arrive * k * exit` is evaluated with the same
///     operand values and association as `noise_contribution`;
///  2. contributions are never negative and adding an exact +0.0 is the
///     identity on a non-negative accumulator, so both skipping
///     zero-mask pairs and multiplying through a baked-in zero gain
///     reproduce the full ascending-order sums bitwise (per-attacker
///     subtotals are kept: each attacker's hop-order sum is folded into
///     the victim's noise in ascending edge order, exactly like the
///     nested `noise_contribution` calls);
///  3. the worst-case folds are the same `std::min` selections in the
///     same ascending edge order.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/comm_graph.hpp"
#include "model/evaluation.hpp"
#include "model/network_model.hpp"

namespace phonoc {

/// Worst-case metrics of one scored mapping (the Fig. 3 pair).
struct BatchPoint {
  double worst_loss_db = 0.0;
  double worst_snr_db = 0.0;
};

/// Immutable SoA mirror of the evaluation state for one
/// {NetworkModel, CommGraph} pair. Build once, share freely: the plan
/// is read-only after construction, so any number of BatchEvaluators
/// (one per thread) can score against it concurrently. The network and
/// CG must outlive the plan.
class BatchEvalPlan {
 public:
  BatchEvalPlan(const NetworkModel& net, const CommGraph& cg);

  [[nodiscard]] std::size_t tile_count() const noexcept { return tiles_; }
  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_; }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edge_src_.size();
  }
  [[nodiscard]] double snr_ceiling_db() const noexcept { return ceiling_db_; }

 private:
  friend class BatchEvaluator;

  /// Row index of the (src, dst) path in the per-path tables.
  [[nodiscard]] std::size_t path_id(TileId src, TileId dst) const noexcept {
    return static_cast<std::size_t>(src) * tiles_ + dst;
  }

  std::size_t tiles_ = 0;
  std::size_t tasks_ = 0;
  double ceiling_db_ = 0.0;
  std::size_t conns_ = 0;       ///< router connection count (G row stride)
  std::size_t mask_words_ = 0;  ///< uint64 words per tile-occupancy mask

  // --- per CG edge -----------------------------------------------------------
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;

  // --- per ordered tile pair (path id = src * tiles + dst) -------------------
  std::vector<std::uint32_t> hop_begin_;  ///< offset into the flat hop arena
  std::vector<std::uint32_t> hop_end_;
  std::vector<double> total_gain_;
  std::vector<double> total_loss_db_;
  /// Tile-occupancy bitmask, `mask_words_` words per path.
  std::vector<std::uint64_t> tile_mask_;
  /// Dense victim-side probe, `tiles_` int16 entries per path: the
  /// path's hop index at each tile, or -1 (PathData::hop_at_tile laid
  /// out contiguously, so a victim's whole row sits in one or two
  /// cache lines).
  std::vector<std::int16_t> victim_hop_;

  // --- flat per-hop arena (all paths back to back) ---------------------------
  std::vector<std::uint32_t> hop_tile_;
  std::vector<std::uint32_t> hop_conn_;
  std::vector<double> hop_arrive_;
  std::vector<double> hop_exit_;

  /// Dense pair gain, conns_ x conns_: `pair_noise_gain` with the
  /// conflict policy and fidelity baked in (conflicting or non-positive
  /// pairs hold exactly 0.0, so the kernel needs no branch on them).
  std::vector<double> pair_gain_;
};

/// Batched scorer over a shared plan. Owns reusable per-batch scratch,
/// so one instance serves one thread; create one per worker (exactly
/// how cells already own their Evaluator).
class BatchEvaluator {
 public:
  /// Convenience: build (and own) a fresh plan.
  BatchEvaluator(const NetworkModel& net, const CommGraph& cg);
  /// Share an existing plan (must be non-null).
  explicit BatchEvaluator(std::shared_ptr<const BatchEvalPlan> plan);

  [[nodiscard]] const BatchEvalPlan& plan() const noexcept { return *plan_; }

  /// Score `batch` assignments laid out row-major in `assignments`
  /// (`batch * task_count` tiles). Every assignment is validated
  /// exactly like `evaluate_mapping` (injective, every tile in range).
  /// `out.size()` must equal `batch`.
  void evaluate(std::span<const TileId> assignments, std::size_t batch,
                std::span<BatchPoint> out);

  /// Same, plus per-edge detail: `edges_out` receives `batch *
  /// edge_count` EdgeMetrics rows (mapping-major), each bit-identical
  /// to `evaluate_mapping(..., detailed=true)`.
  void evaluate_detailed(std::span<const TileId> assignments,
                         std::size_t batch, std::span<BatchPoint> out,
                         std::span<EdgeMetrics> edges_out);

  /// Trusted entry: skips the per-assignment injectivity/range scan.
  /// Only for assignments whose validity is already guaranteed by a
  /// checked invariant (e.g. they were lifted out of `Mapping`, whose
  /// constructor enforces Eq. 5/6) — this is the validation hoist for
  /// bulk scoring, not a way to relax the public contract. Pass an
  /// empty `edges_out` to skip detail.
  void evaluate_trusted(std::span<const TileId> assignments,
                        std::size_t batch, std::span<BatchPoint> out,
                        std::span<EdgeMetrics> edges_out = {});

 private:
  void run(std::span<const TileId> assignments, std::size_t batch,
           std::span<BatchPoint> out, std::span<EdgeMetrics> edges_out,
           bool validate);
  void validate_assignment(std::span<const TileId> assignment);

  std::shared_ptr<const BatchEvalPlan> plan_;

  // --- per-batch scratch (reused across calls) -------------------------------
  std::vector<std::uint32_t> path_of_edge_;  ///< per edge
  std::vector<std::uint64_t> edge_mask_;     ///< per edge, mask_words_ each
  std::vector<std::uint64_t> sieve_;         ///< per edge, intersection words
  std::vector<std::uint8_t> tile_used_;      ///< validation scratch
};

}  // namespace phonoc
