#pragma once
/// \file evaluation.hpp
/// \brief Mapping evaluation: worst-case insertion loss and worst-case
/// SNR of a Communication Graph mapped onto a network (paper Eq. 3/4).
///
/// This is the hot path of the design space exploration — the Fig. 3
/// experiment alone evaluates 100 000 mappings per application — so the
/// evaluation works exclusively on precomputed PathData and router
/// matrices.

#include <span>
#include <vector>

#include "graph/comm_graph.hpp"
#include "model/network_model.hpp"

namespace phonoc {

/// Per-communication metrics of one evaluated mapping.
struct EdgeMetrics {
  EdgeId edge = 0;
  TileId src_tile = 0;
  TileId dst_tile = 0;
  double loss_db = 0.0;       ///< insertion loss (<= 0)
  double signal_gain = 1.0;   ///< linear end-to-end gain
  double noise_gain = 0.0;    ///< linear noise power per unit injected power
  double snr_db = 0.0;        ///< clamped to the model's ceiling
};

struct EvaluationResult {
  /// Worst-case insertion loss IL_wc^dB: most negative edge loss (Eq. 3).
  double worst_loss_db = 0.0;
  /// Worst-case SNR: minimum edge SNR in dB (Eq. 4).
  double worst_snr_db = 0.0;
  /// Per-edge detail; filled only when requested.
  std::vector<EdgeMetrics> edges;
};

/// Non-owning view of an evaluated mapping. Objectives fold over this so
/// both evaluation paths — the whole-mapping `evaluate_mapping` and the
/// incremental kernel, which keeps its per-edge metrics alive across
/// moves — feed the same fitness code without copying the edge vector.
struct EvaluationView {
  double worst_loss_db = 0.0;
  double worst_snr_db = 0.0;
  /// Per-edge detail; empty when the producer ran without detail.
  std::span<const EdgeMetrics> edges;
};

/// Evaluate a mapping. `assignment[task] = tile`; the assignment must be
/// injective with every tile in range (checked). `detailed` additionally
/// returns per-edge metrics. A CG without edges yields worst_loss = 0
/// and worst_snr = ceiling.
[[nodiscard]] EvaluationResult evaluate_mapping(
    const NetworkModel& net, const CommGraph& cg,
    std::span<const TileId> assignment, bool detailed = false);

/// Noise power (linear, per unit attacker injected power) that `attacker`
/// adds onto `victim`'s detector; exposed for the detailed analyses and
/// tests. Paths must come from the same NetworkModel.
[[nodiscard]] double noise_contribution(const NetworkModel& net,
                                        const PathData& victim,
                                        const PathData& attacker);

}  // namespace phonoc
