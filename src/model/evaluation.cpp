#include "model/evaluation.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

namespace {

void check_assignment(const NetworkModel& net, const CommGraph& cg,
                      std::span<const TileId> assignment) {
  require(assignment.size() == cg.task_count(),
          "evaluate_mapping: assignment size != task count");
  std::vector<bool> used(net.tile_count(), false);
  for (const auto tile : assignment) {
    require(tile < net.tile_count(),
            "evaluate_mapping: assignment targets a tile out of range");
    require(!used[tile],
            "evaluate_mapping: two tasks mapped to the same tile");
    used[tile] = true;
  }
}

}  // namespace

double noise_contribution(const NetworkModel& net, const PathData& victim,
                          const PathData& attacker) {
  double noise = 0.0;
  const auto hops = attacker.hops.size();
  for (std::size_t ai = 0; ai < hops; ++ai) {
    const int vi = victim.hop_index_at(attacker.hops[ai].tile);
    if (vi < 0) continue;
    const double k = net.pair_noise_gain(
        victim.conn[static_cast<std::size_t>(vi)], attacker.conn[ai]);
    if (k <= 0.0) continue;
    noise += attacker.arrive_gain[ai] * k *
             victim.exit_suffix[static_cast<std::size_t>(vi)];
  }
  return noise;
}

EvaluationResult evaluate_mapping(const NetworkModel& net, const CommGraph& cg,
                                  std::span<const TileId> assignment,
                                  bool detailed) {
  check_assignment(net, cg, assignment);

  const auto& edges = cg.graph().edges();
  EvaluationResult result;
  result.worst_snr_db = net.options().snr_ceiling_db;
  if (edges.empty()) return result;

  // Resolve each communication to its precomputed path once.
  std::vector<const PathData*> paths;
  paths.reserve(edges.size());
  for (const auto& e : edges)
    paths.push_back(&net.path(assignment[e.src], assignment[e.dst]));

  if (detailed) result.edges.reserve(edges.size());
  for (std::size_t v = 0; v < edges.size(); ++v) {
    const auto& victim = *paths[v];
    double noise = 0.0;
    for (std::size_t a = 0; a < edges.size(); ++a) {
      if (a == v) continue;
      noise += noise_contribution(net, victim, *paths[a]);
    }
    const double snr =
        std::min(snr_db(victim.total_gain, noise),
                 net.options().snr_ceiling_db);
    result.worst_loss_db = std::min(result.worst_loss_db,
                                    victim.total_loss_db);
    result.worst_snr_db = std::min(result.worst_snr_db, snr);
    if (detailed) {
      result.edges.push_back(EdgeMetrics{
          static_cast<EdgeId>(v), assignment[edges[v].src],
          assignment[edges[v].dst], victim.total_loss_db, victim.total_gain,
          noise, snr});
    }
  }
  return result;
}

}  // namespace phonoc
