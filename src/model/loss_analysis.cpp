#include "model/loss_analysis.hpp"

#include "util/strings.hpp"
#include "util/units.hpp"

namespace phonoc {

LossBreakdown analyze_path_loss(const NetworkModel& net, TileId src,
                                TileId dst) {
  const auto& path = net.path(src, dst);
  const auto& router = net.router();
  const auto& topo = net.topology();

  LossBreakdown breakdown;
  breakdown.hop_count = path.hops.size();
  breakdown.link_length_cm = path.link_length_cm;

  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const auto& hop = path.hops[i];
    breakdown.contributions.push_back(LossContribution{
        LossContribution::Kind::RouterConnection, hop.tile,
        standard_port_name(hop.in_port) + "->" +
            standard_port_name(hop.out_port),
        router.connection_loss_db(path.conn[i])});
    breakdown.total_db += router.connection_loss_db(path.conn[i]);
    if (i + 1 < path.hops.size()) {
      // Recover the link length from the hop pair via the topology.
      const auto link_id = topo.link_from(hop.tile, hop.out_port);
      const double len = topo.link(link_id).length_cm;
      const double db =
          router.linear_parameters().propagation_db_per_cm * len;
      breakdown.contributions.push_back(LossContribution{
          LossContribution::Kind::LinkPropagation, hop.tile,
          "link " + format_fixed(len, 3) + " cm", db});
      breakdown.total_db += db;
    }
  }
  return breakdown;
}

}  // namespace phonoc
