#pragma once
/// \file host_pool.hpp
/// \brief Thread-safe work ledger of the distributed sweep scheduler.
///
/// The grid is cut into contiguous WorkUnits and dealt as one
/// contiguous block per host, sized proportionally to the host's
/// advertised capacity (largest-remainder apportionment of whole
/// units; equal capacities degenerate to an even split). Each
/// host-driver thread pulls its next unit with acquire(), which
/// implements the fleet policies in one place:
///
///  - own queue first (locality: contiguous ranges share problems),
///  - then the retry queue (units bounced off a dead or timed-out host),
///  - then work stealing from the richest other queue,
///  - then straggler speculation: clone a unit that has been in flight
///    on another host for at least `speculate_after_seconds` (at most
///    one live clone per dispatch, attempts still bounded).
///
/// Completion is first-wins per cell: complete_cell() returns false for
/// a late duplicate (a straggler that answered after its clone), so a
/// retried cell can never double-count. A unit whose host dies is
/// re-queued with attempt+1 until max_attempts, after which its
/// unsettled cells are abandoned (the scheduler marks them Failed).
/// Every cell ends settled — answered or abandoned — which is the
/// pool's termination condition.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace phonoc {

/// A contiguous slice [begin, end) of grid indices plus its dispatch
/// attempt (0 = first try).
struct WorkUnit {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t attempt = 0;
};

struct HostPoolStats {
  std::size_t retries = 0;       ///< units re-queued after a host failure
  std::size_t speculations = 0;  ///< straggler units cloned to idle hosts
  std::size_t abandoned = 0;     ///< cells that exhausted every attempt
  std::size_t duplicates = 0;    ///< late answers dropped by dedup
};

/// What one host pulled through acquire()'s non-own-queue paths —
/// the per-host view of the fleet's load-balancing activity, surfaced
/// in HostReport (and the remote sweep summary).
struct HostCounters {
  std::size_t stolen_units = 0;     ///< taken from another host's queue
  std::size_t retried_units = 0;    ///< picked up off the retry queue
  std::size_t speculated_units = 0; ///< straggler clones this host ran
};

class HostPool {
 public:
  /// Capacity-weighted deal: host `h` initially owns a contiguous
  /// block of whole units sized by `capacities[h]` relative to the
  /// fleet total (largest remainder, ties broken toward the lower host
  /// index). A capacity-0 host starts with nothing and only reaches
  /// work through retry, stealing or speculation; an all-zero fleet
  /// falls back to an equal split so the ledger stays well-formed even
  /// when nobody will drive it. `max_attempts` >= 1 is the total
  /// number of dispatches a unit may consume (1 = no retries). A
  /// negative `speculate_after_seconds` disables straggler speculation
  /// (0 makes every in-flight unit immediately cloneable —
  /// deterministic tests use that); `allow_steal` gates queue stealing.
  HostPool(std::vector<std::size_t> capacities, std::size_t cells,
           std::size_t cells_per_unit, std::size_t max_attempts,
           double speculate_after_seconds, bool allow_steal = true);

  /// Equal-weight convenience: every host gets the same share (the
  /// pre-capacity behaviour, still what unweighted callers want).
  HostPool(std::size_t hosts, std::size_t cells, std::size_t cells_per_unit,
           std::size_t max_attempts, double speculate_after_seconds,
           bool allow_steal = true);

  /// Admit a host after construction (a late `--join` daemon): appends
  /// an empty queue — the newcomer reaches work through the retry
  /// queue, stealing and speculation, exactly like a capacity-0 host
  /// from the initial deal — and returns its host index. Wakes blocked
  /// acquirers so nobody waits on a fleet that just grew.
  [[nodiscard]] std::size_t add_host();

  /// Block until a unit is available for `host` or every cell is
  /// settled (nullopt — the driver is done). Marks the unit in flight.
  [[nodiscard]] std::optional<WorkUnit> acquire(std::size_t host);

  /// First-wins dedup: true = this answer settles the cell (store the
  /// result), false = already settled (late duplicate, drop it).
  [[nodiscard]] bool complete_cell(std::size_t index);

  /// The host's in-flight unit ended cleanly (its "done" frame arrived).
  void finish_unit(std::size_t host);

  /// The host died or timed out mid-unit: re-queue the unsettled
  /// remainder for the surviving hosts, or — attempts exhausted —
  /// abandon those cells. Returns the newly abandoned cell indices so
  /// the caller can mark them Failed.
  [[nodiscard]] std::vector<std::size_t> fail_unit(std::size_t host);

  /// The host is gone for good: spill its queued units into the retry
  /// queue (fail_unit handles the in-flight one).
  void retire_host(std::size_t host);

  [[nodiscard]] bool all_settled() const;
  /// Cells neither answered nor abandoned (only meaningful once every
  /// driver has exited; the scheduler fails them as unroutable).
  [[nodiscard]] std::vector<std::size_t> unsettled_cells() const;
  [[nodiscard]] HostPoolStats stats() const;
  /// Per-host acquire-path counters (valid host index required).
  [[nodiscard]] HostCounters host_counters(std::size_t host) const;

 private:
  struct InFlight {
    WorkUnit unit;
    double dispatched_at = 0.0;  ///< seconds on the pool's own clock
    bool cloned = false;         ///< a speculation clone already exists
  };

  [[nodiscard]] double now_seconds() const;
  [[nodiscard]] std::size_t first_unsettled(const WorkUnit& unit) const;
  [[nodiscard]] std::optional<WorkUnit> try_acquire_locked(std::size_t host);
  void settle_locked(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<std::deque<WorkUnit>> queues_;      // per-host
  std::deque<WorkUnit> retry_;                    // bounced units
  std::vector<std::optional<InFlight>> in_flight_;  // one per host
  std::vector<HostCounters> counters_;            // one per host
  std::vector<char> settled_;                     // per-cell
  std::size_t settled_count_ = 0;
  std::size_t max_attempts_;
  double speculate_after_seconds_;
  bool allow_steal_;
  HostPoolStats stats_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace phonoc
