#include "sched/transport.hpp"

#include <atomic>
#include <utility>
#include <vector>

#include "exec/serialize.hpp"
#include "sched/service.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PHONOC_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#else
#define PHONOC_HAS_SOCKETS 0
#endif

namespace phonoc {

#if PHONOC_HAS_SOCKETS

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/// A dead peer must surface as Closed, never as SIGPIPE.
void disarm_sigpipe(int fd) {
#if defined(SO_NOSIGPIPE)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);
#else
  (void)fd;
#endif
}

class FdConnection final : public Connection {
 public:
  explicit FdConnection(int fd) : fd_(fd) { disarm_sigpipe(fd_); }
  ~FdConnection() override { close(); }

  bool send(const std::string& payload) override {
    if (fd_ < 0) return false;
    const std::string frame = encode_frame(payload);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + off, frame.size() - off, kSendFlags);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // EPIPE, ECONNRESET and friends: the peer died
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  RecvResult recv(double timeout_seconds) override {
    Timer timer;
    for (;;) {
      if (fd_ < 0) return {RecvStatus::Closed, {}};
      if (auto payload = decoder_.next())
        return {RecvStatus::Ok, std::move(*payload)};
      int poll_ms = -1;  // wait forever
      if (timeout_seconds > 0.0) {
        const double remaining = timeout_seconds - timer.elapsed_seconds();
        if (remaining <= 0.0) return {RecvStatus::Timeout, {}};
        poll_ms = static_cast<int>(remaining * 1e3) + 1;
      }
      struct pollfd pfd {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, poll_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return {RecvStatus::Closed, {}};
      }
      if (ready == 0) return {RecvStatus::Timeout, {}};
      char buffer[1 << 16];
      const ssize_t n = ::read(fd_, buffer, sizeof buffer);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return {RecvStatus::Closed, {}};
      }
      if (n == 0) return {RecvStatus::Closed, {}};  // orderly shutdown
      decoder_.feed({buffer, static_cast<std::size_t>(n)});
    }
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  FrameDecoder decoder_;
};

struct ParsedEndpoint {
  std::string host;
  std::string port;
};

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size())
    throw ExecError("TcpTransport: endpoint '" + endpoint +
                    "' is not host:port");
  return {endpoint.substr(0, colon), endpoint.substr(colon + 1)};
}

int dial_tcp(const std::string& endpoint, double timeout_seconds) {
  const auto parsed = parse_endpoint(endpoint);
  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* info = nullptr;
  const int rc =
      ::getaddrinfo(parsed.host.c_str(), parsed.port.c_str(), &hints, &info);
  if (rc != 0)
    throw ExecError("TcpTransport: cannot resolve '" + endpoint +
                    "': " + ::gai_strerror(rc));

  std::string last_error = "no addresses";
  for (auto* entry = info; entry != nullptr; entry = entry->ai_next) {
    const int fd =
        ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    // Non-blocking connect so a black-holed host honours the timeout.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) != 0 &&
        errno != EINPROGRESS) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    struct pollfd pfd {fd, POLLOUT, 0};
    const int poll_ms =
        timeout_seconds > 0.0 ? static_cast<int>(timeout_seconds * 1e3) : -1;
    const int ready = ::poll(&pfd, 1, poll_ms);
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      last_error = ready == 0 ? "connect timed out"
                              : std::strerror(so_error ? so_error : errno);
      ::close(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ::freeaddrinfo(info);
    return fd;
  }
  ::freeaddrinfo(info);
  throw ExecError("TcpTransport: cannot connect to '" + endpoint +
                  "': " + last_error);
}

}  // namespace

std::unique_ptr<Connection> make_fd_connection(int fd) {
  return std::make_unique<FdConnection>(fd);
}

TcpTransport::TcpTransport(double connect_timeout_seconds)
    : connect_timeout_seconds_(connect_timeout_seconds) {}

std::unique_ptr<Connection> TcpTransport::connect(
    const std::string& endpoint) {
  return make_fd_connection(dial_tcp(endpoint, connect_timeout_seconds_));
}

// --- loopback ---------------------------------------------------------------

struct LoopbackTransport::Impl {
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };
  std::mutex mutex;
  std::vector<Worker> servers;
  LoopbackTransport::Server serve;
};

LoopbackTransport::LoopbackTransport()
    : LoopbackTransport(
          [](Connection& conn) { return serve_connection(conn, {}); }) {}

LoopbackTransport::LoopbackTransport(Server server)
    : impl_(std::make_unique<Impl>()) {
  impl_->serve = std::move(server);
}

LoopbackTransport::~LoopbackTransport() {
  // Connections are expected to be closed by now; joining here makes a
  // leaked connection a hang at a named place instead of a use-after-
  // free inside a detached thread.
  for (auto& server : impl_->servers) server.thread.join();
}

std::unique_ptr<Connection> LoopbackTransport::connect(
    const std::string& endpoint) {
  (void)endpoint;  // every loopback endpoint is this process
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw ExecError(std::string("LoopbackTransport: socketpair failed: ") +
                    std::strerror(errno));
  auto server_side = make_fd_connection(fds[0]);
  auto finished = std::make_shared<std::atomic<bool>>(false);
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    // Reap servers whose connection already ended, so a long-lived
    // transport reused across many sweeps doesn't accumulate one
    // exited-but-unjoined thread per connection ever made.
    auto& servers = impl_->servers;
    for (auto it = servers.begin(); it != servers.end();) {
      if (it->finished->load()) {
        it->thread.join();
        it = servers.erase(it);
      } else {
        ++it;
      }
    }
    servers.push_back(Impl::Worker{
        std::thread([conn = std::move(server_side), finished,
                     serve = impl_->serve]() mutable {
          (void)serve(*conn);
          conn->close();
          finished->store(true);
        }),
        finished});
  }
  return make_fd_connection(fds[1]);
}

// --- TcpListener ------------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw ExecError(std::string("TcpListener: socket failed: ") +
                    std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ExecError("TcpListener: cannot bind port " + std::to_string(port) +
                    ": " + detail);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ExecError(std::string("TcpListener: listen failed: ") + detail);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return make_fd_connection(fd);
    if (errno == EINTR) continue;
    return nullptr;
  }
}

std::unique_ptr<Connection> TcpListener::accept_for(double timeout_seconds) {
  const int fd = accept_fd_for(timeout_seconds);
  if (fd < 0) return nullptr;
  return make_fd_connection(fd);
}

int TcpListener::accept_fd_for(double timeout_seconds) {
  Timer timer;
  for (;;) {
    int poll_ms = -1;
    if (timeout_seconds > 0.0) {
      const double remaining = timeout_seconds - timer.elapsed_seconds();
      if (remaining <= 0.0) return -1;
      poll_ms = static_cast<int>(remaining * 1e3) + 1;
    }
    struct pollfd pfd {fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (ready == 0) return -1;  // timeout
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    // A dial that vanished between poll and accept (ECONNABORTED and
    // friends) is not worth reporting; wait for the next one.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK)
      continue;
    return -1;
  }
}

#else  // !PHONOC_HAS_SOCKETS

namespace {
[[noreturn]] void no_sockets() {
  throw ExecError(
      "the sched transports require a POSIX platform (sockets/socketpair); "
      "use BatchBackend::InProcess here");
}
}  // namespace

std::unique_ptr<Connection> make_fd_connection(int) { no_sockets(); }
TcpTransport::TcpTransport(double connect_timeout_seconds)
    : connect_timeout_seconds_(connect_timeout_seconds) {}
std::unique_ptr<Connection> TcpTransport::connect(const std::string&) {
  no_sockets();
}
struct LoopbackTransport::Impl {};
LoopbackTransport::LoopbackTransport() = default;
LoopbackTransport::LoopbackTransport(Server) : LoopbackTransport() {}
LoopbackTransport::~LoopbackTransport() = default;
std::unique_ptr<Connection> LoopbackTransport::connect(const std::string&) {
  no_sockets();
}
TcpListener::TcpListener(std::uint16_t) { no_sockets(); }
TcpListener::~TcpListener() = default;
std::unique_ptr<Connection> TcpListener::accept() { no_sockets(); }
std::unique_ptr<Connection> TcpListener::accept_for(double) { no_sockets(); }
int TcpListener::accept_fd_for(double) { no_sockets(); }

#endif

// --- endpoint dispatch ------------------------------------------------------

namespace {

/// Routes "loopback*" endpoints in-process and everything else to TCP.
class DispatchingTransport final : public Transport {
 public:
  std::unique_ptr<Connection> connect(const std::string& endpoint) override {
    if (starts_with(endpoint, "loopback")) return loopback_.connect(endpoint);
    return tcp_.connect(endpoint);
  }

 private:
  TcpTransport tcp_;
  LoopbackTransport loopback_;
};

}  // namespace

std::shared_ptr<Transport> make_transport() {
  return std::make_shared<DispatchingTransport>();
}

}  // namespace phonoc
