#include "sched/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

#include "exec/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PHONOC_JOURNAL_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PHONOC_JOURNAL_POSIX 0
#endif

namespace phonoc {
namespace {

constexpr const char* kJournalMagic = "phonoc-journal v1 spec ";

std::string hash_hex(std::uint64_t hash) {
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << hash;
  return out.str();
}

std::string header_payload(std::uint64_t spec_hash) {
  return std::string(kJournalMagic) + hash_hex(spec_hash);
}

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw JournalError("journal " + path + ": " + why);
}

}  // namespace

std::uint64_t journal_spec_hash(const SweepSpec& spec,
                                const EvaluatorOptions& evaluator) {
  return fnv1a64(shard_prefix(spec, evaluator));
}

JournalReplay replay_journal(const std::string& path,
                             std::uint64_t spec_hash,
                             std::size_t cell_count) {
  JournalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return replay;  // absent: the fresh-sweep case
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string bytes = slurp.str();
  if (bytes.empty()) return replay;  // empty: created but never written

  FrameDecoder decoder;
  decoder.feed(bytes);
  std::size_t record = 0;
  std::vector<bool> settled(cell_count, false);
  for (;;) {
    std::optional<std::string> payload;
    try {
      payload = decoder.next();
    } catch (const ParseError& e) {
      fail(path, "record " + std::to_string(record) + " is corrupt (" +
                     e.what() + "); remove the journal to start over");
    }
    if (!payload) break;
    if (record == 0) {
      if (*payload != header_payload(spec_hash)) {
        const std::string want = header_payload(spec_hash);
        fail(path, "header mismatch: journal says '" + *payload +
                       "', this sweep is '" + want +
                       "' — the journal belongs to a different sweep");
      }
      ++record;
      continue;
    }
    std::optional<CellResult> cell;
    try {
      std::istringstream block(*payload);
      cell = read_cell_result(block);
    } catch (const std::exception& e) {
      fail(path, "record " + std::to_string(record) +
                     " holds an unreadable cell block (" + e.what() + ")");
    }
    if (!cell)
      fail(path, "record " + std::to_string(record) + " is empty");
    if (cell->cell.index >= cell_count)
      fail(path, "record " + std::to_string(record) + " settles cell " +
                     std::to_string(cell->cell.index) +
                     " outside this sweep's " + std::to_string(cell_count) +
                     "-cell grid");
    if (settled[cell->cell.index]) {
      ++replay.duplicates;  // first-wins, same as the live stream
    } else {
      settled[cell->cell.index] = true;
      replay.cells.push_back(std::move(*cell));
    }
    ++record;
  }
  if (decoder.has_partial())
    fail(path, "truncated final record (after " + std::to_string(record) +
                   " complete record(s)) — the writer died mid-append; "
                   "remove the journal to start over");
  static obs::Counter& replayed = obs::MetricsRegistry::global().counter(
      "phonoc_sched_journal_replayed_total",
      "Settled cells recovered from journal replay.");
  replayed.inc(replay.cells.size());
  return replay;
}

JournalWriter::JournalWriter(std::string path, std::uint64_t spec_hash)
    : path_(std::move(path)) {
#if PHONOC_JOURNAL_POSIX
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0)
    fail(path_, std::string("cannot open for append: ") +
                    std::strerror(errno));
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    fail(path_, std::string("cannot stat: ") + std::strerror(err));
  }
  if (st.st_size == 0) append(header_payload(spec_hash));
#else
  (void)spec_hash;
  fail(path_, "journaling requires POSIX file APIs on this platform");
#endif
}

JournalWriter::~JournalWriter() {
#if PHONOC_JOURNAL_POSIX
  if (fd_ >= 0) ::close(fd_);
#endif
}

void JournalWriter::append(const std::string& cell_block) {
#if PHONOC_JOURNAL_POSIX
  obs::TraceSpan span("sched", "journal_append");
  static obs::Counter& appended = obs::MetricsRegistry::global().counter(
      "phonoc_sched_journal_appends_total",
      "Accepted cell answers appended to the settled-cell journal.");
  appended.inc();
  // One write(2) per record (O_APPEND, no userspace buffer): a SIGKILL
  // between appends leaves only whole records. A short write can still
  // tear a record (e.g. ENOSPC mid-frame) — the replay's checksum turns
  // that into a loud error rather than silent reuse.
  const std::string record = encode_frame(cell_block);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, std::string("append failed: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
#else
  (void)cell_block;
  fail(path_, "journaling requires POSIX file APIs on this platform");
#endif
}

}  // namespace phonoc
