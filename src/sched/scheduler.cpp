#include "sched/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <tuple>
#include <utility>

#include "exec/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/journal.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace phonoc {
namespace {

/// A blocked recv re-checks "is the sweep already settled elsewhere?"
/// this often, so one wedged straggler cannot stall an otherwise
/// finished sweep for its whole hard timeout.
constexpr double kRecvTickSeconds = 0.25;

/// Everything one host-driver thread needs to touch. `results` and
/// `cell_host` slots are written only after HostPool::complete_cell
/// accepted the cell (first-wins), so writers never overlap.
struct DriverContext {
  const SweepSpec& spec;
  const SchedulerOptions& options;
  const std::vector<SweepCell>& cells;
  /// Slice-independent serialized shard text (spec + evaluator),
  /// computed once per sweep; complete_shard() finishes it per unit.
  const std::string& shard_prefix;
  HostPool& pool;
  std::vector<CellResult>& results;
  std::vector<int>& cell_host;
  /// Settled-cell journal, null when journaling is off. Appends happen
  /// only for *accepted* answers (post-dedup), so replaying the journal
  /// reproduces exactly the first-wins outcome.
  JournalWriter* journal = nullptr;
};

void mark_cell_failed(DriverContext& ctx, std::size_t index,
                      const std::string& message) {
  ctx.results[index] = make_failed_cell(ctx.spec, ctx.cells[index], message);
}

/// Abandon everything fail_unit() says is beyond retry.
void abandon(DriverContext& ctx, std::size_t host,
             const std::string& reason) {
  for (const auto index : ctx.pool.fail_unit(host))
    mark_cell_failed(ctx, index,
                     "abandoned after " +
                         std::to_string(ctx.options.max_attempts) +
                         " attempt(s); last host error: " + reason);
}

/// Parse the worker's hello reply. Accepted shapes: the bare
/// `kSchedHello` (a peer predating optional fields ⇒ capacity 1) or
/// `kSchedHello key value ...` with unknown keys ignored (forward
/// compatibility). Returns false on a version mismatch.
bool parse_hello_reply(const std::string& payload, std::size_t& capacity) {
  capacity = 1;
  if (payload == kSchedHello) return true;
  const std::string prefix = std::string(kSchedHello) + " ";
  if (!starts_with(payload, prefix)) return false;
  const auto fields = split_ws(payload.substr(prefix.size()));
  for (std::size_t i = 0; i + 1 < fields.size(); i += 2) {
    if (fields[i] != "capacity") continue;
    try {
      const long value = parse_long(fields[i + 1]);
      if (value > 0) capacity = static_cast<std::size_t>(value);
    } catch (const ParseError&) {
      // A garbled field is not worth killing the host over: keep 1.
    }
  }
  return true;
}

enum class UnitOutcome { Done, HostDead, SweepSettled };

/// Drain one in-flight unit: cell frames (first answer wins) until the
/// worker's "done" marker. Returns HostDead on close/corruption/hard
/// timeout, SweepSettled when every cell settled elsewhere while this
/// host was still talking. A "done" that arrives before `expected`
/// cell frames is itself a host failure — trusting it would strand the
/// missing cells outside every queue and hang the sweep.
UnitOutcome receive_unit(DriverContext& ctx, std::size_t host,
                         std::size_t expected, Connection& conn,
                         HostReport& report, std::string& death) {
  obs::TraceSpan span("sched", "receive_unit");
  span.arg({"host", std::uint64_t(host)});
  span.arg({"expected", std::uint64_t(expected)});
  std::size_t received = 0;
  Timer silence;  // restarted on every frame: a hard *silence* deadline
  for (;;) {
    Connection::RecvResult frame;
    try {
      frame = conn.recv(kRecvTickSeconds);
    } catch (const std::exception& e) {
      death = std::string("corrupt frame: ") + e.what();
      return UnitOutcome::HostDead;
    }
    switch (frame.status) {
      case Connection::RecvStatus::Timeout: {
        if (ctx.pool.all_settled()) return UnitOutcome::SweepSettled;
        const double limit = ctx.options.cell_timeout_seconds;
        if (limit > 0.0 && silence.elapsed_seconds() >= limit) {
          death = "no frame for " + format_fixed(silence.elapsed_seconds(), 1) +
                  " s (cell timeout)";
          return UnitOutcome::HostDead;
        }
        continue;
      }
      case Connection::RecvStatus::Closed:
        death = "connection closed mid-shard";
        return UnitOutcome::HostDead;
      case Connection::RecvStatus::Ok:
        break;
    }
    silence.restart();

    if (starts_with(frame.payload, kSchedDonePrefix)) {
      if (received < expected) {
        death = "worker reported done after " + std::to_string(received) +
                " of " + std::to_string(expected) + " cells";
        return UnitOutcome::HostDead;
      }
      return UnitOutcome::Done;
    }
    if (starts_with(frame.payload, kSchedErrorPrefix)) {
      death = "worker reported: " + frame.payload;
      return UnitOutcome::HostDead;
    }
    CellResult result;
    try {
      std::istringstream in(frame.payload);
      auto parsed = read_cell_result(in);
      if (!parsed) {
        death = "empty cell frame";
        return UnitOutcome::HostDead;
      }
      result = std::move(*parsed);
    } catch (const std::exception& e) {
      death = std::string("unreadable cell frame: ") + e.what();
      return UnitOutcome::HostDead;
    }
    if (result.cell.index >= ctx.results.size()) {
      death = "cell index " + std::to_string(result.cell.index) +
              " out of range";
      return UnitOutcome::HostDead;
    }
    ++received;
    if (!ctx.pool.complete_cell(result.cell.index)) {
      // A retried straggler answered after its clone (or the cell came
      // back from the journal): drop, don't double-count.
      ++report.duplicates;
      continue;
    }
    // Journal the accepted frame verbatim — no re-serialization, so a
    // replayed cell is bit-identical to the live one by construction.
    // An append failure throws out to the driver's catch: the host is
    // reported lost and its work abandoned, never silently un-journaled.
    if (ctx.journal) ctx.journal->append(frame.payload);
    if (result.status == CellStatus::Ok) {
      ++report.cells_ok;
      // Ok cells only, matching SweepReport::build's cpu_seconds rule,
      // so the merged report's cpu equals the sum of the host clocks.
      report.cpu_seconds += result.seconds;
    } else {
      ++report.cells_failed;
    }
    ctx.cell_host[result.cell.index] = static_cast<int>(host);
    ctx.results[result.cell.index] = std::move(result);
  }
}

/// Run the version handshake on an already-open connection (a dialed
/// fleet host or an admitted joiner — the scheduler speaks first on
/// both), filling `report.connected` / `report.capacity` / the failure
/// diagnostics. Does not close the connection; the caller decides what
/// a failed peer costs.
bool handshake(const SchedulerOptions& options, Connection& conn,
               HostReport& report) {
  obs::TraceSpan span("sched", "handshake");
  span.arg({"endpoint", std::string_view(report.endpoint)});
  if (!conn.send(kSchedHello)) {
    report.error = "connection closed before the handshake";
    return false;
  }
  Connection::RecvResult hello;
  try {
    hello = conn.recv(options.handshake_timeout_seconds);
  } catch (const std::exception& e) {
    hello = {Connection::RecvStatus::Closed, {}};
    report.error = e.what();
  }
  if (hello.status != Connection::RecvStatus::Ok ||
      !parse_hello_reply(hello.payload, report.capacity)) {
    report.error =
        hello.status == Connection::RecvStatus::Ok
            ? "handshake mismatch: got '" + hello.payload + "'"
            : "no handshake within " +
                  format_fixed(options.handshake_timeout_seconds, 1) +
                  " s" + (report.error.empty() ? "" : ": " + report.error);
    return false;
  }
  report.connected = true;
  return true;
}

/// Phase 1 of a sweep: dial one host and run the version handshake,
/// filling `report.connected` / `report.capacity`. Returns the live
/// connection, or null with the failure recorded in the report. Runs
/// before the HostPool exists — a host that fails here simply gets
/// capacity 0 in the deal, so there is nothing to retire.
std::unique_ptr<Connection> connect_and_handshake(
    const SchedulerOptions& options, Transport& transport,
    HostReport& report) {
  std::unique_ptr<Connection> conn;
  try {
    conn = transport.connect(report.endpoint);
  } catch (const std::exception& e) {
    report.error = e.what();
    log_warning("sched") << "sched: host '" << report.endpoint
                         << "' unreachable: " << report.error;
    return nullptr;
  }
  if (!handshake(options, *conn, report)) {
    report.died = true;
    conn->close();
    log_warning("sched") << "sched: host '" << report.endpoint
                         << "' lost: " << report.error;
    return nullptr;
  }
  return conn;
}

/// Phase 2: pull units off the pool and stream them down an
/// already-handshaken connection until the sweep settles or the host
/// dies.
void drive_host(DriverContext ctx, std::size_t host, Connection& conn,
                HostReport& report) {
  const auto die = [&](const std::string& reason) {
    report.died = true;
    report.error = reason;
    obs::trace_instant("sched", "host_lost", {"host", std::uint64_t(host)});
    static obs::Counter& lost = obs::MetricsRegistry::global().counter(
        "phonoc_sched_hosts_lost_total",
        "Hosts that died mid-sweep (their work was recovered or abandoned).");
    lost.inc();
    abandon(ctx, host, reason);
    ctx.pool.retire_host(host);
    conn.close();
    log_warning("sched") << "sched: host '" << report.endpoint
                         << "' lost: " << reason;
  };

  while (auto unit = ctx.pool.acquire(host)) {
    obs::TraceSpan unit_span("sched", "unit");
    unit_span.arg({"host", std::uint64_t(host)});
    unit_span.arg({"begin", std::uint64_t(unit->begin)});
    unit_span.arg({"end", std::uint64_t(unit->end)});
    if (!conn.send(
            complete_shard(ctx.shard_prefix, unit->begin, unit->end))) {
      die("connection closed while sending a shard");
      break;
    }
    std::string death;
    const auto outcome = receive_unit(ctx, host, unit->end - unit->begin,
                                      conn, report, death);
    if (outcome == UnitOutcome::HostDead) {
      die(death);
      break;
    }
    if (outcome == UnitOutcome::SweepSettled) break;
    ctx.pool.finish_unit(host);
    ++report.shards;
  }
  if (!report.died) {
    (void)conn.send(kSchedQuit);  // let a daemon go back to accepting
    conn.close();
  }
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options) : options_(std::move(options)) {
  require(!options_.hosts.empty(),
          "Scheduler: at least one host endpoint is required");
}

ScheduleResult Scheduler::run(const SweepSpec& spec) const {
  Timer wall;
  ScheduleResult outcome;

  const auto cells = expand(spec);
  obs::TraceSpan sweep_span("sched", "sweep");
  sweep_span.arg({"cells", std::uint64_t(cells.size())});
  sweep_span.arg({"hosts", std::uint64_t(options_.hosts.size())});
  static obs::Counter& sweeps = obs::MetricsRegistry::global().counter(
      "phonoc_exec_sweeps_total", "Batch sweeps run, by backend.",
      {{"backend", "remote"}});
  sweeps.inc();
  outcome.results.resize(cells.size());
  outcome.cell_host.assign(cells.size(), kCellHostUnanswered);

  // One slot per host, configured fleet first, late-admitted joiners
  // appended; a std::deque keeps every reference stable while the
  // admission thread grows it mid-sweep.
  struct HostSlot {
    HostReport report;
    std::unique_ptr<Connection> conn;
    Timer clock;
    std::thread driver;
    bool driver_started = false;
    bool joined = false;
  };
  std::deque<HostSlot> slots;
  std::mutex slots_mutex;
  const std::size_t host_count = options_.hosts.size();
  for (std::size_t h = 0; h < host_count; ++h) {
    slots.emplace_back();
    slots[h].report.endpoint = options_.hosts[h];
  }
  if (cells.empty()) {
    for (const auto& slot : slots) outcome.hosts.push_back(slot.report);
    return outcome;
  }

  auto transport = options_.transport ? options_.transport : make_transport();
  // The spec (with its embedded workloads) dwarfs the two slice lines;
  // serialize it once instead of once per dispatched unit.
  const std::string prefix = shard_prefix(spec, options_.evaluator);

  // Settled-cell journal: replay an existing log *before* any work is
  // dealt (replay errors throw — never silent partial reuse), then open
  // the writer the drivers append accepted answers to.
  std::unique_ptr<JournalWriter> journal;
  JournalReplay replayed;
  if (!options_.journal_path.empty()) {
    obs::TraceSpan replay_span("sched", "journal_replay");
    const std::uint64_t spec_hash = fnv1a64(prefix);
    replayed = replay_journal(options_.journal_path, spec_hash, cells.size());
    replay_span.arg({"cells", std::uint64_t(replayed.cells.size())});
    journal = std::make_unique<JournalWriter>(options_.journal_path,
                                              spec_hash);
  }

  // Phase 1: dial and handshake the whole fleet in parallel, so every
  // host's advertised capacity is known before any work is dealt.
  {
    std::vector<std::thread> dialers;
    dialers.reserve(host_count);
    for (std::size_t h = 0; h < host_count; ++h)
      dialers.emplace_back([&, h] {
        HostSlot& slot = slots[h];
        slot.clock.restart();
        try {
          slot.conn =
              connect_and_handshake(options_, *transport, slot.report);
        } catch (const std::exception& e) {
          slot.report.died = true;
          slot.report.error = std::string("handshake failed: ") + e.what();
        }
        if (!slot.conn)
          slot.report.wall_seconds = slot.clock.elapsed_seconds();
      });
    for (auto& dialer : dialers) dialer.join();
  }

  // Phase 2: deal contiguous unit blocks weighted by capacity (a host
  // that never handshook weighs nothing) and drive the survivors.
  std::vector<std::size_t> capacities(host_count, 0);
  std::size_t connected = 0;
  std::size_t total_capacity = 0;
  for (std::size_t h = 0; h < host_count; ++h)
    if (slots[h].report.connected) {
      capacities[h] = std::max<std::size_t>(slots[h].report.capacity, 1);
      total_capacity += capacities[h];
      ++connected;
    }
  HostPool pool(capacities, cells.size(), options_.cells_per_shard,
                options_.max_attempts, options_.speculate_after_seconds,
                options_.allow_steal);

  // Journaled cells settle now, before any dispatch: drivers skip them
  // (first_unsettled), and a live re-answer from a mid-unit overlap is
  // deduplicated exactly like a straggler's.
  for (auto& cell : replayed.cells) {
    const std::size_t index = cell.cell.index;
    (void)pool.complete_cell(index);
    outcome.cell_host[index] = kCellHostJournal;
    outcome.results[index] = std::move(cell);
  }
  outcome.journaled = replayed.cells.size();
  if (outcome.journaled > 0)
    log_info("sched") << "sched: journal '" << options_.journal_path
                      << "' replayed " << outcome.journaled
                      << " settled cell(s) (" << replayed.duplicates
                      << " duplicate record(s) dropped)";

  log_info("sched") << "sched: " << cells.size() << " cells over "
                    << connected << " of " << host_count
                    << " host(s) (total capacity " << total_capacity << "), "
                    << options_.cells_per_shard << " cell(s)/shard, "
                    << options_.max_attempts << " attempt(s)";

  const auto run_driver = [&](std::size_t h, HostSlot& slot) {
    DriverContext ctx{spec,
                      options_,
                      cells,
                      prefix,
                      pool,
                      outcome.results,
                      outcome.cell_host,
                      journal.get()};
    try {
      drive_host(ctx, h, *slot.conn, slot.report);
    } catch (const std::exception& e) {
      // A driver must never take the process down or wedge the pool:
      // give its work back and record the host as lost.
      slot.report.died = true;
      slot.report.error = std::string("driver failed: ") + e.what();
      abandon(ctx, h, slot.report.error);
      pool.retire_host(h);
    }
    // Dial-to-drain on this host's clock (includes the fleet
    // handshake barrier the host actually waited out).
    slot.report.wall_seconds = slot.clock.elapsed_seconds();
  };

  for (std::size_t h = 0; h < host_count; ++h) {
    HostSlot& slot = slots[h];
    if (!slot.conn) continue;
    slot.driver = std::thread([&run_driver, h, &slot] { run_driver(h, slot); });
    slot.driver_started = true;
  }

  // Dynamic admission: accept late `phonoc_workerd --join` daemons and
  // hand each a fresh pool slot — the joiner reaches work through the
  // retry queue, stealing and speculation, like any idle host.
  std::atomic<bool> admitting{false};
  std::unique_ptr<TcpListener> listener;
  std::thread admitter;
  if (options_.admit_port >= 0) {
    listener = std::make_unique<TcpListener>(
        static_cast<std::uint16_t>(options_.admit_port));
    admitting.store(true);
    log_info("sched") << "sched: admitting late workers on port "
                      << listener->port();
    if (options_.on_admit_port) options_.on_admit_port(listener->port());
    admitter = std::thread([&] {
      while (admitting.load()) {
        try {
          auto conn = listener->accept_for(0.1);
          if (!conn) continue;  // timeout tick: re-check the stop flag
          if (pool.all_settled()) {
            conn->close();
            continue;
          }
          HostReport probe;
          probe.endpoint = "admitted";
          if (!handshake(options_, *conn, probe)) {
            log_warning("sched") << "sched: rejected a late joiner: "
                                 << probe.error;
            conn->close();
            continue;
          }
          const std::lock_guard<std::mutex> lock(slots_mutex);
          // The pool and slot indices stay aligned: both grow by one
          // under this mutex.
          const std::size_t h = pool.add_host();
          slots.emplace_back();
          HostSlot& slot = slots.back();
          slot.report = probe;
          slot.report.endpoint =
              "admitted#" + std::to_string(h - host_count);
          slot.report.admitted_late = true;
          slot.clock.restart();
          slot.conn = std::move(conn);
          obs::trace_instant("sched", "admit_host",
                             {"host", std::uint64_t(h)},
                             {"capacity",
                              std::uint64_t(slot.report.capacity)});
          static obs::Counter& admitted =
              obs::MetricsRegistry::global().counter(
                  "phonoc_sched_hosts_admitted_total",
                  "Late workers admitted mid-sweep.");
          admitted.inc();
          log_info("sched") << "sched: admitted late worker '"
                            << slot.report.endpoint << "' (capacity "
                            << slot.report.capacity << ")";
          slot.driver =
              std::thread([&run_driver, h, &slot] { run_driver(h, slot); });
          slot.driver_started = true;
        } catch (const std::exception& e) {
          log_warning("sched") << "sched: admission loop failed: "
                               << e.what();
          break;
        }
      }
    });
  }

  // Join every driver, including ones admitted while joining. Without
  // admission this is the plain "wait for the fleet" barrier; with it,
  // an all-drivers-exited fleet holds the sweep open admit_grace_seconds
  // for a joiner before giving up on the unsettled cells.
  const auto join_pass = [&]() {
    std::size_t joined = 0;
    for (;;) {
      std::thread* driver = nullptr;
      {
        const std::lock_guard<std::mutex> lock(slots_mutex);
        for (auto& slot : slots)
          if (slot.driver_started && !slot.joined) {
            slot.joined = true;
            driver = &slot.driver;
            break;
          }
      }
      if (!driver) return joined;
      driver->join();
      ++joined;
    }
  };
  if (admitter.joinable()) {
    Timer idle;
    for (;;) {
      if (join_pass() > 0) idle.restart();
      if (pool.all_settled()) break;
      if (idle.elapsed_seconds() >= options_.admit_grace_seconds) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    admitting.store(false);
    admitter.join();
    // A joiner admitted in the shutdown race window still gets joined
    // (and its cells counted) — the admitter is dead, so this is final.
    (void)join_pass();
  } else {
    (void)join_pass();
  }

  // Cells no surviving host could take (e.g. the whole fleet died with
  // work still queued) must fail loudly, not vanish.
  DriverContext cleanup{spec,
                        options_,
                        cells,
                        prefix,
                        pool,
                        outcome.results,
                        outcome.cell_host,
                        nullptr};
  for (const auto index : pool.unsettled_cells())
    mark_cell_failed(cleanup, index,
                     "no live host was available to run this cell");

  for (std::size_t h = 0; h < slots.size(); ++h) {
    HostReport report = slots[h].report;
    const auto counters = pool.host_counters(h);
    report.steals = counters.stolen_units;
    report.retries = counters.retried_units;
    report.speculations = counters.speculated_units;
    outcome.hosts.push_back(std::move(report));
  }
  outcome.pool = pool.stats();
  outcome.wall_seconds = wall.elapsed_seconds();
  for (const auto& host : outcome.hosts)
    log_info("sched")
        << "sched: host '" << host.endpoint << "' "
        << (host.connected ? (host.died ? "died" : "ok") : "unreachable")
        << " (capacity " << host.capacity << "): " << host.shards
        << " shard(s), " << host.cells_ok << " ok, " << host.cells_failed
        << " failed, " << host.duplicates << " duplicate(s), "
        << format_fixed(host.cpu_seconds, 2) << " s cpu / "
        << format_fixed(host.wall_seconds, 2) << " s wall";
  return outcome;
}

std::string host_report_csv(const ScheduleResult& outcome) {
  std::ostringstream out;
  out << "endpoint,connected,died,admitted_late,capacity,shards,cells_ok,"
         "cells_failed,duplicates,steals,retries,speculations,"
         "cpu_seconds,wall_seconds,error\n";
  for (const auto& host : outcome.hosts) {
    // The error text is free-form (strerror, exception messages): CSV-
    // quote it and double any embedded quotes.
    std::string error = host.error;
    std::string quoted;
    quoted.reserve(error.size() + 2);
    quoted += '"';
    for (const char c : error) {
      if (c == '"') quoted += '"';
      quoted += c == '\n' ? ' ' : c;
    }
    quoted += '"';
    out << host.endpoint << ',' << (host.connected ? 1 : 0) << ','
        << (host.died ? 1 : 0) << ',' << (host.admitted_late ? 1 : 0) << ','
        << host.capacity << ',' << host.shards << ',' << host.cells_ok << ','
        << host.cells_failed << ',' << host.duplicates << ',' << host.steals
        << ',' << host.retries << ',' << host.speculations << ','
        << format_double(host.cpu_seconds) << ','
        << format_double(host.wall_seconds) << ',' << quoted << '\n';
  }
  return out.str();
}

SweepReport merge_host_reports(const SweepSpec& spec,
                               const ScheduleResult& outcome) {
  SweepReport merged;
  for (std::size_t h = 0; h < outcome.hosts.size(); ++h) {
    std::vector<CellResult> subset;
    for (std::size_t i = 0; i < outcome.results.size(); ++i)
      if (outcome.cell_host[i] == static_cast<int>(h))
        subset.push_back(outcome.results[i]);
    merged.merge_concurrent(
        SweepReport::build(spec, subset, outcome.hosts[h].wall_seconds));
  }
  // Cells replayed from the journal were paid for by the *previous*
  // scheduler run: their cpu sums in, but they carry no wall clock of
  // this run (max-merge with 0 changes nothing).
  std::vector<CellResult> journaled;
  for (std::size_t i = 0; i < outcome.results.size(); ++i)
    if (outcome.cell_host[i] == kCellHostJournal)
      journaled.push_back(outcome.results[i]);
  if (!journaled.empty())
    merged.merge_concurrent(SweepReport::build(spec, journaled, 0.0));
  // Cells nobody answered (scheduler-side failures) still count toward
  // failed_count; they carry no host clock.
  std::vector<CellResult> unrouted;
  for (std::size_t i = 0; i < outcome.results.size(); ++i)
    if (outcome.cell_host[i] == kCellHostUnanswered &&
        outcome.results[i].status == CellStatus::Failed)
      unrouted.push_back(outcome.results[i]);
  if (!unrouted.empty())
    merged.merge_concurrent(SweepReport::build(spec, unrouted, 0.0));
  // Hosts answer interleaved slices, so restore the grid's row-major
  // report order.
  std::sort(merged.cells.begin(), merged.cells.end(),
            [](const AggregateCell& a, const AggregateCell& b) {
              return std::tie(a.workload, a.topology, a.goal, a.optimizer,
                              a.budget) < std::tie(b.workload, b.topology,
                                                   b.goal, b.optimizer,
                                                   b.budget);
            });
  return merged;
}

std::vector<CellResult> run_remote(const SweepSpec& spec,
                                   const BatchOptions& options) {
  if (options.remote_hosts.empty())
    throw ExecError(
        "BatchBackend::Remote requires BatchOptions::remote_hosts (endpoints "
        "like \"host:port\" or \"loopback\")");
  SchedulerOptions sched;
  sched.hosts = options.remote_hosts;
  sched.evaluator = options.evaluator;
  sched.journal_path = options.journal_path;
  if (options.cells_per_shard > 0)
    sched.cells_per_shard = options.cells_per_shard;
  return Scheduler(std::move(sched)).run(spec).results;
}

}  // namespace phonoc
