#pragma once
/// \file transport.hpp
/// \brief Pluggable byte transports for the distributed sweep scheduler.
///
/// A Transport dials worker endpoints and returns Connections — framed,
/// bidirectional, message-oriented channels. Every message is one
/// exec/serialize frame (length + FNV-1a checksum wrapping the existing
/// line-oriented shard/cell text), so corruption and truncation surface
/// as explicit errors rather than misparsed work.
///
/// Shipped implementations:
///  - TcpTransport     — dials "host:port" `phonoc_workerd` daemons.
///  - LoopbackTransport — serves each connection from an in-process
///    thread over a socketpair: the full framing + scheduler code path
///    with no daemon to start (tests and single-host use).
///  - make_transport() — endpoint-dispatching default ("loopback*" goes
///    to LoopbackTransport, anything else to TcpTransport).
///
/// Scheduler failure-path tests inject their own Transport (an
/// in-memory fake with scripted deaths/delays); nothing in the
/// scheduler knows which implementation it is driving.
///
/// POSIX-only: on other platforms connect() throws ExecError.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace phonoc {

/// Scheduler <-> worker handshake payload. Both sides send it as their
/// first frame; a mismatch (version drift, a non-scheduler peer) kills
/// the connection before any work is exchanged.
inline constexpr const char* kSchedHello = "hello phonoc-sched v1";
/// Client farewell: the worker closes the connection (a daemon goes
/// back to accepting) instead of treating the close as a peer death.
inline constexpr const char* kSchedQuit = "quit";
/// Worker end-of-shard marker: "done <cells-emitted>".
inline constexpr const char* kSchedDonePrefix = "done";
/// Worker-side protocol failure: "error <message>".
inline constexpr const char* kSchedErrorPrefix = "error";

/// One framed, bidirectional channel to a worker. Implementations need
/// not be thread-safe: the scheduler drives each connection from a
/// single host-driver thread.
class Connection {
 public:
  enum class RecvStatus {
    Ok,       ///< `payload` holds one complete message
    Timeout,  ///< nothing arrived within the deadline; retry is safe
    Closed,   ///< the peer is gone (EOF, reset, or local close)
  };
  struct RecvResult {
    RecvStatus status = RecvStatus::Closed;
    std::string payload;
  };

  virtual ~Connection() = default;

  /// Send one message; false when the peer is gone (never throws for
  /// an ordinary peer death).
  virtual bool send(const std::string& payload) = 0;

  /// Receive the next message. `timeout_seconds` <= 0 waits forever.
  /// Throws ParseError when the stream is corrupt (bad checksum) —
  /// callers treat that exactly like a dead peer.
  [[nodiscard]] virtual RecvResult recv(double timeout_seconds) = 0;

  /// Idempotent; recv() on a closed connection returns Closed.
  virtual void close() = 0;
};

/// Connection factory for one kind of endpoint.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Dial `endpoint`; throws ExecError when the host cannot be reached.
  [[nodiscard]] virtual std::unique_ptr<Connection> connect(
      const std::string& endpoint) = 0;
};

/// Framed connection over a POSIX file descriptor (socket or
/// socketpair end). Takes ownership of the descriptor.
[[nodiscard]] std::unique_ptr<Connection> make_fd_connection(int fd);

/// Dials "host:port" TCP endpoints (a `phonoc_workerd` fleet).
class TcpTransport : public Transport {
 public:
  /// `connect_timeout_seconds` bounds the TCP dial (not later recvs).
  explicit TcpTransport(double connect_timeout_seconds = 10.0);
  [[nodiscard]] std::unique_ptr<Connection> connect(
      const std::string& endpoint) override;

 private:
  double connect_timeout_seconds_;
};

/// Serves every connection from an in-process worker thread over a
/// socketpair (the same serve_connection() loop `phonoc_workerd` runs).
/// Destruction joins the server threads; close every Connection first.
class LoopbackTransport : public Transport {
 public:
  /// The worker body run for each served connection. The default is
  /// `serve_connection(conn, {})`; tests and benches inject a body with
  /// non-default ServiceOptions (e.g. a fixed exec-pool width) to pin
  /// worker-side behaviour without a daemon process.
  using Server = std::function<std::size_t(Connection&)>;

  LoopbackTransport();
  explicit LoopbackTransport(Server server);
  ~LoopbackTransport() override;
  [[nodiscard]] std::unique_ptr<Connection> connect(
      const std::string& endpoint) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The default endpoint-dispatching transport: endpoints starting with
/// "loopback" are served in-process, everything else is dialed as TCP.
[[nodiscard]] std::shared_ptr<Transport> make_transport();

/// Listening side of TcpTransport, used by `phonoc_workerd`. Binds and
/// listens on construction (port 0 picks an ephemeral port — read it
/// back with port()); accept() blocks for the next scheduler dial.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Next inbound connection (blocking); nullptr when the listener was
  /// interrupted by a fatal accept error.
  [[nodiscard]] std::unique_ptr<Connection> accept();
  /// Like accept() but gives up after `timeout_seconds` (<= 0 waits
  /// forever). Returns nullptr on timeout as well as on a fatal error —
  /// pollers that need to re-check a stop flag between dials use this
  /// (the scheduler's dynamic-admission loop).
  [[nodiscard]] std::unique_ptr<Connection> accept_for(
      double timeout_seconds);
  /// Like accept_for() but hands back the raw accepted descriptor
  /// (caller owns it; -1 on timeout/error) instead of wrapping it in a
  /// framed Connection. For byte-oriented peers that do not speak the
  /// frame protocol — the obs/prom_http plain-HTTP scrape listener.
  [[nodiscard]] int accept_fd_for(double timeout_seconds);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace phonoc
