#include "sched/host_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace phonoc {

namespace {
/// How often a blocked acquire() re-examines the straggler clocks.
constexpr auto kAcquirePollInterval = std::chrono::milliseconds(20);

obs::Counter& units_counter(const char* path) {
  static obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  return registry.counter("phonoc_sched_units_total",
                          "Work units acquired, by acquire path.",
                          {{"path", path}});
}
}  // namespace

HostPool::HostPool(std::vector<std::size_t> capacities, std::size_t cells,
                   std::size_t cells_per_unit, std::size_t max_attempts,
                   double speculate_after_seconds, bool allow_steal)
    : queues_(capacities.size()),
      in_flight_(capacities.size()),
      counters_(capacities.size()),
      settled_(cells, 0),
      max_attempts_(std::max<std::size_t>(max_attempts, 1)),
      speculate_after_seconds_(speculate_after_seconds),
      allow_steal_(allow_steal),
      epoch_(std::chrono::steady_clock::now()) {
  const std::size_t hosts = capacities.size();
  require(hosts > 0, "HostPool: need at least one host");
  const std::size_t unit = std::max<std::size_t>(cells_per_unit, 1);
  const std::size_t units = (cells + unit - 1) / unit;
  // An all-zero fleet (say, no host survived its handshake) degrades
  // to an equal split: the units land somewhere well-formed and the
  // scheduler's unsettled-cell sweep fails them loudly.
  std::size_t total = 0;
  for (const auto capacity : capacities) total += capacity;
  if (total == 0) {
    capacities.assign(hosts, 1);
    total = hosts;
  }
  // Largest-remainder apportionment of whole units: floor every
  // host's proportional share, then hand the leftover units to the
  // largest fractional remainders (ties toward the lower host index —
  // stable_sort keeps the iota order). A capacity-0 host always has
  // remainder 0 and can never win a leftover unit.
  std::vector<std::size_t> share(hosts);
  std::size_t dealt = 0;
  for (std::size_t h = 0; h < hosts; ++h) {
    share[h] = units * capacities[h] / total;
    dealt += share[h];
  }
  std::vector<std::size_t> order(hosts);
  for (std::size_t h = 0; h < hosts; ++h) order[h] = h;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return units * capacities[a] % total >
                            units * capacities[b] % total;
                   });
  for (std::size_t i = 0; i < units - dealt; ++i) ++share[order[i]];
  // Host h owns one contiguous block: neighbouring ranges share
  // problems worker-side, so locality survives the weighting.
  std::size_t begin = 0;
  for (std::size_t h = 0; h < hosts; ++h)
    for (std::size_t u = 0; u < share[h]; ++u, begin += unit)
      queues_[h].push_back(
          WorkUnit{begin, std::min(begin + unit, cells), 0});
}

HostPool::HostPool(std::size_t hosts, std::size_t cells,
                   std::size_t cells_per_unit, std::size_t max_attempts,
                   double speculate_after_seconds, bool allow_steal)
    : HostPool(std::vector<std::size_t>(hosts, 1), cells, cells_per_unit,
               max_attempts, speculate_after_seconds, allow_steal) {}

double HostPool::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::size_t HostPool::first_unsettled(const WorkUnit& unit) const {
  std::size_t i = unit.begin;
  while (i < unit.end && settled_[i]) ++i;
  return i;
}

void HostPool::settle_locked(std::size_t index) {
  if (settled_[index]) return;
  settled_[index] = 1;
  ++settled_count_;
  if (settled_count_ == settled_.size()) work_cv_.notify_all();
}

std::optional<WorkUnit> HostPool::try_acquire_locked(std::size_t host) {
  const auto dispatch = [&](WorkUnit unit) -> std::optional<WorkUnit> {
    // Skip any prefix settled in the meantime (e.g. by a clone); a
    // fully settled unit simply dissolves.
    unit.begin = first_unsettled(unit);
    if (unit.begin >= unit.end) return std::nullopt;
    in_flight_[host] = InFlight{unit, now_seconds(), false};
    return unit;
  };

  // 1. Own queue.
  while (!queues_[host].empty()) {
    WorkUnit unit = queues_[host].front();
    queues_[host].pop_front();
    if (auto dispatched = dispatch(unit)) {
      obs::trace_instant("sched", "deal", {"host", std::uint64_t(host)},
                         {"begin", std::uint64_t(dispatched->begin)},
                         {"end", std::uint64_t(dispatched->end)});
      units_counter("own").inc();
      return dispatched;
    }
  }
  // 2. Units bounced off a failed host.
  while (!retry_.empty()) {
    WorkUnit unit = retry_.front();
    retry_.pop_front();
    if (auto dispatched = dispatch(unit)) {
      ++counters_[host].retried_units;
      obs::trace_instant("sched", "retry", {"host", std::uint64_t(host)},
                         {"begin", std::uint64_t(dispatched->begin)},
                         {"end", std::uint64_t(dispatched->end)});
      units_counter("retry").inc();
      return dispatched;
    }
  }
  // 3. Steal from the richest queue (from the back: the thief takes the
  // work its owner would reach last).
  if (allow_steal_) {
    std::size_t richest = host;
    std::size_t depth = 0;
    for (std::size_t h = 0; h < queues_.size(); ++h)
      if (h != host && queues_[h].size() > depth) {
        depth = queues_[h].size();
        richest = h;
      }
    while (depth > 0 && !queues_[richest].empty()) {
      WorkUnit unit = queues_[richest].back();
      queues_[richest].pop_back();
      if (auto dispatched = dispatch(unit)) {
        ++counters_[host].stolen_units;
        obs::trace_instant("sched", "steal", {"host", std::uint64_t(host)},
                           {"begin", std::uint64_t(dispatched->begin)},
                           {"end", std::uint64_t(dispatched->end)});
        units_counter("steal").inc();
        return dispatched;
      }
    }
  }
  // 4. Straggler speculation: clone a long-in-flight unit of another
  // host. First answer wins; the loser's cells are deduplicated.
  if (speculate_after_seconds_ >= 0.0) {
    const double now = now_seconds();
    for (std::size_t h = 0; h < in_flight_.size(); ++h) {
      if (h == host || !in_flight_[h] || in_flight_[h]->cloned) continue;
      auto& flight = *in_flight_[h];
      if (now - flight.dispatched_at < speculate_after_seconds_) continue;
      if (flight.unit.attempt + 1 >= max_attempts_) continue;
      WorkUnit clone{first_unsettled(flight.unit), flight.unit.end,
                     flight.unit.attempt + 1};
      if (clone.begin >= clone.end) continue;
      flight.cloned = true;
      ++stats_.speculations;
      ++counters_[host].speculated_units;
      obs::trace_instant("sched", "speculate", {"host", std::uint64_t(host)},
                         {"begin", std::uint64_t(clone.begin)},
                         {"end", std::uint64_t(clone.end)});
      units_counter("speculate").inc();
      in_flight_[host] = InFlight{clone, now, false};
      return clone;
    }
  }
  return std::nullopt;
}

std::size_t HostPool::add_host() {
  const std::lock_guard<std::mutex> lock(mutex_);
  queues_.emplace_back();
  in_flight_.emplace_back();
  counters_.emplace_back();
  work_cv_.notify_all();
  return queues_.size() - 1;
}

std::optional<WorkUnit> HostPool::acquire(std::size_t host) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (settled_count_ == settled_.size()) return std::nullopt;
    if (auto unit = try_acquire_locked(host)) return unit;
    // Waiting on three things at once — new retry units, full
    // settlement, and straggler clocks crossing the speculation
    // threshold. The first two notify; the clocks need a poll.
    work_cv_.wait_for(lock, kAcquirePollInterval);
  }
}

bool HostPool::complete_cell(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  require(index < settled_.size(), "HostPool: cell index out of range");
  if (settled_[index]) {
    ++stats_.duplicates;
    obs::trace_instant("sched", "dedup_drop", {"index", std::uint64_t(index)});
    static obs::Counter& dropped = obs::MetricsRegistry::global().counter(
        "phonoc_sched_dedup_drops_total",
        "Duplicate cell answers dropped (first answer won).");
    dropped.inc();
    return false;
  }
  settle_locked(index);
  obs::trace_instant("sched", "settle", {"index", std::uint64_t(index)});
  return true;
}

void HostPool::finish_unit(std::size_t host) {
  const std::lock_guard<std::mutex> lock(mutex_);
  in_flight_[host].reset();
}

std::vector<std::size_t> HostPool::fail_unit(std::size_t host) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::size_t> abandoned;
  if (!in_flight_[host]) return abandoned;
  const WorkUnit unit = in_flight_[host]->unit;
  in_flight_[host].reset();
  const std::size_t begin = first_unsettled(unit);
  if (begin >= unit.end) return abandoned;  // nothing left to recover
  if (unit.attempt + 1 < max_attempts_) {
    retry_.push_back(WorkUnit{begin, unit.end, unit.attempt + 1});
    ++stats_.retries;
    work_cv_.notify_all();
    return abandoned;
  }
  // Attempts exhausted: these cells will never be answered.
  for (std::size_t i = begin; i < unit.end; ++i)
    if (!settled_[i]) {
      settle_locked(i);
      abandoned.push_back(i);
      ++stats_.abandoned;
    }
  return abandoned;
}

void HostPool::retire_host(std::size_t host) {
  const std::lock_guard<std::mutex> lock(mutex_);
  while (!queues_[host].empty()) {
    retry_.push_back(queues_[host].front());
    queues_[host].pop_front();
  }
  work_cv_.notify_all();
}

bool HostPool::all_settled() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return settled_count_ == settled_.size();
}

std::vector<std::size_t> HostPool::unsettled_cells() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::size_t> unsettled;
  for (std::size_t i = 0; i < settled_.size(); ++i)
    if (!settled_[i]) unsettled.push_back(i);
  return unsettled;
}

HostPoolStats HostPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

HostCounters HostPool::host_counters(std::size_t host) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  require(host < counters_.size(), "HostPool: host index out of range");
  return counters_[host];
}

}  // namespace phonoc
