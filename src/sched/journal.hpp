#pragma once
/// \file journal.hpp
/// \brief Settled-cell journal of the distributed sweep scheduler.
///
/// An append-only log that makes the *scheduler* process crash-tolerant:
/// every cell answer the scheduler accepts (first-wins) is appended as
/// one checksummed record, and a restarted scheduler replays the file to
/// mark those cells settled before dealing any work — a killed sweep
/// resumes instead of restarting, without re-executing journaled cells.
///
/// Format (reusing the exec/serialize frame helpers — length + FNV-1a
/// checksum per record, so truncation and corruption are explicit
/// errors, never silent partial reuse):
///
///     frame <bytes> <fnv1a64-hex>\n          # record 0: the header
///     phonoc-journal v1 spec <hash-hex>\n
///     frame <bytes> <fnv1a64-hex>\n          # records 1..N: one cell
///     phonoc-cell v1 ... end_cell\n          # block each, verbatim
///
/// The header's spec hash is the FNV-1a of the sweep's slice-independent
/// shard prefix (spec with embedded workloads + evaluator options, the
/// byte-exact text every dispatched unit shares), so a journal can never
/// be replayed against a different sweep: a mismatch is a structured
/// JournalError naming both hashes.
///
/// Crash atomicity: each record is appended with a single O_APPEND
/// write(2) and no userspace buffering, so a SIGKILLed scheduler leaves
/// whole records behind. A torn or corrupt record — however it got
/// there — fails the replay loudly; resuming then requires removing the
/// damaged journal (the error says which record and why).

#include <cstdint>
#include <cstddef>
#include <string>
#include <mutex>
#include <vector>

#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "util/error.hpp"

namespace phonoc {

/// A journal could not be replayed or appended: corruption, truncation,
/// a spec-hash mismatch, or an I/O failure. Always names the path.
class JournalError : public ExecError {
 public:
  explicit JournalError(const std::string& what) : ExecError(what) {}
};

/// The sweep identity a journal is keyed by: FNV-1a 64 of the
/// slice-independent shard prefix (spec + evaluator options), the same
/// bytes every dispatched unit of the sweep shares.
[[nodiscard]] std::uint64_t journal_spec_hash(const SweepSpec& spec,
                                              const EvaluatorOptions& evaluator);

/// Outcome of replaying a journal.
struct JournalReplay {
  /// Settled cells in journal order, first-wins on duplicates. Both Ok
  /// and worker-reported Failed cells replay (an uninterrupted run
  /// would not have re-executed either).
  std::vector<CellResult> cells;
  /// Records whose cell was already settled earlier in the journal
  /// (e.g. the tail of a sweep resumed twice), dropped first-wins.
  std::size_t duplicates = 0;
};

/// Replay `path` against the sweep identified by `spec_hash` with
/// `cell_count` grid cells. A missing or empty file replays to nothing
/// (the fresh-sweep case). Throws JournalError on a bad header, a spec
/// hash mismatch, a checksum-corrupted record, a truncated final
/// record, an unparseable cell block, or an out-of-range cell index.
[[nodiscard]] JournalReplay replay_journal(const std::string& path,
                                           std::uint64_t spec_hash,
                                           std::size_t cell_count);

/// Appends settled-cell records, thread-safe (the scheduler's host
/// drivers settle cells concurrently). Construction opens `path` for
/// append and writes the header record iff the file is new or empty;
/// callers replay first, so an existing journal has already proven its
/// header matches.
class JournalWriter {
 public:
  JournalWriter(std::string path, std::uint64_t spec_hash);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one cell record. `cell_block` is the serialized
  /// `phonoc-cell v1 … end_cell` text exactly as it crossed the wire
  /// (the scheduler journals the accepted frame's payload verbatim —
  /// no re-serialization, so replayed cells are bit-identical to live
  /// ones by construction). Throws JournalError on an I/O failure.
  void append(const std::string& cell_block);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
  int fd_ = -1;
};

}  // namespace phonoc
