#pragma once
/// \file scheduler.hpp
/// \brief Distributed sweep scheduler: ship shards to a worker fleet,
/// retry stragglers, merge per-host reports.
///
/// The Scheduler splits a SweepSpec's grid into contiguous WorkUnits,
/// dials every host of the fleet through a pluggable Transport, streams
/// framed SweepShards out and CellResult blocks back, and survives the
/// real fleet failure modes: a host that refuses the dial, a host that
/// dies mid-shard, a straggler that answers after its work was cloned
/// elsewhere (first answer wins, the late one is deduplicated), and a
/// fleet that loses every host (the unroutable cells come back as
/// CellStatus::Failed, never silently dropped). The *scheduler's* own
/// death is covered by the settled-cell journal (journal_path replays
/// on restart, see sched/journal.hpp), and a shrinking fleet by dynamic
/// admission (admit_port lets `phonoc_workerd --join` daemons enter a
/// sweep already in flight and absorb queued, stolen or speculated
/// units).
///
/// Determinism: cells execute through the same build_sweep_problems()
/// + run_sweep_cell() path as the in-process backend and the wire
/// format round-trips doubles bit-exactly, so — for evaluation-count
/// budgets — the per-cell results are bit-identical to
/// BatchBackend::InProcess whatever the fleet size, failure pattern or
/// retry schedule (tests/test_sched.cpp asserts this on a 64-cell grid
/// with an injected mid-sweep worker death).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "sched/host_pool.hpp"
#include "sched/transport.hpp"

namespace phonoc {

/// ScheduleResult::cell_host sentinels (real hosts are >= 0).
inline constexpr int kCellHostUnanswered = -1;  ///< no host answered
inline constexpr int kCellHostJournal = -2;     ///< settled by journal replay

struct SchedulerOptions {
  /// Worker endpoints, one per fleet host ("host:port" TCP daemons, or
  /// "loopback" for in-process served connections). At least one.
  std::vector<std::string> hosts;
  /// Connection factory; null uses make_transport() (TCP + loopback
  /// dispatch). Failure-path tests inject fakes here.
  std::shared_ptr<Transport> transport;
  /// Per-cell Evaluator knobs, carried to the workers in each shard.
  EvaluatorOptions evaluator{};
  /// Cells per dispatched shard. Small units spread load and shrink
  /// the retry blast radius; larger ones amortize worker-side problem
  /// construction across neighbouring cells.
  std::size_t cells_per_shard = 4;
  /// Total dispatch attempts per unit across the fleet (1 = never
  /// retry). Cells still unanswered after the last attempt fail.
  std::size_t max_attempts = 3;
  /// Handshake deadline per host.
  double handshake_timeout_seconds = 30.0;
  /// Hard per-frame deadline while a shard is in flight: a host that
  /// stays silent this long is declared dead and its remainder is
  /// re-queued. <= 0 waits forever.
  double cell_timeout_seconds = 600.0;
  /// Idle hosts clone a unit in flight elsewhere for this long
  /// (straggler speculation; first answer wins). Negative disables.
  double speculate_after_seconds = 30.0;
  /// Allow idle hosts to steal queued units from busier ones.
  bool allow_steal = true;
  /// Settled-cell journal path (see sched/journal.hpp); empty disables.
  /// Every accepted cell answer is appended as a checksummed record, and
  /// an existing journal for the same spec is replayed before any work
  /// is dealt — a killed scheduler resumes instead of restarting.
  /// Replay errors (corruption, truncation, wrong sweep) throw from
  /// run() rather than silently reusing partial state.
  std::string journal_path;
  /// Dynamic admission: listen on this TCP port for late-joining
  /// workers (`phonoc_workerd --join`) and hand them work mid-sweep.
  /// 0 picks an ephemeral port (read back via on_admit_port); negative
  /// disables. With admission on, a fleet whose every driver has exited
  /// holds the sweep open `admit_grace_seconds` for a joiner before
  /// failing the unsettled cells.
  int admit_port = -1;
  /// Called once with the bound admission port (useful with
  /// admit_port = 0); runs on the scheduling thread before any work.
  std::function<void(std::uint16_t)> on_admit_port;
  /// How long an otherwise-dead fleet waits for a late joiner (only
  /// with admit_port >= 0).
  double admit_grace_seconds = 30.0;
};

/// What one host contributed to a sweep.
struct HostReport {
  std::string endpoint;
  bool connected = false;    ///< dial + handshake succeeded
  bool died = false;         ///< failed or timed out mid-sweep
  std::string error;         ///< diagnostic when !connected or died
  /// Worker-advertised capacity (hardware threads) from the hello
  /// reply's optional `capacity N` field; peers predating the field
  /// send a bare hello and count as 1. The scheduler handshakes the
  /// whole fleet before dealing any work, then sizes each host's
  /// initial contiguous unit block proportionally to this value
  /// (hosts that fail the handshake weigh nothing).
  std::size_t capacity = 1;
  /// Joined mid-sweep through the admission port rather than the
  /// configured fleet (endpoint reads "admitted#N").
  bool admitted_late = false;
  std::size_t shards = 0;    ///< work units served to completion
  std::size_t cells_ok = 0;  ///< accepted Ok results
  std::size_t cells_failed = 0;  ///< accepted worker-reported failures
  std::size_t duplicates = 0;    ///< late answers dropped by dedup
  /// Ledger activity (from HostPool::host_counters): units this host
  /// pulled through the non-own-queue acquire paths.
  std::size_t steals = 0;        ///< units taken from another host's queue
  std::size_t retries = 0;       ///< units picked up off the retry queue
  std::size_t speculations = 0;  ///< straggler clones this host ran
  /// Host-observed clocks: wall from dial to drain; cpu = sum of the
  /// accepted *Ok* cells' per-cell seconds (failed cells are excluded,
  /// matching SweepReport::build, so merged cpu == sum of host cpu).
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// Outcome of one distributed sweep.
struct ScheduleResult {
  /// Grid-ordered per-cell results, exactly like BatchEngine::run.
  std::vector<CellResult> results;
  /// Which host's answer settled each cell (index into hosts;
  /// kCellHostUnanswered for a cell no host answered, kCellHostJournal
  /// for a cell replayed from the journal).
  std::vector<int> cell_host;
  /// Configured fleet first (in SchedulerOptions::hosts order), then
  /// any late-admitted hosts in admission order.
  std::vector<HostReport> hosts;
  HostPoolStats pool;          ///< retries / speculations / dedup counts
  std::size_t journaled = 0;   ///< cells settled by journal replay
  double wall_seconds = 0.0;   ///< scheduler-observed elapsed time
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);

  /// Execute the grid on the fleet. Throws ExecError when no host is
  /// configured; per-host failures are reported, not thrown.
  [[nodiscard]] ScheduleResult run(const SweepSpec& spec) const;

 private:
  SchedulerOptions options_;
};

/// Fold a fleet outcome into one SweepReport the way concurrent shards
/// must be folded: per-host reports (each carrying that host's wall
/// clock) merged with SweepReport::merge_concurrent, so cpu_seconds
/// sums across the fleet while wall_seconds is the max per-host wall
/// clock — hosts ran side by side, their elapsed time overlaps.
[[nodiscard]] SweepReport merge_host_reports(const SweepSpec& spec,
                                             const ScheduleResult& outcome);

/// Render every HostReport of a fleet outcome as CSV (header row +
/// one row per host, configured fleet first then late joiners) — the
/// body behind `parallel_sweep --host-report-csv=FILE`.
[[nodiscard]] std::string host_report_csv(const ScheduleResult& outcome);

/// BatchEngine's BatchBackend::Remote entry point: a Scheduler built
/// from BatchOptions (endpoints from remote_hosts, default transport),
/// returning grid-ordered results like every other backend.
[[nodiscard]] std::vector<CellResult> run_remote(const SweepSpec& spec,
                                                 const BatchOptions& options);

}  // namespace phonoc
