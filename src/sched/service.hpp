#pragma once
/// \file service.hpp
/// \brief Worker-side serving loop of the distributed sweep scheduler.
///
/// serve_connection() is the body shared by every worker surface: the
/// `phonoc_workerd` TCP daemon runs it on each accepted socket, and
/// LoopbackTransport runs it on an in-process thread. It speaks the
/// framed scheduler protocol (see src/sched/README.md): handshake,
/// then shard frames in / cell-result frames out until "quit" or the
/// peer disconnects. Cells execute through the exact
/// build_sweep_problems() + run_sweep_cell() path of the in-process
/// backend, which is what keeps remote results bit-identical.
///
/// Each shard's cells run on an internal exec ThreadPool sized by the
/// advertised capacity (`ServiceOptions::exec_threads` overrides), with
/// result frames streamed as cells settle under a mutex-serialized
/// writer. Frames may therefore leave out of slice order; the scheduler
/// matches answers by cell index and dedups first-wins, so the merged
/// results stay bit-identical to a serial worker (each cell's outcome
/// depends only on (spec, cell), never on the thread that ran it).

#include <cstddef>

#include "sched/transport.hpp"

namespace phonoc {

struct ServiceOptions {
  /// Handshake deadline; a peer that dials but never says hello is
  /// dropped after this long.
  double handshake_timeout_seconds = 30.0;
  /// How long to wait for the next shard before giving up on the peer;
  /// <= 0 waits forever (the daemon default — schedulers say "quit").
  double idle_timeout_seconds = 0.0;
  /// Test/CI hook: abort() the process after emitting this many cell
  /// results (counted across shards); < 0 disables. This is the
  /// injected mid-sweep worker death the scheduler must recover from.
  long crash_after_cells = -1;
  /// Worker capacity advertised in the hello reply ("hello ... capacity
  /// N"): how many cells this worker could usefully run at once. 0 =
  /// the hardware thread count. Schedulers parse it into
  /// HostReport::capacity (it drives capacity-weighted dealing); peers
  /// predating the field send a bare hello and are taken as capacity 1.
  std::size_t advertised_capacity = 0;
  /// Exec threads of the internal pool a shard's cells run on. 0 sizes
  /// the pool by the (resolved) advertised capacity; 1 executes the
  /// slice inline on the serving thread (the pre-pool serial path).
  std::size_t exec_threads = 0;
};

/// Serve one scheduler connection to completion; returns the number of
/// cell results emitted. Never throws: protocol errors are answered
/// with an "error <message>" frame (when the peer is still reachable)
/// and end the connection.
std::size_t serve_connection(Connection& conn,
                             const ServiceOptions& options = {});

}  // namespace phonoc
