#include "sched/service.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "exec/batch_engine.hpp"
#include "exec/serialize.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

/// Answer a broken request and end the connection (best effort: the
/// peer may already be gone).
std::size_t protocol_error(Connection& conn, std::size_t cells_served,
                           const std::string& message) {
  log_warning("sched") << "sched service: " << message;
  (void)conn.send(std::string(kSchedErrorPrefix) + " " + message);
  return cells_served;
}

/// Per-connection cache of the expensive shard setup. Schedulers send
/// many small shards of the *same* spec down one connection; expanding
/// the grid and rebuilding networks/problems for each would multiply
/// the one-time cost the in-process backend pays once. Keyed on the
/// re-serialized spec text (write_spec round-trips bit-exactly, so an
/// identical key means an identical spec), problems accumulate as new
/// slices touch new (workload, topology, goal) coordinates.
struct SpecCache {
  std::string key;
  SweepSpec spec;
  std::vector<SweepCell> cells;
  std::map<SweepProblemKey, std::shared_ptr<const MappingProblem>> problems;

  /// The spec identity of a shard payload: everything before the
  /// trailing `slice b e` / `end_shard` lines. complete_shard()
  /// guarantees that prefix is byte-identical across every unit of one
  /// sweep, so this is a pure substring — no re-serialization per
  /// shard. Hand-crafted payloads that don't match the canonical tail
  /// fall back to re-serializing the parsed spec (write_spec
  /// round-trips bit-exactly, so the key is still sound).
  static std::string key_of(const std::string& payload,
                            const SweepSpec& parsed) {
    constexpr std::string_view tail = "end_shard\n";
    if (payload.size() > tail.size() &&
        std::string_view(payload).substr(payload.size() - tail.size()) ==
            tail) {
      const auto slice = payload.rfind("\nslice ", payload.size() -
                                                       tail.size() - 1);
      if (slice != std::string::npos) return payload.substr(0, slice + 1);
    }
    std::ostringstream serialized;
    write_spec(serialized, parsed);
    return serialized.str();
  }

  void adopt(const SweepShard& shard, const std::string& payload) {
    auto new_key = key_of(payload, shard.spec);
    if (new_key == key) return;
    key = std::move(new_key);
    spec = shard.spec;
    cells = expand(spec);
    problems.clear();
  }

  /// Problems for every cell of [begin, end), building only the
  /// coordinates this connection has not seen yet.
  void ensure_problems(std::size_t begin, std::size_t end) {
    std::vector<SweepCell> missing;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& cell = cells[i];
      if (!problems.count(
              SweepProblemKey{cell.workload, cell.topology, cell.goal}))
        missing.push_back(cell);
    }
    if (missing.empty()) return;
    auto built = build_sweep_problems(spec, missing);
    problems.insert(built.begin(), built.end());
  }
};

/// Streams settled cells to the peer from any exec thread: one mutex
/// serializes the frame writes, the served-cell counter and the
/// injected-crash hook, so concurrently settling cells leave as whole
/// frames (in settle order, not slice order — the scheduler matches by
/// cell index). Serialization happens outside the lock; only the send
/// and the counters are held under it.
class CellWriter {
 public:
  CellWriter(Connection& conn, const ServiceOptions& options,
             std::size_t& cells_served)
      : conn_(conn), options_(options), cells_served_(cells_served) {}

  /// False once the peer is gone (every later emit is a cheap no-op, so
  /// a dead connection drains the pool instead of wedging it).
  bool emit(const CellResult& result) {
    std::ostringstream block;
    write_cell_result(block, result);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (peer_gone_) return false;
    if (!conn_.send(block.str())) {
      peer_gone_ = true;
      return false;
    }
    ++cells_served_;
    if (options_.crash_after_cells >= 0 &&
        cells_served_ >=
            static_cast<std::size_t>(options_.crash_after_cells)) {
      // Injected worker death: die the hard way, mid-sweep, with every
      // already-sent frame intact on the wire.
      log_warning("sched") << "sched service: injected crash after "
                           << cells_served_ << " cell(s)";
      std::abort();
    }
    return true;
  }

  [[nodiscard]] bool peer_gone() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return peer_gone_;
  }

 private:
  Connection& conn_;
  const ServiceOptions& options_;
  std::size_t& cells_served_;
  mutable std::mutex mutex_;
  bool peer_gone_ = false;
};

}  // namespace

std::size_t serve_connection(Connection& conn, const ServiceOptions& options) {
  std::size_t cells_served = 0;

  Connection::RecvResult hello;
  try {
    hello = conn.recv(options.handshake_timeout_seconds);
  } catch (const std::exception& e) {
    // A non-scheduler peer (port scanner, stray HTTP probe) sends
    // unframed bytes; that must drop the connection, not the daemon.
    return protocol_error(conn, cells_served,
                          std::string("unframed handshake: ") + e.what());
  }
  // Prefix match: a scheduler may append fields after the version token
  // (as this side does with `capacity`), and those must not look like a
  // version mismatch to an older worker.
  const bool hello_ok =
      hello.status == Connection::RecvStatus::Ok &&
      (hello.payload == kSchedHello ||
       starts_with(hello.payload, std::string(kSchedHello) + " "));
  if (!hello_ok)
    return protocol_error(
        conn, cells_served,
        hello.status == Connection::RecvStatus::Ok
            ? "handshake mismatch: got '" + hello.payload + "', want '" +
                  kSchedHello + "'"
            : "peer vanished before the handshake");
  std::size_t capacity = options.advertised_capacity;
  if (capacity == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    capacity = hardware > 0 ? hardware : 1;
  }
  if (!conn.send(std::string(kSchedHello) + " capacity " +
                 std::to_string(capacity)))
    return cells_served;

  // The internal exec pool: shard cells run `exec_threads` at a time
  // (advertised capacity by default), streaming frames as they settle.
  // Built lazily on the first shard wide enough to use it, so a
  // handshake-only probe never spawns threads.
  const std::size_t exec_threads =
      options.exec_threads > 0 ? options.exec_threads : capacity;
  std::unique_ptr<ThreadPool> pool;

  SpecCache cache;
  for (;;) {
    Connection::RecvResult request;
    try {
      request = conn.recv(options.idle_timeout_seconds);
    } catch (const std::exception& e) {
      return protocol_error(conn, cells_served,
                            std::string("corrupt frame: ") + e.what());
    }
    if (request.status != Connection::RecvStatus::Ok) return cells_served;
    if (request.payload == kSchedQuit) return cells_served;

    SweepShard shard;
    try {
      std::istringstream in(request.payload);
      shard = read_shard(in);
    } catch (const std::exception& e) {
      return protocol_error(conn, cells_served,
                            std::string("unreadable shard: ") + e.what());
    }

    obs::TraceSpan shard_span("sched", "serve_shard");
    shard_span.arg({"begin", std::uint64_t(shard.begin)});
    shard_span.arg({"end", std::uint64_t(shard.end)});
    static obs::Counter& shards = obs::MetricsRegistry::global().counter(
        "phonoc_sched_shards_served_total",
        "Shards executed by the worker-daemon service loop.");
    shards.inc();
    try {
      cache.adopt(shard, request.payload);
      if (shard.end > cache.cells.size())
        return protocol_error(
            conn, cells_served,
            "slice [" + std::to_string(shard.begin) + ", " +
                std::to_string(shard.end) + ") exceeds the grid size " +
                std::to_string(cache.cells.size()));
      cache.ensure_problems(shard.begin, shard.end);

      // run_sweep_cell_isolated: a throwing optimizer becomes a Failed
      // cell, same semantics as the fork/exec worker — on either path.
      CellWriter writer(conn, options, cells_served);
      if (exec_threads > 1 && shard.end - shard.begin > 1) {
        if (!pool) pool = std::make_unique<ThreadPool>(exec_threads);
        std::vector<std::future<void>> settled;
        settled.reserve(shard.end - shard.begin);
        for (std::size_t i = shard.begin; i < shard.end; ++i)
          settled.push_back(pool->submit([&, i] {
            if (writer.peer_gone()) return;  // drain cheaply after a death
            (void)writer.emit(run_sweep_cell_isolated(
                cache.spec, cache.cells[i], cache.problems,
                shard.evaluator));
          }));
        // Every future must be collected before anything can unwind the
        // stack the queued tasks point into; the first unexpected
        // exception is rethrown only after the shard has drained.
        std::exception_ptr first_failure;
        for (auto& cell : settled) {
          try {
            cell.get();
          } catch (...) {
            if (!first_failure) first_failure = std::current_exception();
          }
        }
        if (first_failure) std::rethrow_exception(first_failure);
      } else {
        for (std::size_t i = shard.begin; i < shard.end; ++i)
          if (!writer.emit(run_sweep_cell_isolated(
                  cache.spec, cache.cells[i], cache.problems,
                  shard.evaluator)))
            break;
      }
      if (writer.peer_gone()) return cells_served;
      if (!conn.send(std::string(kSchedDonePrefix) + " " +
                     std::to_string(shard.end - shard.begin)))
        return cells_served;
    } catch (const std::exception& e) {
      // Shard-level failures (e.g. problem construction) are protocol
      // answers, not worker deaths: the scheduler re-routes the shard.
      return protocol_error(conn, cells_served,
                            std::string("shard execution failed: ") +
                                e.what());
    }
  }
}

}  // namespace phonoc
