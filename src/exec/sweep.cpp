#include "exec/sweep.hpp"

#include <utility>

#include "topology/mesh.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workloads/benchmarks.hpp"

namespace phonoc {

SweepSpec& SweepSpec::add_benchmark(const std::string& name) {
  workloads.push_back({name, make_benchmark(name)});
  return *this;
}

SweepSpec& SweepSpec::add_all_benchmarks() {
  for (const auto& name : benchmark_names()) add_benchmark(name);
  return *this;
}

SweepSpec& SweepSpec::add_workload(std::string name, CommGraph cg) {
  workloads.push_back({std::move(name), std::move(cg)});
  return *this;
}

SweepSpec& SweepSpec::add_topology(TopologyKind kind, std::uint32_t side) {
  topologies.push_back({kind, side});
  return *this;
}

SweepSpec& SweepSpec::add_goal(OptimizationGoal goal) {
  goals.push_back(goal);
  return *this;
}

SweepSpec& SweepSpec::add_optimizer(const std::string& name) {
  optimizers.push_back(name);
  return *this;
}

SweepSpec& SweepSpec::add_optimizers(const std::vector<std::string>& names) {
  optimizers.insert(optimizers.end(), names.begin(), names.end());
  return *this;
}

SweepSpec& SweepSpec::add_budget(std::uint64_t max_evaluations,
                                 double max_seconds) {
  OptimizerBudget budget;
  budget.max_evaluations = max_evaluations;
  budget.max_seconds = max_seconds;
  budgets.push_back(budget);
  return *this;
}

SweepSpec& SweepSpec::add_seed(std::uint64_t seed) {
  seeds.push_back(seed);
  return *this;
}

SweepSpec& SweepSpec::add_seed_range(std::uint64_t first, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    seeds.push_back(first + static_cast<std::uint64_t>(i));
  return *this;
}

SweepSpec& SweepSpec::use_sampling(const SamplingSpec& sampling_spec) {
  task_kind = SweepTaskKind::Sample;
  sampling = sampling_spec;
  if (optimizers.empty()) optimizers.push_back("sample");
  if (budgets.empty()) add_budget(0);
  return *this;
}

std::size_t cell_count(const SweepSpec& spec) {
  return spec.workloads.size() * spec.topologies.size() * spec.goals.size() *
         spec.optimizers.size() * spec.budgets.size() * spec.seeds.size();
}

std::vector<SweepCell> expand(const SweepSpec& spec) {
  std::vector<SweepCell> cells;
  cells.reserve(cell_count(spec));
  std::size_t index = 0;
  for (std::size_t w = 0; w < spec.workloads.size(); ++w)
    for (std::size_t t = 0; t < spec.topologies.size(); ++t)
      for (std::size_t g = 0; g < spec.goals.size(); ++g)
        for (std::size_t o = 0; o < spec.optimizers.size(); ++o)
          for (std::size_t b = 0; b < spec.budgets.size(); ++b)
            for (std::size_t s = 0; s < spec.seeds.size(); ++s)
              cells.push_back({index++, w, t, g, o, b, s});
  return cells;
}

std::size_t grid_index(const SweepSpec& spec, std::size_t workload,
                       std::size_t topology, std::size_t goal,
                       std::size_t optimizer, std::size_t budget,
                       std::size_t seed) {
  require(workload < spec.workloads.size() &&
              topology < spec.topologies.size() && goal < spec.goals.size() &&
              optimizer < spec.optimizers.size() &&
              budget < spec.budgets.size() && seed < spec.seeds.size(),
          "grid_index: coordinate out of range");
  return ((((workload * spec.topologies.size() + topology) *
                spec.goals.size() +
            goal) *
               spec.optimizers.size() +
           optimizer) *
              spec.budgets.size() +
          budget) *
             spec.seeds.size() +
         seed;
}

std::uint32_t resolved_side(const SweepSpec& spec, std::size_t workload,
                            std::size_t topology) {
  const auto& topo = spec.topologies.at(topology);
  if (topo.side != 0) return topo.side;
  return square_side_for(spec.workloads.at(workload).cg.task_count());
}

std::shared_ptr<const NetworkModel> make_cell_network(const SweepSpec& spec,
                                                      std::size_t workload,
                                                      std::size_t topology) {
  return make_network(spec.topologies.at(topology).kind,
                      resolved_side(spec, workload, topology), spec.router,
                      spec.tile_pitch_mm, spec.parameters,
                      spec.model_options);
}

MappingProblem make_problem(const SweepSpec& spec, const SweepCell& cell,
                            std::shared_ptr<const NetworkModel> network) {
  if (!network)
    network = make_cell_network(spec, cell.workload, cell.topology);
  return MappingProblem(spec.workloads.at(cell.workload).cg,
                        std::move(network),
                        make_objective(spec.goals.at(cell.goal)));
}

std::string budget_label(const OptimizerBudget& budget) {
  if (budget.max_seconds > 0.0 && budget.max_evaluations == 0)
    return format_fixed(budget.max_seconds, 2) + "s";
  auto label = std::to_string(budget.max_evaluations) + "ev";
  if (budget.max_seconds > 0.0)
    label += "/" + format_fixed(budget.max_seconds, 2) + "s";
  return label;
}

std::string topology_label(const SweepSpec& spec, std::size_t workload,
                           std::size_t topology) {
  const auto side = resolved_side(spec, workload, topology);
  return to_string(spec.topologies.at(topology).kind) + " " +
         std::to_string(side) + "x" + std::to_string(side);
}

std::string cell_label(const SweepSpec& spec, const SweepCell& cell) {
  return spec.workloads.at(cell.workload).name + " | " +
         topology_label(spec, cell.workload, cell.topology) + " | " +
         to_string(spec.goals.at(cell.goal)) + " | " +
         spec.optimizers.at(cell.optimizer) + " | " +
         budget_label(spec.budgets.at(cell.budget)) + " | seed " +
         std::to_string(spec.seeds.at(cell.seed));
}

}  // namespace phonoc
