#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with a FIFO task queue and futures-based
/// submission.
///
/// The pool is the execution backbone of the batch-exploration subsystem
/// (see batch_engine.hpp): workers pull tasks off a single queue, results
/// travel back through std::future, and destruction drains the queue
/// before joining (graceful shutdown — no submitted task is dropped).
/// Submission after shutdown() throws ExecError.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace phonoc {

class ThreadPool {
 public:
  /// Upper bound on `workers` (guards against size_t wrap-around from
  /// negative command-line values); exceeding it throws InvalidArgument.
  static constexpr std::size_t kMaxWorkers = 4096;

  /// Spawn `workers` threads; 0 picks default_worker_count().
  explicit ThreadPool(std::size_t workers = 0);

  /// Graceful shutdown: every task already submitted still runs.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const;

  /// Submit a nullary callable; the future carries its return value (or
  /// the exception it threw).
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<std::decay_t<F>>> submit(
      F&& task) {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    auto future = packaged->get_future();
    enqueue([packaged]() { (*packaged)(); });
    return future;
  }

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Discard tasks that have not started yet (their futures report
  /// std::future_error / broken_promise). In-flight tasks finish.
  /// Callers use this to abort a batch early when one task failed,
  /// instead of letting the destructor drain the whole queue.
  void cancel_pending();

  /// Stop accepting work and join the workers after the queue drains.
  /// Safe to call repeatedly on a live pool (the destructor calls it
  /// too); like every member, it must not race the destructor itself.
  void shutdown();

  /// Number of workers used when the constructor is given 0: the
  /// hardware concurrency, with a floor of 1.
  [[nodiscard]] static std::size_t default_worker_count() noexcept;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;  ///< tasks currently executing
  bool stopping_ = false;
};

}  // namespace phonoc
