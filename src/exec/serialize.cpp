#include "exec/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "io/cg_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

constexpr const char* kShardMagic = "phonoc-shard v1";
constexpr const char* kCellMagic = "phonoc-cell v1";

// --- writing helpers -------------------------------------------------------

void write_doubles(std::ostream& out, std::initializer_list<double> values) {
  for (const double v : values) out << ' ' << format_double(v);
}

std::string fidelity_name(ModelFidelity f) {
  return f == ModelFidelity::Full ? "full" : "simplified";
}

std::string conflict_name(ConflictPolicy p) {
  return p == ConflictPolicy::Ignore ? "ignore" : "exclude";
}

// --- reading helpers -------------------------------------------------------

/// Line reader with position tracking; '#' comments and blank lines are
/// skipped so shard files can be annotated by hand.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next meaningful line; nullopt at EOF. Blank lines and whole-line
  /// comments are always skipped. By default everything after '#' is
  /// stripped; `keep_inline_comment` returns the line verbatim instead —
  /// required for free-text payloads (`failed` diagnostics, `workload`
  /// names) that may legitimately contain '#'.
  std::optional<std::string> next(bool keep_inline_comment = false) {
    if (pending_) {
      auto line = std::move(*pending_);
      pending_.reset();
      return line;
    }
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      std::string stripped = line;
      const auto hash = stripped.find('#');
      if (hash != std::string::npos) stripped.erase(hash);
      if (trim(stripped).empty()) continue;  // blank or comment-only
      return keep_inline_comment ? line : stripped;
    }
    return std::nullopt;
  }

  /// Next line, required to exist.
  std::string require_line(const std::string& context,
                           bool keep_inline_comment = false) {
    auto line = next(keep_inline_comment);
    if (!line)
      throw ParseError("unexpected end of stream while reading " + context,
                       line_no_);
    return *line;
  }

  /// Next line split on whitespace, with the first field required to be
  /// `keyword`.
  std::vector<std::string> expect(const std::string& keyword) {
    const auto fields = split_ws(require_line(keyword));
    if (fields.empty() || fields[0] != keyword)
      throw ParseError("expected '" + keyword + "' directive", line_no_);
    return fields;
  }

  /// Give back an already-consumed (stripped) line; the next next()
  /// returns it again. One level deep — enough to peek at an optional
  /// directive and step back when it is something else.
  void push_back(std::string line) { pending_ = std::move(line); }

  [[nodiscard]] int line() const noexcept { return line_no_; }

 private:
  std::istream& in_;
  std::optional<std::string> pending_;
  int line_no_ = 0;
};

std::size_t parse_size(const std::string& text, int line) {
  const long value = parse_long(text, line);
  if (value < 0) throw ParseError("expected a non-negative count", line);
  return static_cast<std::size_t>(value);
}

std::uint64_t parse_u64(const std::string& text, int line) {
  // parse_long is signed; seeds use the full 64-bit range, so parse
  // unsigned by hand.
  std::uint64_t value = 0;
  const auto trimmed = trim(text);
  if (trimmed.empty())
    throw ParseError("expected an unsigned integer", line);
  for (const char c : trimmed) {
    if (c < '0' || c > '9')
      throw ParseError("expected an unsigned integer, got '" +
                           std::string(trimmed) + "'",
                       line);
    value = value * 10u + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

void check_arity(const std::vector<std::string>& fields, std::size_t want,
                 int line) {
  if (fields.size() != want)
    throw ParseError("directive '" + fields[0] + "' expects " +
                         std::to_string(want - 1) + " field(s)",
                     line);
}

ModelFidelity parse_fidelity(const std::string& name, int line) {
  if (name == "simplified") return ModelFidelity::Simplified;
  if (name == "full") return ModelFidelity::Full;
  throw ParseError("unknown model fidelity '" + name + "'", line);
}

ConflictPolicy parse_conflict(const std::string& name, int line) {
  if (name == "exclude") return ConflictPolicy::Exclude;
  if (name == "ignore") return ConflictPolicy::Ignore;
  throw ParseError("unknown conflict policy '" + name + "'", line);
}

OptimizationGoal parse_goal(const std::string& name, int line) {
  if (name == to_string(OptimizationGoal::InsertionLoss))
    return OptimizationGoal::InsertionLoss;
  if (name == to_string(OptimizationGoal::Snr)) return OptimizationGoal::Snr;
  throw ParseError("unknown optimization goal '" + name + "'", line);
}

TopologyKind parse_topology_kind(const std::string& name, int line) {
  if (name == to_string(TopologyKind::Mesh)) return TopologyKind::Mesh;
  if (name == to_string(TopologyKind::Torus)) return TopologyKind::Torus;
  throw ParseError("unknown topology kind '" + name + "'", line);
}

/// Rest of `line` after the leading keyword (workload names may contain
/// spaces; everything else on the line is the name).
std::string rest_after_keyword(const std::string& line,
                               const std::string& keyword) {
  const auto pos = line.find(keyword);
  return std::string(trim(line.substr(pos + keyword.size())));
}

}  // namespace

// --- spec ------------------------------------------------------------------

void write_spec(std::ostream& out, const SweepSpec& spec) {
  out << "router " << spec.router << '\n';
  out << "tile_pitch_mm " << format_double(spec.tile_pitch_mm) << '\n';
  const auto& p = spec.parameters;
  out << "parameters";
  write_doubles(out, {p.crossing_loss_db, p.propagation_loss_db_per_cm,
                      p.ppse_off_loss_db, p.ppse_on_loss_db,
                      p.cpse_off_loss_db, p.cpse_on_loss_db,
                      p.crossing_crosstalk_db, p.pse_off_crosstalk_db,
                      p.pse_on_crosstalk_db});
  out << '\n';
  out << "model " << fidelity_name(spec.model_options.fidelity) << ' '
      << conflict_name(spec.model_options.conflict_policy) << ' '
      << format_double(spec.model_options.snr_ceiling_db) << '\n';
  // Emitted only for Sample grids so Optimize shards stay byte-identical
  // to what pre-sampling readers expect (new readers accept both).
  if (spec.task_kind == SweepTaskKind::Sample) {
    out << "task_kind sample\n";
    const auto& s = spec.sampling;
    out << "sampling " << s.samples_per_cell;
    write_doubles(out, {s.snr_lo_db, s.snr_hi_db});
    out << ' ' << s.snr_bins;
    write_doubles(out, {s.loss_lo_db, s.loss_hi_db});
    out << ' ' << s.loss_bins << '\n';
  }

  out << "goals " << spec.goals.size();
  for (const auto goal : spec.goals) out << ' ' << to_string(goal);
  out << '\n';
  out << "optimizers " << spec.optimizers.size();
  for (const auto& name : spec.optimizers) out << ' ' << name;
  out << '\n';
  out << "budgets " << spec.budgets.size() << '\n';
  for (const auto& budget : spec.budgets)
    out << "budget " << budget.max_evaluations << ' '
        << format_double(budget.max_seconds) << '\n';
  out << "seeds " << spec.seeds.size();
  for (const auto seed : spec.seeds) out << ' ' << seed;
  out << '\n';
  out << "topologies " << spec.topologies.size() << '\n';
  for (const auto& topo : spec.topologies)
    out << "topology " << to_string(topo.kind) << ' ' << topo.side << '\n';
  out << "workloads " << spec.workloads.size() << '\n';
  for (const auto& workload : spec.workloads) {
    out << "workload " << workload.name << '\n';
    out << "cg_begin\n";
    write_cg(out, workload.cg);
    out << "cg_end\n";
  }
  out << "end_spec\n";
}

namespace {

SweepSpec read_spec_body(LineReader& reader) {
  SweepSpec spec;

  auto fields = reader.expect("router");
  check_arity(fields, 2, reader.line());
  spec.router = fields[1];

  fields = reader.expect("tile_pitch_mm");
  check_arity(fields, 2, reader.line());
  spec.tile_pitch_mm = parse_double(fields[1], reader.line());

  fields = reader.expect("parameters");
  check_arity(fields, 10, reader.line());
  auto& p = spec.parameters;
  double* slots[] = {&p.crossing_loss_db,     &p.propagation_loss_db_per_cm,
                     &p.ppse_off_loss_db,     &p.ppse_on_loss_db,
                     &p.cpse_off_loss_db,     &p.cpse_on_loss_db,
                     &p.crossing_crosstalk_db, &p.pse_off_crosstalk_db,
                     &p.pse_on_crosstalk_db};
  for (std::size_t i = 0; i < 9; ++i)
    *slots[i] = parse_double(fields[i + 1], reader.line());

  fields = reader.expect("model");
  check_arity(fields, 4, reader.line());
  spec.model_options.fidelity = parse_fidelity(fields[1], reader.line());
  spec.model_options.conflict_policy = parse_conflict(fields[2],
                                                      reader.line());
  spec.model_options.snr_ceiling_db = parse_double(fields[3], reader.line());

  // Optional task-kind block (absent in Optimize shards, so streams
  // written before the Sample kind existed still parse).
  {
    const auto line = reader.require_line("task_kind or goals");
    const auto peek = split_ws(line);
    if (!peek.empty() && peek[0] == "task_kind") {
      check_arity(peek, 2, reader.line());
      if (peek[1] == "sample")
        spec.task_kind = SweepTaskKind::Sample;
      else if (peek[1] == "optimize")
        spec.task_kind = SweepTaskKind::Optimize;
      else
        throw ParseError("unknown task kind '" + peek[1] + "'",
                         reader.line());
      if (spec.task_kind == SweepTaskKind::Sample) {
        fields = reader.expect("sampling");
        check_arity(fields, 8, reader.line());
        auto& s = spec.sampling;
        s.samples_per_cell = parse_u64(fields[1], reader.line());
        s.snr_lo_db = parse_double(fields[2], reader.line());
        s.snr_hi_db = parse_double(fields[3], reader.line());
        s.snr_bins = parse_size(fields[4], reader.line());
        s.loss_lo_db = parse_double(fields[5], reader.line());
        s.loss_hi_db = parse_double(fields[6], reader.line());
        s.loss_bins = parse_size(fields[7], reader.line());
      }
    } else {
      reader.push_back(line);
    }
  }

  fields = reader.expect("goals");
  if (fields.size() < 2)
    throw ParseError("goals directive expects a count", reader.line());
  check_arity(fields, 2 + parse_size(fields[1], reader.line()),
              reader.line());
  for (std::size_t i = 2; i < fields.size(); ++i)
    spec.goals.push_back(parse_goal(fields[i], reader.line()));

  fields = reader.expect("optimizers");
  if (fields.size() < 2)
    throw ParseError("optimizers directive expects a count", reader.line());
  check_arity(fields, 2 + parse_size(fields[1], reader.line()),
              reader.line());
  for (std::size_t i = 2; i < fields.size(); ++i)
    spec.optimizers.push_back(fields[i]);

  fields = reader.expect("budgets");
  check_arity(fields, 2, reader.line());
  const auto budget_count = parse_size(fields[1], reader.line());
  for (std::size_t i = 0; i < budget_count; ++i) {
    fields = reader.expect("budget");
    check_arity(fields, 3, reader.line());
    OptimizerBudget budget;
    budget.max_evaluations = parse_u64(fields[1], reader.line());
    budget.max_seconds = parse_double(fields[2], reader.line());
    spec.budgets.push_back(budget);
  }

  fields = reader.expect("seeds");
  if (fields.size() < 2)
    throw ParseError("seeds directive expects a count", reader.line());
  check_arity(fields, 2 + parse_size(fields[1], reader.line()),
              reader.line());
  for (std::size_t i = 2; i < fields.size(); ++i)
    spec.seeds.push_back(parse_u64(fields[i], reader.line()));

  fields = reader.expect("topologies");
  check_arity(fields, 2, reader.line());
  const auto topology_count = parse_size(fields[1], reader.line());
  for (std::size_t i = 0; i < topology_count; ++i) {
    fields = reader.expect("topology");
    check_arity(fields, 3, reader.line());
    SweepTopology topo;
    topo.kind = parse_topology_kind(fields[1], reader.line());
    topo.side = static_cast<std::uint32_t>(parse_size(fields[2],
                                                      reader.line()));
    spec.topologies.push_back(topo);
  }

  fields = reader.expect("workloads");
  check_arity(fields, 2, reader.line());
  const auto workload_count = parse_size(fields[1], reader.line());
  for (std::size_t i = 0; i < workload_count; ++i) {
    const auto line = reader.require_line("workload", true);
    if (split_ws(line).empty() || split_ws(line)[0] != "workload")
      throw ParseError("expected 'workload' directive", reader.line());
    const auto name = rest_after_keyword(line, "workload");
    if (name.empty())
      throw ParseError("workload directive expects a name", reader.line());
    fields = reader.expect("cg_begin");
    check_arity(fields, 1, reader.line());
    // Collect the embedded CG verbatim up to the fence and hand it to
    // the cg_io parser (which owns the format).
    std::ostringstream cg_text;
    for (;;) {
      const auto cg_line = reader.require_line("embedded CG");
      if (split_ws(cg_line)[0] == "cg_end") break;
      cg_text << cg_line << '\n';
    }
    std::istringstream cg_in(cg_text.str());
    spec.add_workload(name, read_cg(cg_in));
  }

  fields = reader.expect("end_spec");
  check_arity(fields, 1, reader.line());
  return spec;
}

}  // namespace

SweepSpec read_spec(std::istream& in) {
  LineReader reader(in);
  if (trim(reader.require_line("shard magic")) != kShardMagic)
    throw ParseError(std::string("stream does not start with '") +
                     kShardMagic + "'");
  return read_spec_body(reader);
}

// --- shard -----------------------------------------------------------------

std::string shard_prefix(const SweepSpec& spec,
                         const EvaluatorOptions& evaluator) {
  std::ostringstream out;
  out << kShardMagic << '\n';
  write_spec(out, spec);
  out << "evaluator " << evaluator.cache_capacity << ' '
      << (evaluator.incremental ? 1 : 0) << '\n';
  return out.str();
}

std::string complete_shard(const std::string& prefix, std::size_t begin,
                           std::size_t end) {
  return prefix + "slice " + std::to_string(begin) + ' ' +
         std::to_string(end) + "\nend_shard\n";
}

void write_shard(std::ostream& out, const SweepShard& shard) {
  out << complete_shard(shard_prefix(shard.spec, shard.evaluator),
                        shard.begin, shard.end);
}

SweepShard read_shard(std::istream& in) {
  LineReader reader(in);
  if (trim(reader.require_line("shard magic")) != kShardMagic)
    throw ParseError(std::string("stream does not start with '") +
                     kShardMagic + "'");
  SweepShard shard;
  shard.spec = read_spec_body(reader);

  auto fields = reader.expect("evaluator");
  check_arity(fields, 3, reader.line());
  shard.evaluator.cache_capacity = parse_size(fields[1], reader.line());
  shard.evaluator.incremental = parse_size(fields[2], reader.line()) != 0;

  fields = reader.expect("slice");
  check_arity(fields, 3, reader.line());
  shard.begin = parse_size(fields[1], reader.line());
  shard.end = parse_size(fields[2], reader.line());
  if (shard.begin > shard.end)
    throw ParseError("slice begin exceeds end", reader.line());

  fields = reader.expect("end_shard");
  check_arity(fields, 1, reader.line());
  return shard;
}

// --- spec magic note -------------------------------------------------------
// write_spec intentionally has no magic of its own: it only ever appears
// inside a shard (or a caller-framed stream), and read_spec accepts the
// shard magic so a spec-only file can be produced by hand if needed.

// --- cell results ----------------------------------------------------------

void write_cell_result(std::ostream& out, const CellResult& result) {
  out << kCellMagic << '\n';
  const auto& c = result.cell;
  out << "cell " << c.index << ' ' << c.workload << ' ' << c.topology << ' '
      << c.goal << ' ' << c.optimizer << ' ' << c.budget << ' ' << c.seed
      << '\n';
  out << "seed " << result.seed << '\n';
  out << "seconds " << format_double(result.seconds) << '\n';
  if (result.status == CellStatus::Failed) {
    // The error message is free text: keep it on one line.
    std::string message = result.error;
    for (auto& ch : message)
      if (ch == '\n' || ch == '\r') ch = ' ';
    out << "failed " << message << '\n';
    out << "end_cell\n";
    return;
  }
  if (!result.distribution.metrics.empty()) {
    // Sample-kind payload: constant-size whatever the sample count.
    const auto& d = result.distribution;
    out << "distribution " << d.samples << ' ' << d.metrics.size() << '\n';
    for (const auto& m : d.metrics) {
      const auto& st = m.stats;
      out << "metric " << m.metric << ' ' << st.count();
      write_doubles(out, {st.mean(), st.sum_squared_deviations(), st.min(),
                          st.max()});
      out << '\n';
      const auto& h = m.histogram;
      out << "hist";
      write_doubles(out, {h.lo(), h.hi()});
      out << ' ' << h.bins() << ' ' << h.underflow() << ' ' << h.overflow()
          << '\n';
      out << "counts";
      for (std::size_t b = 0; b < h.bins(); ++b) out << ' ' << h.count(b);
      out << '\n';
    }
    out << "end_cell\n";
    return;
  }
  out << "algorithm " << result.run.algorithm << '\n';
  const auto& s = result.run.search;
  out << "mapping " << s.best.tile_count() << ' ' << s.best.task_count();
  for (const auto tile : s.best.assignment()) out << ' ' << tile;
  out << '\n';
  out << "search " << format_double(s.best_fitness) << ' ' << s.evaluations
      << ' ' << s.iterations << ' ' << format_double(s.seconds) << '\n';
  out << "trace " << s.trace.size() << '\n';
  for (const auto& event : s.trace)
    out << "t " << event.evaluation << ' ' << format_double(event.fitness)
        << '\n';
  const auto& e = result.run.best_evaluation;
  out << "evaluation " << format_double(e.worst_loss_db) << ' '
      << format_double(e.worst_snr_db) << '\n';
  out << "edges " << e.edges.size() << '\n';
  for (const auto& edge : e.edges) {
    out << "e " << edge.edge << ' ' << edge.src_tile << ' ' << edge.dst_tile;
    write_doubles(out, {edge.loss_db, edge.signal_gain, edge.noise_gain,
                        edge.snr_db});
    out << '\n';
  }
  out << "end_cell\n";
}

std::optional<CellResult> read_cell_result(std::istream& in) {
  LineReader reader(in);
  const auto magic = reader.next();
  if (!magic) return std::nullopt;  // clean end of stream
  if (trim(*magic) != kCellMagic)
    throw ParseError("expected '" + std::string(kCellMagic) + "', got '" +
                         std::string(trim(*magic)) + "'",
                     reader.line());

  CellResult result;
  auto fields = reader.expect("cell");
  check_arity(fields, 8, reader.line());
  result.cell.index = parse_size(fields[1], reader.line());
  result.cell.workload = parse_size(fields[2], reader.line());
  result.cell.topology = parse_size(fields[3], reader.line());
  result.cell.goal = parse_size(fields[4], reader.line());
  result.cell.optimizer = parse_size(fields[5], reader.line());
  result.cell.budget = parse_size(fields[6], reader.line());
  result.cell.seed = parse_size(fields[7], reader.line());

  fields = reader.expect("seed");
  check_arity(fields, 2, reader.line());
  result.seed = parse_u64(fields[1], reader.line());

  fields = reader.expect("seconds");
  check_arity(fields, 2, reader.line());
  result.seconds = parse_double(fields[1], reader.line());

  const auto status_line = reader.require_line("cell status", true);
  const auto status_fields = split_ws(status_line);
  if (status_fields[0] == "failed") {
    result.status = CellStatus::Failed;
    result.error = rest_after_keyword(status_line, "failed");
    fields = reader.expect("end_cell");
    check_arity(fields, 1, reader.line());
    return result;
  }
  if (status_fields[0] == "distribution") {
    check_arity(status_fields, 3, reader.line());
    auto& d = result.distribution;
    d.samples = parse_u64(status_fields[1], reader.line());
    const auto metric_count = parse_size(status_fields[2], reader.line());
    d.metrics.reserve(metric_count);
    for (std::size_t m = 0; m < metric_count; ++m) {
      fields = reader.expect("metric");
      check_arity(fields, 7, reader.line());
      MetricDistribution metric;
      metric.metric = fields[1];
      metric.stats = RunningStats::from_parts(
          parse_size(fields[2], reader.line()),
          parse_double(fields[3], reader.line()),
          parse_double(fields[4], reader.line()),
          parse_double(fields[5], reader.line()),
          parse_double(fields[6], reader.line()));
      fields = reader.expect("hist");
      check_arity(fields, 6, reader.line());
      const double lo = parse_double(fields[1], reader.line());
      const double hi = parse_double(fields[2], reader.line());
      const auto bins = parse_size(fields[3], reader.line());
      const auto underflow = parse_size(fields[4], reader.line());
      const auto overflow = parse_size(fields[5], reader.line());
      fields = reader.expect("counts");
      check_arity(fields, 1 + bins, reader.line());
      std::vector<std::size_t> counts;
      counts.reserve(bins);
      for (std::size_t b = 0; b < bins; ++b)
        counts.push_back(parse_size(fields[1 + b], reader.line()));
      metric.histogram = Histogram::from_parts(lo, hi, std::move(counts),
                                               underflow, overflow);
      d.metrics.push_back(std::move(metric));
    }
    fields = reader.expect("end_cell");
    check_arity(fields, 1, reader.line());
    return result;
  }
  if (status_fields[0] != "algorithm")
    throw ParseError("expected 'algorithm', 'distribution' or 'failed' "
                     "directive",
                     reader.line());
  check_arity(status_fields, 2, reader.line());
  result.run.algorithm = status_fields[1];

  fields = reader.expect("mapping");
  if (fields.size() < 3)
    throw ParseError("mapping directive expects tiles + tasks", reader.line());
  const auto tiles = parse_size(fields[1], reader.line());
  const auto tasks = parse_size(fields[2], reader.line());
  check_arity(fields, 3 + tasks, reader.line());
  std::vector<TileId> assignment;
  assignment.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i)
    assignment.push_back(
        static_cast<TileId>(parse_size(fields[3 + i], reader.line())));
  result.run.search.best = Mapping::from_assignment(std::move(assignment),
                                                    tiles);

  fields = reader.expect("search");
  check_arity(fields, 5, reader.line());
  result.run.search.best_fitness = parse_double(fields[1], reader.line());
  result.run.search.evaluations = parse_u64(fields[2], reader.line());
  result.run.search.iterations = parse_u64(fields[3], reader.line());
  result.run.search.seconds = parse_double(fields[4], reader.line());

  fields = reader.expect("trace");
  check_arity(fields, 2, reader.line());
  const auto trace_count = parse_size(fields[1], reader.line());
  result.run.search.trace.reserve(trace_count);
  for (std::size_t i = 0; i < trace_count; ++i) {
    fields = reader.expect("t");
    check_arity(fields, 3, reader.line());
    result.run.search.trace.push_back(
        {parse_u64(fields[1], reader.line()),
         parse_double(fields[2], reader.line())});
  }

  fields = reader.expect("evaluation");
  check_arity(fields, 3, reader.line());
  result.run.best_evaluation.worst_loss_db = parse_double(fields[1],
                                                          reader.line());
  result.run.best_evaluation.worst_snr_db = parse_double(fields[2],
                                                         reader.line());

  fields = reader.expect("edges");
  check_arity(fields, 2, reader.line());
  const auto edge_count = parse_size(fields[1], reader.line());
  result.run.best_evaluation.edges.reserve(edge_count);
  for (std::size_t i = 0; i < edge_count; ++i) {
    fields = reader.expect("e");
    check_arity(fields, 8, reader.line());
    EdgeMetrics edge;
    edge.edge = static_cast<EdgeId>(parse_size(fields[1], reader.line()));
    edge.src_tile = static_cast<TileId>(parse_size(fields[2], reader.line()));
    edge.dst_tile = static_cast<TileId>(parse_size(fields[3], reader.line()));
    edge.loss_db = parse_double(fields[4], reader.line());
    edge.signal_gain = parse_double(fields[5], reader.line());
    edge.noise_gain = parse_double(fields[6], reader.line());
    edge.snr_db = parse_double(fields[7], reader.line());
    result.run.best_evaluation.edges.push_back(edge);
  }

  fields = reader.expect("end_cell");
  check_arity(fields, 1, reader.line());
  return result;
}

// --- framing ---------------------------------------------------------------

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

constexpr const char* kFrameKeyword = "frame";

std::string checksum_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return hex;
}

struct FrameHeader {
  std::size_t length = 0;
  std::string checksum;
};

/// Upper bound on one frame's payload. Real payloads are a shard (spec
/// + workloads) or one cell block — far below this; anything larger is
/// a corrupt or hostile header, and rejecting it here keeps a garbage
/// length from driving unbounded buffering or a giant allocation.
constexpr std::size_t kMaxFramePayload = std::size_t{1} << 30;  // 1 GiB

FrameHeader parse_frame_header(std::string_view line) {
  const auto fields = split_ws(line);
  if (fields.size() != 3 || fields[0] != kFrameKeyword)
    throw ParseError("expected a 'frame <length> <checksum>' header, got '" +
                     std::string(trim(line)) + "'");
  FrameHeader header;
  header.length = parse_size(fields[1], -1);
  if (header.length > kMaxFramePayload)
    throw ParseError("frame length " + fields[1] +
                     " exceeds the 1 GiB payload bound: corrupt header");
  header.checksum = fields[2];
  return header;
}

void verify_frame(std::string_view payload, const FrameHeader& header) {
  if (checksum_hex(fnv1a64(payload)) != header.checksum)
    throw ParseError("frame checksum mismatch (" +
                     std::to_string(payload.size()) +
                     "-byte payload): the stream is corrupt");
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 32);
  frame += kFrameKeyword;
  frame += ' ';
  frame += std::to_string(payload.size());
  frame += ' ';
  frame += checksum_hex(fnv1a64(payload));
  frame += '\n';
  frame += payload;
  frame += '\n';
  return frame;
}

void FrameDecoder::feed(std::string_view bytes) { buffer_ += bytes; }

std::optional<std::string> FrameDecoder::next() {
  const auto newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    // An impossibly long "header" can only be garbage: fail early
    // instead of buffering an unbounded junk stream.
    if (buffer_.size() > 64)
      (void)parse_frame_header(buffer_);  // throws with a diagnostic
    return std::nullopt;
  }
  const auto header =
      parse_frame_header(std::string_view(buffer_).substr(0, newline));
  const auto body_begin = newline + 1;
  if (buffer_.size() < body_begin + header.length + 1) return std::nullopt;
  const auto payload =
      std::string_view(buffer_).substr(body_begin, header.length);
  if (buffer_[body_begin + header.length] != '\n')
    throw ParseError("frame payload is not newline-terminated: "
                     "length header and stream disagree");
  verify_frame(payload, header);
  std::string result(payload);
  buffer_.erase(0, body_begin + header.length + 1);
  return result;
}

void write_frame(std::ostream& out, std::string_view payload) {
  out << encode_frame(payload);
}

std::optional<std::string> read_frame(std::istream& in) {
  std::string header_line;
  if (!std::getline(in, header_line)) return std::nullopt;  // clean EOF
  const auto header = parse_frame_header(header_line);
  std::string payload(header.length, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(header.length));
  if (static_cast<std::size_t>(in.gcount()) != header.length)
    throw ParseError("frame truncated: expected " +
                     std::to_string(header.length) + " payload bytes, got " +
                     std::to_string(in.gcount()));
  if (in.get() != '\n')
    throw ParseError("frame payload is not newline-terminated: "
                     "length header and stream disagree");
  verify_frame(payload, header);
  return payload;
}

}  // namespace phonoc
