#pragma once
/// \file aggregate.hpp
/// \brief Per-cell statistics over sweep results and report rendering.
///
/// The seed dimension is collapsed: every (workload, topology, goal,
/// optimizer, budget) coordinate becomes one AggregateCell whose
/// RunningStats summarize the per-seed runs (best/mean fitness,
/// worst-case metrics, evaluation counts, wall time). Cells merge via
/// RunningStats::merge, so shards of a grid executed separately can be
/// combined into one report. Output goes through the existing IO layer:
/// TableWriter for terminal tables, CsvWriter for machine-readable rows.

#include <iosfwd>
#include <string>
#include <vector>

#include "exec/batch_engine.hpp"
#include "io/table_writer.hpp"
#include "util/stats.hpp"

namespace phonoc {

/// Statistics of one report cell (all seeds of one coordinate).
struct AggregateCell {
  // Coordinates into the originating spec (seed collapsed) and their
  // human-readable labels.
  std::size_t workload = 0;
  std::size_t topology = 0;
  std::size_t goal = 0;
  std::size_t optimizer = 0;
  std::size_t budget = 0;
  std::string workload_name;
  std::string topology_name;
  std::string goal_name;
  std::string optimizer_name;
  std::string budget_name;

  RunningStats best_fitness;   ///< OptimizerResult::best_fitness per seed
  RunningStats worst_loss_db;  ///< best mapping's worst-case loss per seed
  RunningStats worst_snr_db;   ///< best mapping's worst-case SNR per seed
  RunningStats evaluations;    ///< fitness evaluations consumed per seed
  RunningStats seconds;        ///< per-run wall time

  /// Fold one run into the cell (coordinates must match).
  void add(const CellResult& result);

  /// Merge another shard of the same coordinate (RunningStats::merge).
  void merge(const AggregateCell& other);
};

/// Aggregated view of a sweep, in grid order with the seed dimension
/// collapsed.
struct SweepReport {
  std::vector<AggregateCell> cells;
  std::size_t run_count = 0;      ///< successful runs folded in
  std::size_t failed_count = 0;   ///< Failed cells (excluded from stats)
  /// Summed per-cell seconds — CPU time, not wall time: on a parallel
  /// run it exceeds the wall clock by roughly the worker count.
  double cpu_seconds = 0.0;
  /// True elapsed wall time of the batch, measured by the caller around
  /// BatchEngine::run (0 when not supplied). Merging sums it, which is
  /// exact for shards executed back to back; concurrent shards (e.g. on
  /// different hosts) overstate it — take the max upstream instead.
  double wall_seconds = 0.0;

  /// Aggregate a batch of results against the spec that produced them.
  /// Failed cells are counted in `failed_count` and kept out of every
  /// statistic. `wall_seconds` is the caller-measured elapsed time of
  /// the batch (optional).
  [[nodiscard]] static SweepReport build(
      const SweepSpec& spec, const std::vector<CellResult>& results,
      double wall_seconds = 0.0);

  /// Merge a report over the same spec (e.g. another shard of seeds).
  void merge(const SweepReport& other);

  /// Merge a report whose shard ran *concurrently* with this one (e.g.
  /// on another host of a worker fleet): statistics and counters fold
  /// exactly like merge(), cpu_seconds still sums, but wall_seconds
  /// takes the max of the two clocks — concurrent wall time overlaps
  /// instead of adding. The remote scheduler merges per-host reports
  /// with this (see src/sched/).
  void merge_concurrent(const SweepReport& other);

  /// Render through TableWriter (one row per cell).
  [[nodiscard]] TableWriter to_table() const;
  [[nodiscard]] std::string to_ascii() const;

  /// Emit one CSV row per cell through CsvWriter (RFC-4180).
  void write_csv(std::ostream& out) const;
};

}  // namespace phonoc
