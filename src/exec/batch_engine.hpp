#pragma once
/// \file batch_engine.hpp
/// \brief Parallel executor for sweep grids.
///
/// Determinism contract: for a spec whose budgets are evaluation counts
/// (no wall-clock caps), the results are bit-identical to a sequential
/// run regardless of worker count and scheduling order. Each cell owns
/// its Evaluator and RNG (seeded from the spec's seed list alone), the
/// shared problems are immutable after construction, and every cell
/// writes only its own pre-allocated result slot. Only the timing fields
/// (`seconds`, OptimizerResult::seconds) vary between runs.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exec/sweep.hpp"

namespace phonoc {

struct BatchOptions {
  /// Worker threads; 0 = ThreadPool::default_worker_count(), 1 = run
  /// inline on the calling thread (no pool).
  std::size_t workers = 0;
  /// Per-cell Evaluator configuration (memo capacity, incremental move
  /// path). Each cell constructs its own Evaluator from these, so the
  /// determinism contract is unaffected: both knobs change only the
  /// physical evaluation cost, never logical evaluation counts or
  /// fitness values (see core/evaluator.hpp).
  EvaluatorOptions evaluator{};
};

/// Outcome of one grid cell.
struct CellResult {
  SweepCell cell;
  std::uint64_t seed = 0;  ///< the actual seed value (spec.seeds[cell.seed])
  RunResult run;
  double seconds = 0.0;    ///< wall time of this cell (informational)
};

class BatchEngine {
 public:
  explicit BatchEngine(BatchOptions options = {});

  /// Execute every cell of the expanded grid; results come back in grid
  /// order (results[i].cell.index == i).
  [[nodiscard]] std::vector<CellResult> run(const SweepSpec& spec) const;

  /// Parallel analogue of Engine::compare: the paper's fair-comparison
  /// protocol on one fixed problem, one run per optimizer name.
  [[nodiscard]] std::vector<RunResult> compare(
      const MappingProblem& problem,
      const std::vector<std::string>& optimizer_names,
      const OptimizerBudget& budget, std::uint64_t seed) const;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_; }

 private:
  std::size_t workers_;
  EvaluatorOptions evaluator_options_;
};

}  // namespace phonoc
