#pragma once
/// \file batch_engine.hpp
/// \brief Parallel executor for sweep grids.
///
/// Determinism contract: for a spec whose budgets are evaluation counts
/// (no wall-clock caps), the results are bit-identical to a sequential
/// run regardless of worker count, scheduling order and backend (the
/// in-process pool and the fork/exec worker processes run the same
/// per-cell code; the wire format round-trips doubles bit-exactly).
/// Each cell owns its Evaluator and RNG (seeded from the spec's seed
/// list alone), the shared problems are immutable after construction,
/// and every cell writes only its own pre-allocated result slot. Only
/// the timing fields (`seconds`, OptimizerResult::seconds) vary between
/// runs. The contract covers both task kinds: Sample cells draw their
/// random mappings from a per-cell Rng seeded by the cell's seed value,
/// so a sampling grid's merged distributions are bit-identical across
/// worker counts and backends too.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "exec/sweep.hpp"
#include "util/stats.hpp"

namespace phonoc {

/// How BatchEngine executes the expanded grid.
enum class BatchBackend {
  /// Worker threads in this process (fastest; a crashing optimizer
  /// takes the whole batch down).
  InProcess,
  /// One forked+exec'd `phonoc_worker` process per contiguous slice of
  /// the grid, speaking the exec/serialize wire protocol over pipes. A
  /// crashing or leaking worker fails only the cell it died on; the
  /// slice's remainder is respawned and the rest of the grid completes.
  ForkExec,
  /// The distributed sweep scheduler (src/sched/): shards are framed
  /// with the exec/serialize wire format and shipped to a fleet of
  /// `phonoc_workerd` daemons listed in BatchOptions::remote_hosts;
  /// dead hosts fail over, stragglers are retried on surviving hosts,
  /// and late duplicate answers are deduplicated per cell. Results are
  /// bit-identical to the in-process backend. Use sched::Scheduler
  /// directly for per-host reports and the full set of knobs.
  Remote,
};

struct BatchOptions {
  /// Worker threads (InProcess) or worker processes (ForkExec);
  /// 0 = ThreadPool::default_worker_count(). With the InProcess
  /// backend, 1 runs inline on the calling thread (no pool).
  std::size_t workers = 0;
  /// Per-cell Evaluator configuration (memo capacity, incremental move
  /// path). Each cell constructs its own Evaluator from these, so the
  /// determinism contract is unaffected: both knobs change only the
  /// physical evaluation cost, never logical evaluation counts or
  /// fitness values (see core/evaluator.hpp).
  EvaluatorOptions evaluator{};
  /// Execution backend (see BatchBackend).
  BatchBackend backend = BatchBackend::InProcess;
  /// ForkExec only: path of the worker executable. Empty falls back to
  /// the PHONOC_WORKER_BIN environment variable, then to "phonoc_worker"
  /// resolved through PATH.
  std::string worker_path;
  /// Remote only: worker endpoints, one per fleet host — "host:port"
  /// for a TCP `phonoc_workerd` daemon, or "loopback" for a worker
  /// served by an in-process thread over a socketpair (tests and
  /// single-host use). Must be non-empty for BatchBackend::Remote.
  std::vector<std::string> remote_hosts;
  /// Remote only: settled-cell journal path (see sched/journal.hpp).
  /// Accepted answers are logged, and an existing journal for the same
  /// spec is replayed so a killed scheduler resumes instead of
  /// restarting. Empty disables.
  std::string journal_path;
  /// Remote only: cells per dispatched shard; 0 keeps the scheduler
  /// default. Larger shards amortize worker-side problem construction,
  /// smaller ones spread load and shrink the retry blast radius.
  std::size_t cells_per_shard = 0;
  /// Cap the resolved worker count at the hardware thread count so at
  /// most one cell is in flight per hardware thread. With `max_seconds`
  /// budgets an oversubscribed pool distorts the paper's equal-time
  /// protocol (every cell's wall clock stretches by the oversubscription
  /// factor); pinning keeps time budgets comparable across runs and
  /// machines. No effect on evaluation-count budgets beyond the worker
  /// cap itself.
  bool pin_one_cell_per_thread = false;
};

/// Terminal state of one grid cell.
enum class CellStatus {
  Ok,      ///< the cell ran to completion; its kind's payload is valid
  Failed,  ///< the cell's worker died (or never ran); see `error`
};

/// Distribution of one metric over a cell's random-mapping samples:
/// the binned shape plus the streaming moments/extrema. Both halves
/// merge exactly (Histogram::merge / RunningStats::merge), so
/// split-sample sub-cells recombine into the single-pass result.
struct MetricDistribution {
  std::string metric;  ///< "snr_db" or "loss_db" (single-token names)
  Histogram histogram{0.0, 1.0, 1};
  RunningStats stats;
};

/// Payload of a SweepTaskKind::Sample cell: constant-size whatever the
/// per-cell sample count, so 100k-sample cells stream over the same
/// wire as optimizer runs. Merge order does not change the counts and
/// changes the RunningStats only through float association — merging
/// in a fixed (grid) order is what keeps distributed runs bit-identical
/// to in-process ones.
struct DistributionResult {
  std::uint64_t samples = 0;  ///< random mappings folded in
  std::vector<MetricDistribution> metrics;

  /// Fold another shard of the same experiment in. Metric lists must
  /// match by position and name (InvalidArgument otherwise); histogram
  /// binning mismatches throw from Histogram::merge.
  void merge(const DistributionResult& other);

  /// The named metric, or nullptr when absent.
  [[nodiscard]] const MetricDistribution* find(const std::string& metric)
      const noexcept;
};

/// Exact equality of two distributions — the bit-identity contract's
/// comparator: counts and accumulator doubles must match bitwise, with
/// NaN defined to equal NaN of the same sign (the wire format
/// canonicalizes NaN payloads, and one ±Inf sample legitimately drives
/// a Welford accumulator to Inf/NaN).
[[nodiscard]] bool identical_distributions(const DistributionResult& a,
                                           const DistributionResult& b);

/// Outcome of one grid cell. Which payload is valid follows the spec's
/// task kind: Optimize fills `run`, Sample fills `distribution` (both
/// only when status == CellStatus::Ok).
struct CellResult {
  SweepCell cell;
  std::uint64_t seed = 0;  ///< the actual seed value (spec.seeds[cell.seed])
  RunResult run;           ///< Optimize payload
  DistributionResult distribution;  ///< Sample payload
  double seconds = 0.0;    ///< wall time of this cell (informational)
  CellStatus status = CellStatus::Ok;
  std::string error;       ///< diagnostic for Failed cells
};

/// Merge the distributions of `count` consecutive grid cells starting
/// at `first` — the canonical sub-cell fold: always in grid (seed)
/// order, which is what makes merged results bit-identical across
/// worker counts and backends. All cells must be Ok (ExecError
/// otherwise: merging around a failed shard would silently change the
/// sample population).
[[nodiscard]] DistributionResult merge_cell_distributions(
    const std::vector<CellResult>& results, std::size_t first,
    std::size_t count);

/// Problems shared by cells that differ only in optimizer/budget/seed,
/// keyed by (workload, topology, goal). Built sequentially before a
/// grid runs (network construction is the expensive, allocation-heavy
/// part); immutable afterwards, so sharing across workers is safe. The
/// fork/exec worker uses the same builder so both backends construct
/// bit-identical problems.
using SweepProblemKey = std::tuple<std::size_t, std::size_t, std::size_t>;
[[nodiscard]] std::map<SweepProblemKey,
                       std::shared_ptr<const MappingProblem>>
build_sweep_problems(const SweepSpec& spec,
                     const std::vector<SweepCell>& cells);

/// Execute one cell (the shared per-cell code path of every backend),
/// dispatching on the spec's task kind: Optimize runs the cell's
/// optimizer, Sample evaluates `spec.sampling.samples_per_cell` random
/// mappings with an Rng seeded from the cell's seed value alone and
/// accumulates the Fig. 3 metric distributions. Either way the outcome
/// depends only on (spec, cell), never on worker count or backend.
[[nodiscard]] CellResult run_sweep_cell(const SweepSpec& spec,
                                        const SweepCell& cell,
                                        const MappingProblem& problem,
                                        const EvaluatorOptions& evaluator);

/// The Failed-cell constructor shared by every backend: coordinates
/// and seed survive so the failure stays attributable.
[[nodiscard]] CellResult make_failed_cell(const SweepSpec& spec,
                                          const SweepCell& cell,
                                          std::string error);

/// run_sweep_cell with per-cell exception isolation: a throwing
/// optimizer becomes a Failed cell instead of a lost slice. Shared by
/// the fork/exec worker body and the sched worker service so their
/// failure semantics cannot drift apart.
[[nodiscard]] CellResult run_sweep_cell_isolated(
    const SweepSpec& spec, const SweepCell& cell,
    const std::map<SweepProblemKey,
                   std::shared_ptr<const MappingProblem>>& problems,
    const EvaluatorOptions& evaluator);

class BatchEngine {
 public:
  explicit BatchEngine(BatchOptions options = {});

  /// Execute every cell of the expanded grid; results come back in grid
  /// order (results[i].cell.index == i).
  [[nodiscard]] std::vector<CellResult> run(const SweepSpec& spec) const;

  /// Parallel analogue of Engine::compare: the paper's fair-comparison
  /// protocol on one fixed problem, one run per optimizer name.
  [[nodiscard]] std::vector<RunResult> compare(
      const MappingProblem& problem,
      const std::vector<std::string>& optimizer_names,
      const OptimizerBudget& budget, std::uint64_t seed) const;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_; }
  [[nodiscard]] BatchBackend backend() const noexcept {
    return options_.backend;
  }

 private:
  std::size_t workers_;
  BatchOptions options_;
};

}  // namespace phonoc
