#include "exec/batch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

#include "core/evaluator.hpp"
#include "exec/fork_exec.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace phonoc {

std::map<SweepProblemKey, std::shared_ptr<const MappingProblem>>
build_sweep_problems(const SweepSpec& spec,
                     const std::vector<SweepCell>& cells) {
  std::map<SweepProblemKey, std::shared_ptr<const MappingProblem>> problems;
  // Networks are shared one level further: goals reuse the same network.
  // The cache key {resolved side, topology index} is exhaustive: a
  // network is built from the topology's kind (determined by the
  // topology index), the resolved side, and spec-global knobs (router,
  // tile_pitch_mm, parameters, model_options) — never from the workload
  // itself, whose only influence is the resolved side already in the
  // key. tests/test_exec.cpp (NetworkCacheIsWorkloadIndependent) pins
  // this down against per-cell fresh networks.
  std::map<std::pair<std::uint32_t, std::size_t>,
           std::shared_ptr<const NetworkModel>>
      networks;
  for (const auto& cell : cells) {
    const SweepProblemKey key{cell.workload, cell.topology, cell.goal};
    if (problems.count(key)) continue;
    const auto side = resolved_side(spec, cell.workload, cell.topology);
    auto& network = networks[{side, cell.topology}];
    if (!network)
      network = make_cell_network(spec, cell.workload, cell.topology);
    problems.emplace(key, std::make_shared<const MappingProblem>(
                              make_problem(spec, cell, network)));
  }
  return problems;
}

void DistributionResult::merge(const DistributionResult& other) {
  require(metrics.size() == other.metrics.size(),
          "DistributionResult::merge: metric count mismatch");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    require(metrics[i].metric == other.metrics[i].metric,
            "DistributionResult::merge: metric name mismatch ('" +
                metrics[i].metric + "' vs '" + other.metrics[i].metric +
                "')");
    metrics[i].histogram.merge(other.metrics[i].histogram);
    metrics[i].stats.merge(other.metrics[i].stats);
  }
  samples += other.samples;
}

const MetricDistribution* DistributionResult::find(
    const std::string& metric) const noexcept {
  for (const auto& m : metrics)
    if (m.metric == metric) return &m;
  return nullptr;
}

DistributionResult merge_cell_distributions(
    const std::vector<CellResult>& results, std::size_t first,
    std::size_t count) {
  require(count > 0 && first + count <= results.size(),
          "merge_cell_distributions: cell range out of bounds");
  for (std::size_t i = 0; i < count; ++i)
    if (results[first + i].status != CellStatus::Ok)
      throw ExecError("merge_cell_distributions: cell " +
                      std::to_string(results[first + i].cell.index) +
                      " failed (" + results[first + i].error +
                      "); a partial merge would misstate the distribution");
  DistributionResult merged = results[first].distribution;
  for (std::size_t i = 1; i < count; ++i)
    merged.merge(results[first + i].distribution);
  return merged;
}

namespace {

/// NaN-of-the-same-sign counts as equal; everything else is bitwise ==.
bool same_double(double a, double b) {
  if (std::isnan(a) || std::isnan(b))
    return std::isnan(a) && std::isnan(b) &&
           std::signbit(a) == std::signbit(b);
  return a == b;
}

}  // namespace

bool identical_distributions(const DistributionResult& a,
                             const DistributionResult& b) {
  if (a.samples != b.samples || a.metrics.size() != b.metrics.size())
    return false;
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    const auto& x = a.metrics[m];
    const auto& y = b.metrics[m];
    if (x.metric != y.metric) return false;
    const auto& hx = x.histogram;
    const auto& hy = y.histogram;
    if (hx.bins() != hy.bins() || !same_double(hx.lo(), hy.lo()) ||
        !same_double(hx.hi(), hy.hi()) || hx.underflow() != hy.underflow() ||
        hx.overflow() != hy.overflow() || hx.total() != hy.total())
      return false;
    for (std::size_t i = 0; i < hx.bins(); ++i)
      if (hx.count(i) != hy.count(i)) return false;
    if (x.stats.count() != y.stats.count() ||
        !same_double(x.stats.mean(), y.stats.mean()) ||
        !same_double(x.stats.sum_squared_deviations(),
                     y.stats.sum_squared_deviations()) ||
        !same_double(x.stats.min(), y.stats.min()) ||
        !same_double(x.stats.max(), y.stats.max()))
      return false;
  }
  return true;
}

namespace {

/// The Sample-kind cell body: samples_per_cell uniform random mappings
/// on the cell's problem, RNG seeded from the cell's seed value alone
/// (exactly the Optimize kind's seeding rule, so the determinism
/// contract carries over unchanged). Mappings are generated and scored
/// in fixed-size chunks through the batched SoA kernel
/// (`evaluate_raw_batch`): generation consumes RNG and scoring does
/// not, and each chunk's metrics are folded into the distributions in
/// sample order, so every histogram bin and running statistic is
/// bit-identical to the per-sample `evaluate_raw` loop this replaces —
/// the per-sample O(tiles) validation now happens once, inside
/// `Mapping::random`'s invariant.
CellResult run_sample_cell(const SweepSpec& spec, const SweepCell& cell,
                           const MappingProblem& problem,
                           const EvaluatorOptions& evaluator_options) {
  Timer timer;
  CellResult result;
  result.cell = cell;
  result.seed = spec.seeds[cell.seed];

  const auto& s = spec.sampling;
  result.distribution.metrics = {
      {"snr_db", Histogram(s.snr_lo_db, s.snr_hi_db, s.snr_bins), {}},
      {"loss_db", Histogram(s.loss_lo_db, s.loss_hi_db, s.loss_bins), {}}};
  auto& snr = result.distribution.metrics[0];
  auto& loss = result.distribution.metrics[1];

  const Evaluator evaluator(problem, evaluator_options);
  Rng rng(result.seed);
  constexpr std::uint64_t kChunk = 512;
  std::vector<Mapping> mappings;
  std::vector<BatchPoint> points;
  for (std::uint64_t start = 0; start < s.samples_per_cell; start += kChunk) {
    const auto n = static_cast<std::size_t>(
        std::min(kChunk, s.samples_per_cell - start));
    mappings.clear();
    mappings.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      mappings.push_back(
          Mapping::random(problem.task_count(), problem.tile_count(), rng));
    points.resize(n);
    evaluator.evaluate_raw_batch(mappings, points);
    for (std::size_t i = 0; i < n; ++i) {
      snr.histogram.add(points[i].worst_snr_db);
      snr.stats.add(points[i].worst_snr_db);
      loss.histogram.add(points[i].worst_loss_db);
      loss.stats.add(points[i].worst_loss_db);
    }
  }
  result.distribution.samples = s.samples_per_cell;
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace

CellResult run_sweep_cell(const SweepSpec& spec, const SweepCell& cell,
                          const MappingProblem& problem,
                          const EvaluatorOptions& evaluator) {
  obs::TraceSpan span("exec", "cell");
  span.arg({"index", std::uint64_t(cell.index)});
  span.arg({"kind", std::string_view(spec.task_kind == SweepTaskKind::Sample
                                         ? "sample"
                                         : "optimize")});
  if (spec.task_kind == SweepTaskKind::Sample)
    return run_sample_cell(spec, cell, problem, evaluator);
  Timer timer;
  CellResult result;
  result.cell = cell;
  result.seed = spec.seeds[cell.seed];
  result.run =
      Engine(problem, evaluator)
          .run(spec.optimizers[cell.optimizer], spec.budgets[cell.budget],
               result.seed);
  result.seconds = timer.elapsed_seconds();
  return result;
}

CellResult make_failed_cell(const SweepSpec& spec, const SweepCell& cell,
                            std::string error) {
  obs::trace_instant("exec", "cell_failed",
                     {"index", std::uint64_t(cell.index)});
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "phonoc_exec_cells_failed_total",
      "Sweep cells that failed and were materialized as failed results.");
  counter.inc();
  CellResult failed;
  failed.cell = cell;
  failed.seed = spec.seeds[cell.seed];
  failed.status = CellStatus::Failed;
  failed.error = std::move(error);
  return failed;
}

CellResult run_sweep_cell_isolated(
    const SweepSpec& spec, const SweepCell& cell,
    const std::map<SweepProblemKey,
                   std::shared_ptr<const MappingProblem>>& problems,
    const EvaluatorOptions& evaluator) {
  try {
    const auto& problem =
        *problems.at(SweepProblemKey{cell.workload, cell.topology, cell.goal});
    return run_sweep_cell(spec, cell, problem, evaluator);
  } catch (const std::exception& e) {
    return make_failed_cell(spec, cell, e.what());
  }
}

BatchEngine::BatchEngine(BatchOptions options)
    : workers_(options.workers == 0 ? ThreadPool::default_worker_count()
                                    : options.workers),
      options_(std::move(options)) {
  require(workers_ <= ThreadPool::kMaxWorkers,
          "BatchEngine: worker count " + std::to_string(workers_) +
              " exceeds the sanity limit of " +
              std::to_string(ThreadPool::kMaxWorkers));
  // Wall-clock-fair mode: one in-flight cell per hardware thread, so
  // max_seconds budgets are not stretched by oversubscription.
  if (options_.pin_one_cell_per_thread)
    workers_ = std::min(workers_, ThreadPool::default_worker_count());
}

std::vector<CellResult> BatchEngine::run(const SweepSpec& spec) const {
  obs::TraceSpan span("exec", "batch_run");
  span.arg({"backend",
            std::string_view(options_.backend == BatchBackend::ForkExec
                                 ? "fork_exec"
                                 : options_.backend == BatchBackend::Remote
                                       ? "remote"
                                       : "in_process")});
  span.arg({"cells", std::uint64_t(cell_count(spec))});
  static obs::Counter& sweeps = obs::MetricsRegistry::global().counter(
      "phonoc_exec_sweeps_total", "Batch sweeps run, by backend.",
      {{"backend", "in_process"}});

  if (options_.backend == BatchBackend::ForkExec)
    return run_fork_exec(spec, options_, workers_);
  if (options_.backend == BatchBackend::Remote)
    return run_remote(spec, options_);
  sweeps.inc();

  const auto cells = expand(spec);
  const auto problems = build_sweep_problems(spec, cells);
  std::vector<CellResult> results(cells.size());
  log_info("exec") << "BatchEngine: " << cells.size() << " cells on "
                   << workers_ << " worker(s), " << problems.size()
                   << " shared problem(s)";

  const auto problem_of = [&](const SweepCell& cell) -> const MappingProblem& {
    return *problems.at(
        SweepProblemKey{cell.workload, cell.topology, cell.goal});
  };

  if (workers_ <= 1 || cells.size() <= 1) {
    for (const auto& cell : cells)
      results[cell.index] =
          run_sweep_cell(spec, cell, problem_of(cell), options_.evaluator);
    return results;
  }

  ThreadPool pool(std::min(workers_, cells.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(cells.size());
  for (const auto& cell : cells)
    futures.push_back(pool.submit([this, &spec, &results, &problem_of, cell] {
      // Each cell owns its Evaluator (and through it any incremental
      // kernel or memo) and RNG and writes only its slot: the outcome
      // cannot depend on scheduling.
      results[cell.index] =
          run_sweep_cell(spec, cell, problem_of(cell), options_.evaluator);
    }));
  // Abort path: the first real task failure cancels the queue (don't
  // let the pool's graceful-drain destructor run the possibly hours of
  // remaining cells first) and is rethrown once every in-flight future
  // has settled. cancel_pending() breaks the promises of the discarded
  // cells; those std::future_errors are a consequence of the abort, not
  // a cause, so they are swallowed — unless one somehow arrives first,
  // in which case it is translated into a descriptive ExecError instead
  // of escaping as a raw std::future_error.
  std::exception_ptr failure;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      futures[i].get();
    } catch (const std::future_error& e) {
      if (!failure) {
        failure = std::make_exception_ptr(ExecError(
            "BatchEngine: cell " + std::to_string(i) +
            " was discarded before it ran (broken promise: " + e.what() +
            ")"));
        pool.cancel_pending();
      }
    } catch (...) {
      if (!failure) {
        failure = std::current_exception();
        pool.cancel_pending();
      }
    }
  }
  if (failure) std::rethrow_exception(failure);
  return results;
}

std::vector<RunResult> BatchEngine::compare(
    const MappingProblem& problem,
    const std::vector<std::string>& optimizer_names,
    const OptimizerBudget& budget, std::uint64_t seed) const {
  const Engine engine(problem, options_.evaluator);
  return engine.compare(optimizer_names, budget, seed, workers_);
}

}  // namespace phonoc
