#include "exec/batch_engine.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "exec/thread_pool.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace phonoc {
namespace {

/// Problems shared by cells that differ only in optimizer/budget/seed.
/// Built sequentially before the grid runs (network construction is the
/// expensive, allocation-heavy part); immutable afterwards, so sharing
/// across workers is safe.
using ProblemKey = std::tuple<std::size_t, std::size_t, std::size_t>;

std::map<ProblemKey, std::shared_ptr<const MappingProblem>> build_problems(
    const SweepSpec& spec, const std::vector<SweepCell>& cells) {
  std::map<ProblemKey, std::shared_ptr<const MappingProblem>> problems;
  // Networks are shared one level further: goals reuse the same network.
  std::map<std::pair<std::uint32_t, std::size_t>,
           std::shared_ptr<const NetworkModel>>
      networks;
  for (const auto& cell : cells) {
    const ProblemKey key{cell.workload, cell.topology, cell.goal};
    if (problems.count(key)) continue;
    const auto side = resolved_side(spec, cell.workload, cell.topology);
    auto& network = networks[{side, cell.topology}];
    if (!network)
      network = make_cell_network(spec, cell.workload, cell.topology);
    problems.emplace(key, std::make_shared<const MappingProblem>(
                              make_problem(spec, cell, network)));
  }
  return problems;
}

CellResult run_cell(const SweepSpec& spec, const SweepCell& cell,
                    const MappingProblem& problem,
                    const EvaluatorOptions& evaluator_options) {
  Timer timer;
  CellResult result;
  result.cell = cell;
  result.seed = spec.seeds[cell.seed];
  result.run =
      Engine(problem, evaluator_options)
          .run(spec.optimizers[cell.optimizer], spec.budgets[cell.budget],
               result.seed);
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace

BatchEngine::BatchEngine(BatchOptions options)
    : workers_(options.workers == 0 ? ThreadPool::default_worker_count()
                                    : options.workers),
      evaluator_options_(options.evaluator) {
  require(workers_ <= ThreadPool::kMaxWorkers,
          "BatchEngine: worker count " + std::to_string(workers_) +
              " exceeds the sanity limit of " +
              std::to_string(ThreadPool::kMaxWorkers));
}

std::vector<CellResult> BatchEngine::run(const SweepSpec& spec) const {
  const auto cells = expand(spec);
  const auto problems = build_problems(spec, cells);
  std::vector<CellResult> results(cells.size());
  log_info() << "BatchEngine: " << cells.size() << " cells on " << workers_
             << " worker(s), " << problems.size() << " shared problem(s)";

  const auto problem_of = [&](const SweepCell& cell) -> const MappingProblem& {
    return *problems.at(ProblemKey{cell.workload, cell.topology, cell.goal});
  };

  if (workers_ <= 1 || cells.size() <= 1) {
    for (const auto& cell : cells)
      results[cell.index] =
          run_cell(spec, cell, problem_of(cell), evaluator_options_);
    return results;
  }

  ThreadPool pool(std::min(workers_, cells.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(cells.size());
  for (const auto& cell : cells)
    futures.push_back(pool.submit([this, &spec, &results, &problem_of, cell] {
      // Each cell owns its Evaluator (and through it any incremental
      // kernel or memo) and RNG and writes only its slot: the outcome
      // cannot depend on scheduling.
      results[cell.index] =
          run_cell(spec, cell, problem_of(cell), evaluator_options_);
    }));
  try {
    for (auto& future : futures) future.get();  // re-throws task exceptions
  } catch (...) {
    // Abort the batch: don't let the pool's graceful-drain destructor
    // run the (possibly hours of) remaining cells first.
    pool.cancel_pending();
    throw;
  }
  return results;
}

std::vector<RunResult> BatchEngine::compare(
    const MappingProblem& problem,
    const std::vector<std::string>& optimizer_names,
    const OptimizerBudget& budget, std::uint64_t seed) const {
  const Engine engine(problem, evaluator_options_);
  return engine.compare(optimizer_names, budget, seed, workers_);
}

}  // namespace phonoc
