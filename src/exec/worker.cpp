#include "exec/worker.hpp"

#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>

#include "exec/serialize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

/// Grid index the crash-injection hook targets, or -1.
long crash_index_from_env() {
  const char* text = std::getenv("PHONOC_WORKER_CRASH_INDEX");
  if (!text || !*text) return -1;
  try {
    return parse_long(text);
  } catch (const ParseError&) {
    return -1;
  }
}

}  // namespace

int worker_main(std::istream& in, std::ostream& out) {
  try {
    const SweepShard shard = read_shard(in);
    const auto cells = expand(shard.spec);
    if (shard.end > cells.size()) {
      std::cerr << "phonoc_worker: slice [" << shard.begin << ", "
                << shard.end << ") exceeds the grid size " << cells.size()
                << '\n';
      return 2;
    }

    // Same problem construction and per-cell execution as the
    // in-process backend — this is what keeps the backends
    // bit-identical. Only the slice's cells are passed, so the worker
    // builds only the networks it needs.
    const std::vector<SweepCell> slice(cells.begin() + shard.begin,
                                       cells.begin() + shard.end);
    const auto problems = build_sweep_problems(shard.spec, slice);
    const long crash_index = crash_index_from_env();

    for (const auto& cell : slice) {
      if (crash_index >= 0 &&
          cell.index == static_cast<std::size_t>(crash_index)) {
        // Crash injection: die the hard way, mid-slice, results already
        // emitted staying valid (out was flushed after each block).
        std::cerr << "phonoc_worker: injected crash at cell " << cell.index
                  << '\n';
        std::abort();
      }
      CellResult result;
      try {
        const auto& problem = *problems.at(
            SweepProblemKey{cell.workload, cell.topology, cell.goal});
        result = run_sweep_cell(shard.spec, cell, problem, shard.evaluator);
      } catch (const std::exception& e) {
        // Isolate the failing cell instead of losing the slice.
        result = CellResult{};
        result.cell = cell;
        result.seed = shard.spec.seeds[cell.seed];
        result.status = CellStatus::Failed;
        result.error = e.what();
      }
      write_cell_result(out, result);
      out.flush();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "phonoc_worker: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace phonoc
