#include "exec/worker.hpp"

#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>

#include "exec/serialize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

/// Grid index the crash-injection hook targets, or -1.
long crash_index_from_env() {
  const char* text = std::getenv("PHONOC_WORKER_CRASH_INDEX");
  if (!text || !*text) return -1;
  try {
    return parse_long(text);
  } catch (const ParseError&) {
    return -1;
  }
}

}  // namespace

int worker_main(std::istream& in, std::ostream& out) {
  try {
    const SweepShard shard = read_shard(in);
    const auto cells = expand(shard.spec);
    if (shard.end > cells.size()) {
      std::cerr << "phonoc_worker: slice [" << shard.begin << ", "
                << shard.end << ") exceeds the grid size " << cells.size()
                << '\n';
      return 2;
    }

    // Same problem construction and per-cell execution as the
    // in-process backend — this is what keeps the backends
    // bit-identical. Only the slice's cells are passed, so the worker
    // builds only the networks it needs.
    const std::vector<SweepCell> slice(cells.begin() + shard.begin,
                                       cells.begin() + shard.end);
    const auto problems = build_sweep_problems(shard.spec, slice);
    const long crash_index = crash_index_from_env();

    for (const auto& cell : slice) {
      if (crash_index >= 0 &&
          cell.index == static_cast<std::size_t>(crash_index)) {
        // Crash injection: die the hard way, mid-slice, results already
        // emitted staying valid (out was flushed after each block).
        std::cerr << "phonoc_worker: injected crash at cell " << cell.index
                  << '\n';
        std::abort();
      }
      // run_sweep_cell_isolated turns a throwing optimizer into a
      // Failed cell instead of losing the slice.
      write_cell_result(out, run_sweep_cell_isolated(shard.spec, cell,
                                                     problems,
                                                     shard.evaluator));
      out.flush();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "phonoc_worker: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace phonoc
