#pragma once
/// \file worker.hpp
/// \brief The `phonoc_worker` process body.
///
/// A worker reads one serialized SweepShard (see exec/serialize.hpp)
/// from `in`, executes the shard's cell slice in grid order with the
/// same `build_sweep_problems` / `run_sweep_cell` code path the
/// in-process backend uses, and streams one self-delimited cell-result
/// block to `out` per finished cell (flushed immediately, so a later
/// crash loses only the unfinished cells). A cell whose optimizer
/// throws is reported as a Failed cell block — crash isolation starts
/// inside the worker — while hard crashes (abort/segfault) surface to
/// the parent as a dead process.
///
/// Test hook: when the PHONOC_WORKER_CRASH_INDEX environment variable
/// is set, the worker calls std::abort() instead of executing the cell
/// with that grid index. The fork/exec backend's recovery path (mark
/// the crashed cell failed, respawn for the remainder) is exercised in
/// tests and in CI's crash-injection smoke job through this hook.

#include <iosfwd>

namespace phonoc {

/// Run the worker protocol; returns a process exit code (0 = the whole
/// slice was processed and emitted). Errors of the protocol layer
/// itself (bad shard, I/O failure) are reported on stderr.
int worker_main(std::istream& in, std::ostream& out);

}  // namespace phonoc
