#include "exec/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace phonoc {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_worker_count();
  // Catches size_t wrap-around from negative CLI values before the OS
  // refuses to spawn the threads.
  require(workers <= kMaxWorkers,
          "ThreadPool: worker count " + std::to_string(workers) +
              " exceeds the sanity limit of " + std::to_string(kMaxWorkers));
  workers_.reserve(workers);
  try {
    for (std::size_t i = 0; i < workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // Thread spawn failed partway: join the ones already running so
    // their std::thread objects are not destroyed joinable.
    shutdown();
    throw;
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
      throw ExecError("ThreadPool::enqueue: task submitted after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::cancel_pending() {
  std::deque<std::function<void()>> discarded;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    discarded.swap(queue_);
    if (active_ == 0) idle_cv_.notify_all();
  }
  // Dropped outside the lock: destroying the packaged_tasks breaks
  // their promises, which may run arbitrary future-side code.
}

void ThreadPool::shutdown() {
  // Claim the worker threads under the lock so repeated shutdown calls
  // on a live pool each join a disjoint set — later calls swap an
  // empty vector and return. (This does NOT license racing the
  // destructor: a member call concurrent with destruction is a
  // caller lifetime bug, as for any object.)
  std::vector<std::thread> claimed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    claimed.swap(workers_);
  }
  work_cv_.notify_all();
  for (auto& worker : claimed)
    if (worker.joinable()) worker.join();
}

std::size_t ThreadPool::default_worker_count() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful shutdown: drain the queue before exiting.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // packaged_task captures any exception into the future
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace phonoc
