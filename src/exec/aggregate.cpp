#include "exec/aggregate.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "io/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

/// The collapsed-coordinate identity (everything but the seed). Keep
/// the three overloads in sync when adding report dimensions.
using CoordinateKey =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
               std::size_t>;

CoordinateKey coordinate_key(const AggregateCell& cell) {
  return {cell.workload, cell.topology, cell.goal, cell.optimizer,
          cell.budget};
}

CoordinateKey coordinate_key(const SweepCell& cell) {
  return {cell.workload, cell.topology, cell.goal, cell.optimizer,
          cell.budget};
}

}  // namespace

void AggregateCell::add(const CellResult& result) {
  require(coordinate_key(result.cell) == coordinate_key(*this),
          "AggregateCell::add: result belongs to another cell");
  best_fitness.add(result.run.search.best_fitness);
  worst_loss_db.add(result.run.best_evaluation.worst_loss_db);
  worst_snr_db.add(result.run.best_evaluation.worst_snr_db);
  evaluations.add(static_cast<double>(result.run.search.evaluations));
  seconds.add(result.seconds);
}

void AggregateCell::merge(const AggregateCell& other) {
  require(coordinate_key(other) == coordinate_key(*this),
          "AggregateCell::merge: cells have different coordinates");
  best_fitness.merge(other.best_fitness);
  worst_loss_db.merge(other.worst_loss_db);
  worst_snr_db.merge(other.worst_snr_db);
  evaluations.merge(other.evaluations);
  seconds.merge(other.seconds);
}

SweepReport SweepReport::build(const SweepSpec& spec,
                               const std::vector<CellResult>& results,
                               double wall_seconds) {
  SweepReport report;
  report.wall_seconds = wall_seconds;
  std::map<CoordinateKey, std::size_t> slots;  // coordinate -> cell index
  for (const auto& result : results) {
    const auto& cell = result.cell;
    const auto key = coordinate_key(cell);
    auto it = slots.find(key);
    if (it == slots.end()) {
      AggregateCell aggregate;
      aggregate.workload = cell.workload;
      aggregate.topology = cell.topology;
      aggregate.goal = cell.goal;
      aggregate.optimizer = cell.optimizer;
      aggregate.budget = cell.budget;
      aggregate.workload_name = spec.workloads.at(cell.workload).name;
      aggregate.topology_name =
          topology_label(spec, cell.workload, cell.topology);
      aggregate.goal_name = to_string(spec.goals.at(cell.goal));
      aggregate.optimizer_name = spec.optimizers.at(cell.optimizer);
      aggregate.budget_name = budget_label(spec.budgets.at(cell.budget));
      it = slots.emplace(key, report.cells.size()).first;
      report.cells.push_back(std::move(aggregate));
    }
    // The slot exists even when every seed of the coordinate failed, so
    // report rows stay aligned with the grid (such a row shows 0 runs);
    // failed cells carry no run and stay out of every statistic.
    if (result.status == CellStatus::Failed) {
      ++report.failed_count;
      continue;
    }
    report.cells[it->second].add(result);
    ++report.run_count;
    report.cpu_seconds += result.seconds;
  }
  return report;
}

void SweepReport::merge(const SweepReport& other) {
  std::map<CoordinateKey, std::size_t> slots;
  for (std::size_t i = 0; i < cells.size(); ++i)
    slots.emplace(coordinate_key(cells[i]), i);
  for (const auto& c : other.cells) {
    const auto it = slots.find(coordinate_key(c));
    if (it == slots.end())
      cells.push_back(c);
    else
      cells[it->second].merge(c);
  }
  run_count += other.run_count;
  failed_count += other.failed_count;
  cpu_seconds += other.cpu_seconds;
  wall_seconds += other.wall_seconds;
}

void SweepReport::merge_concurrent(const SweepReport& other) {
  const double wall = std::max(wall_seconds, other.wall_seconds);
  merge(other);
  wall_seconds = wall;
}

namespace {

const std::vector<std::string> kReportHeaders{
    "application", "topology",  "objective",    "optimizer", "budget",
    "runs",        "best loss", "mean loss",    "best SNR",  "mean SNR",
    "mean evals",  "mean s"};

std::vector<std::string> report_row(const AggregateCell& cell) {
  // "Best" follows each metric's own sense: loss toward 0 dB (max),
  // SNR as large as possible (max).
  return {cell.workload_name,
          cell.topology_name,
          cell.goal_name,
          cell.optimizer_name,
          cell.budget_name,
          std::to_string(cell.best_fitness.count()),
          format_fixed(cell.worst_loss_db.max(), 2),
          format_fixed(cell.worst_loss_db.mean(), 2),
          format_fixed(cell.worst_snr_db.max(), 2),
          format_fixed(cell.worst_snr_db.mean(), 2),
          format_fixed(cell.evaluations.mean(), 0),
          format_fixed(cell.seconds.mean(), 3)};
}

}  // namespace

TableWriter SweepReport::to_table() const {
  TableWriter table(kReportHeaders);
  for (const auto& cell : cells) table.add_row(report_row(cell));
  return table;
}

std::string SweepReport::to_ascii() const { return to_table().to_ascii(); }

void SweepReport::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.header({"application", "topology", "objective", "optimizer", "budget",
              "runs", "best_fitness_max", "best_fitness_mean",
              "best_fitness_stddev", "worst_loss_db_best",
              "worst_loss_db_mean", "worst_snr_db_best", "worst_snr_db_mean",
              "evaluations_mean", "seconds_mean"});
  for (const auto& cell : cells)
    csv.row({cell.workload_name, cell.topology_name, cell.goal_name,
             cell.optimizer_name, cell.budget_name,
             std::to_string(cell.best_fitness.count()),
             format_double(cell.best_fitness.max()),
             format_double(cell.best_fitness.mean()),
             format_double(cell.best_fitness.stddev()),
             format_double(cell.worst_loss_db.max()),
             format_double(cell.worst_loss_db.mean()),
             format_double(cell.worst_snr_db.max()),
             format_double(cell.worst_snr_db.mean()),
             format_double(cell.evaluations.mean()),
             format_double(cell.seconds.mean())});
}

}  // namespace phonoc
