#pragma once
/// \file sweep.hpp
/// \brief Declarative design-space sweep specification.
///
/// A SweepSpec lists values along six dimensions — CG workloads,
/// topologies, objectives, optimizers, budgets, seeds — and expands into
/// the cartesian task grid that BatchEngine executes. Expansion order is
/// fixed (row-major with the workload outermost and the seed innermost),
/// so a grid index is a stable, reproducible identity for a cell
/// regardless of how many workers later execute it.

#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/experiment.hpp"
#include "graph/comm_graph.hpp"
#include "mapping/objective.hpp"
#include "mapping/optimizer.hpp"
#include "photonics/parameters.hpp"

namespace phonoc {

/// One application along the workload dimension.
struct SweepWorkload {
  std::string name;
  CommGraph cg;
};

/// One point along the topology dimension.
struct SweepTopology {
  TopologyKind kind = TopologyKind::Mesh;
  /// Grid side; 0 = smallest square fitting the workload's task count
  /// (the paper's sizing rule; exact task counts give full occupancy).
  std::uint32_t side = 0;
};

/// What a grid cell *does*. The kind rides on the spec (every cell of
/// one sweep shares it) and dispatches run_sweep_cell:
///  - Optimize: run the cell's optimizer under its budget and return a
///    full RunResult (the Table-2 shape; the original pipeline).
///  - Sample:   evaluate SamplingSpec::samples_per_cell uniform random
///    mappings with an RNG seeded from the cell's seed value alone and
///    return a DistributionResult (mergeable Histogram + RunningStats
///    per metric, the paper's Fig. 3 shape). The seed dimension acts as
///    the sub-cell axis: K seeds split one app's sample budget into K
///    independently executable, deterministically mergeable cells whose
///    results are constant-size whatever samples_per_cell is.
enum class SweepTaskKind {
  Optimize,
  Sample,
};

/// Sampling knobs of SweepTaskKind::Sample cells. The two recorded
/// metrics are the paper's Fig. 3 pair: worst-case SNR and worst-case
/// power loss of each random mapping. Defaults match the Fig. 3
/// reproduction's histogram ranges.
struct SamplingSpec {
  /// Random mappings evaluated per grid cell (per seed).
  std::uint64_t samples_per_cell = 1000;
  double snr_lo_db = 0.0;    ///< SNR histogram range [lo, hi)
  double snr_hi_db = 45.0;
  std::size_t snr_bins = 30;
  double loss_lo_db = -4.5;  ///< power-loss histogram range [lo, hi)
  double loss_hi_db = 0.0;
  std::size_t loss_bins = 30;
};

/// Declarative sweep: the cartesian product of the six dimension lists.
/// An empty dimension makes the grid empty (cell_count() == 0).
struct SweepSpec {
  std::vector<SweepWorkload> workloads;
  std::vector<SweepTopology> topologies;
  std::vector<OptimizationGoal> goals;
  std::vector<std::string> optimizers;
  std::vector<OptimizerBudget> budgets;
  std::vector<std::uint64_t> seeds;

  /// Architecture knobs shared by every cell (not swept).
  std::string router = "crux";
  double tile_pitch_mm = 2.5;
  PhysicalParameters parameters = PhysicalParameters::paper_defaults();
  NetworkModelOptions model_options = {};

  /// What every cell of this grid does (see SweepTaskKind). Sample
  /// grids keep the full six-dimension row-major identity; the
  /// optimizer and budget dimensions are carried but unused, so declare
  /// them with one placeholder entry each (use_sampling() does).
  SweepTaskKind task_kind = SweepTaskKind::Optimize;
  /// Sampling knobs; meaningful only for SweepTaskKind::Sample.
  SamplingSpec sampling{};

  // Builder-style helpers so specs read declaratively at call sites.
  SweepSpec& add_benchmark(const std::string& name);
  SweepSpec& add_all_benchmarks();
  SweepSpec& add_workload(std::string name, CommGraph cg);
  SweepSpec& add_topology(TopologyKind kind, std::uint32_t side = 0);
  SweepSpec& add_goal(OptimizationGoal goal);
  SweepSpec& add_optimizer(const std::string& name);
  SweepSpec& add_optimizers(const std::vector<std::string>& names);
  SweepSpec& add_budget(std::uint64_t max_evaluations,
                        double max_seconds = 0.0);
  SweepSpec& add_seed(std::uint64_t seed);
  /// Seeds first, first+1, ..., first+count-1.
  SweepSpec& add_seed_range(std::uint64_t first, std::size_t count);
  /// Switch the grid to SweepTaskKind::Sample with these knobs. The
  /// unused optimizer/budget dimensions get one placeholder entry each
  /// (when still empty) so the grid stays non-degenerate.
  SweepSpec& use_sampling(const SamplingSpec& sampling);
};

/// Coordinates of one grid cell: indices into the spec's dimension lists
/// plus the cell's row-major position.
struct SweepCell {
  std::size_t index = 0;
  std::size_t workload = 0;
  std::size_t topology = 0;
  std::size_t goal = 0;
  std::size_t optimizer = 0;
  std::size_t budget = 0;
  std::size_t seed = 0;
};

/// Product of the dimension sizes (0 when any dimension is empty).
[[nodiscard]] std::size_t cell_count(const SweepSpec& spec);

/// Expand the full grid in deterministic row-major order: workload
/// outermost, then topology, goal, optimizer, budget, seed innermost.
[[nodiscard]] std::vector<SweepCell> expand(const SweepSpec& spec);

/// Row-major index of a coordinate tuple (inverse of expand()'s order).
[[nodiscard]] std::size_t grid_index(const SweepSpec& spec,
                                     std::size_t workload,
                                     std::size_t topology, std::size_t goal,
                                     std::size_t optimizer,
                                     std::size_t budget, std::size_t seed);

/// Resolved grid side for a (workload, topology) pair: the explicit side,
/// or square_side_for() of the workload's task count (paper sizing rule).
[[nodiscard]] std::uint32_t resolved_side(const SweepSpec& spec,
                                          std::size_t workload,
                                          std::size_t topology);

/// Build the network of a (workload, topology) coordinate.
[[nodiscard]] std::shared_ptr<const NetworkModel> make_cell_network(
    const SweepSpec& spec, std::size_t workload, std::size_t topology);

/// Build the mapping problem of one cell. Pass a network built by
/// make_cell_network() to share it across cells (BatchEngine does);
/// nullptr builds a fresh one.
[[nodiscard]] MappingProblem make_problem(
    const SweepSpec& spec, const SweepCell& cell,
    std::shared_ptr<const NetworkModel> network = nullptr);

/// Human-readable labels used by reports and CSV output.
[[nodiscard]] std::string budget_label(const OptimizerBudget& budget);
[[nodiscard]] std::string topology_label(const SweepSpec& spec,
                                         std::size_t workload,
                                         std::size_t topology);
[[nodiscard]] std::string cell_label(const SweepSpec& spec,
                                     const SweepCell& cell);

}  // namespace phonoc
