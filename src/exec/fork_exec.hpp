#pragma once
/// \file fork_exec.hpp
/// \brief Crash-isolated multi-process backend for BatchEngine.
///
/// The grid is split into `workers` contiguous slices of expand()
/// output; each slice is executed by a forked+exec'd `phonoc_worker`
/// process that receives a serialized SweepShard on stdin and streams
/// cell-result blocks back on stdout (exec/serialize.hpp wire format).
/// Results land in their pre-allocated grid slots, so the returned
/// vector is in grid order exactly like the in-process backend's.
///
/// Crash semantics: when a worker dies (signal, abort, nonzero exit)
/// the first cell it had not fully emitted is marked
/// CellStatus::Failed with a diagnostic, and a fresh worker is
/// respawned for the slice's remainder. Repeated crashes therefore
/// fail one cell per death and always make progress; the rest of the
/// grid is unaffected. A worker that cannot even exec (exit code 127
/// before producing any output) fails its whole remaining slice at
/// once instead of respawning per cell.
///
/// POSIX-only: on other platforms run_fork_exec throws ExecError.

#include <cstddef>
#include <string>
#include <vector>

#include "exec/batch_engine.hpp"

namespace phonoc {

/// Execute the grid with fork/exec workers (BatchEngine::run dispatches
/// here for BatchBackend::ForkExec). `workers` is the resolved process
/// count (>= 1).
[[nodiscard]] std::vector<CellResult> run_fork_exec(
    const SweepSpec& spec, const BatchOptions& options, std::size_t workers);

/// Resolve the worker binary for `options`: BatchOptions::worker_path
/// if set, else the PHONOC_WORKER_BIN environment variable, else
/// "phonoc_worker" (found through PATH by execvp).
[[nodiscard]] std::string resolve_worker_path(const BatchOptions& options);

/// Convenience for CLI tools: the path of a `phonoc_worker` binary
/// sitting next to the running executable (argv[0]'s directory), or
/// plain "phonoc_worker" when argv0 has no directory component.
[[nodiscard]] std::string worker_path_near(const std::string& argv0);

}  // namespace phonoc
