#pragma once
/// \file serialize.hpp
/// \brief Wire format for sweep shards and cell results.
///
/// A line-oriented, '#'-commentable text protocol that round-trips the
/// full `SweepSpec -> CellResult` contract across a process (or host)
/// boundary: the spec with its embedded CG workloads (reusing the
/// `io/cg_io` format between `cg_begin`/`cg_end` fences), physical
/// parameters, model options, a contiguous cell-index slice, and the
/// complete per-cell outcome (mapping, fitness, trace, per-edge
/// metrics). Every floating-point field is written with
/// `format_double` (max_digits10) and parsed with `from_chars`, so a
/// round trip is bit-exact — the fork/exec backend's results are
/// bit-identical to the in-process backend's, as `tests/test_exec.cpp`
/// asserts.
///
/// Versioning: streams start with `phonoc-shard v1` / `phonoc-cell v1`
/// magic; readers reject anything else, so protocol evolution is an
/// explicit version bump rather than a silent drift.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"

namespace phonoc {

/// A contiguous slice [begin, end) of one spec's expand() output, plus
/// the evaluator knobs the owning BatchEngine would have used. This is
/// the unit of work a worker process (or a remote host) receives.
struct SweepShard {
  SweepSpec spec;
  std::size_t begin = 0;  ///< first grid index of the slice
  std::size_t end = 0;    ///< one past the last grid index
  EvaluatorOptions evaluator{};
};

/// Serialize a spec (workloads embedded via io/cg_io). Workload and
/// optimizer/router names must be single-line; CG task names must be
/// whitespace-free (the cg_io format already requires this).
void write_spec(std::ostream& out, const SweepSpec& spec);
[[nodiscard]] SweepSpec read_spec(std::istream& in);

void write_shard(std::ostream& out, const SweepShard& shard);
[[nodiscard]] SweepShard read_shard(std::istream& in);

/// The slice-independent prefix of a serialized shard (magic, spec with
/// embedded workloads, evaluator options). A scheduler dispatching many
/// slices of one spec serializes this once and completes each shard
/// with complete_shard() — only the two slice lines differ per unit.
[[nodiscard]] std::string shard_prefix(const SweepSpec& spec,
                                       const EvaluatorOptions& evaluator);
[[nodiscard]] std::string complete_shard(const std::string& prefix,
                                         std::size_t begin, std::size_t end);

/// One cell outcome as a self-delimited block (`phonoc-cell v1` ...
/// `end_cell`). Failed cells carry only coordinates, seed and the error
/// message; Ok cells carry the task kind's payload — the full RunResult
/// (Optimize) or the `DistributionResult` histogram/stats block
/// (Sample), both round-tripping bit-exactly.
void write_cell_result(std::ostream& out, const CellResult& result);

/// Read the next cell block. Returns nullopt on clean end-of-stream
/// (EOF before a block starts); throws ParseError on a malformed or
/// truncated block (e.g. the producer died mid-write).
[[nodiscard]] std::optional<CellResult> read_cell_result(std::istream& in);

// --- framing ---------------------------------------------------------------
//
// When shard/cell payloads leave the parent/child pipe pair and travel
// over an arbitrary byte stream (TCP, a socketpair, a file), each
// payload is wrapped in a self-checking frame:
//
//     frame <payload-bytes> <fnv1a64-hex>\n
//     <payload bytes, verbatim>\n
//
// The length makes the stream self-delimiting (payloads may contain
// anything, including further framing keywords); the FNV-1a checksum
// turns truncation or corruption into an explicit ParseError instead of
// a silently misparsed shard. The remote scheduler (src/sched/) frames
// every message with these helpers.

/// FNV-1a 64-bit hash of `bytes` (the frame checksum).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// One framed message as a string (header + payload + trailing newline).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder for non-blocking byte sources: feed()
/// arbitrary chunks, next() yields complete payloads in order (nullopt
/// while the buffered bytes end mid-frame). Corrupt headers or checksum
/// mismatches throw ParseError — the stream is unusable from there on.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);
  [[nodiscard]] std::optional<std::string> next();
  /// True when buffered bytes form an incomplete frame (a truncation
  /// diagnostic for streams that ended mid-message).
  [[nodiscard]] bool has_partial() const noexcept { return !buffer_.empty(); }

 private:
  std::string buffer_;
};

/// Stream convenience wrappers over the same format. read_frame returns
/// nullopt on clean end-of-stream (EOF before a header starts) and
/// throws ParseError on a truncated or corrupt frame.
void write_frame(std::ostream& out, std::string_view payload);
[[nodiscard]] std::optional<std::string> read_frame(std::istream& in);

}  // namespace phonoc
