#include "exec/fork_exec.hpp"

#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "exec/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PHONOC_HAS_FORK_EXEC 1
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>
#else
#define PHONOC_HAS_FORK_EXEC 0
#endif

namespace phonoc {

std::string resolve_worker_path(const BatchOptions& options) {
  if (!options.worker_path.empty()) return options.worker_path;
  if (const char* env = std::getenv("PHONOC_WORKER_BIN"); env && *env)
    return env;
  return "phonoc_worker";
}

std::string worker_path_near(const std::string& argv0) {
  const auto slash = argv0.find_last_of('/');
  if (slash == std::string::npos) return "phonoc_worker";
  return argv0.substr(0, slash + 1) + "phonoc_worker";
}

#if PHONOC_HAS_FORK_EXEC

namespace {

/// Block SIGPIPE on the calling thread so a write to a dead worker's
/// pipe fails with EPIPE instead of killing the process. The pending
/// (blocked) signal is discarded when the slice thread exits.
void block_sigpipe() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: the child died early
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_all(int fd) {
  std::string data;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    data.append(buffer, static_cast<std::size_t>(n));
  }
  return data;
}

struct SpawnOutcome {
  std::size_t cells_received = 0;  ///< consecutive complete cells stored
  bool clean_exit = false;         ///< exit status 0
  bool exec_failed = false;        ///< exit 127 with no output at all
  std::string death;               ///< diagnostic when !clean_exit
};

/// Spawn one worker for grid slice [begin, end); feed it the shard and
/// harvest every complete cell block into `results`. Blocks that were
/// torn by a crash (or arrive out of order) are discarded.
SpawnOutcome spawn_slice(const std::string& worker_path,
                         const SweepSpec& spec,
                         const EvaluatorOptions& evaluator, std::size_t begin,
                         std::size_t end, std::vector<CellResult>& results) {
  obs::TraceSpan span("exec", "spawn_slice");
  span.arg({"begin", std::uint64_t(begin)});
  span.arg({"end", std::uint64_t(end)});
  static obs::Counter& spawns = obs::MetricsRegistry::global().counter(
      "phonoc_exec_worker_spawns_total", "Worker processes forked.");
  spawns.inc();
  int in_pipe[2];   // parent -> worker stdin
  int out_pipe[2];  // worker stdout -> parent
  if (::pipe(in_pipe) != 0)
    throw ExecError(std::string("ForkExec: pipe failed: ") +
                    std::strerror(errno));
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    throw ExecError(std::string("ForkExec: pipe failed: ") +
                    std::strerror(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
      ::close(fd);
    throw ExecError(std::string("ForkExec: fork failed: ") +
                    std::strerror(errno));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
      ::close(fd);
    char* const argv[] = {const_cast<char*>(worker_path.c_str()), nullptr};
    ::execvp(worker_path.c_str(), argv);
    _exit(127);  // the conventional "could not exec" status
  }

  // Parent.
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);

  // The worker reads its whole stdin before computing, so writing the
  // entire shard first and only then draining stdout cannot deadlock.
  SweepShard shard;
  shard.spec = spec;  // shared-ptr-free value copy; specs are small
  shard.begin = begin;
  shard.end = end;
  shard.evaluator = evaluator;
  std::ostringstream shard_text;
  write_shard(shard_text, shard);
  const bool fed = write_all(in_pipe[1], shard_text.str());
  ::close(in_pipe[1]);

  const std::string output = read_all(out_pipe[0]);
  ::close(out_pipe[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  SpawnOutcome outcome;
  std::istringstream blocks(output);
  try {
    for (;;) {
      auto result = read_cell_result(blocks);
      if (!result) break;
      // Workers emit their slice in grid order; anything else means the
      // stream is corrupt from here on.
      if (result->cell.index != begin + outcome.cells_received) break;
      results[result->cell.index] = std::move(*result);
      ++outcome.cells_received;
    }
  } catch (const ParseError&) {
    // Torn final block: the worker died mid-write. Everything stored so
    // far is complete and valid.
  }

  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    outcome.clean_exit = true;
  } else if (WIFSIGNALED(status)) {
    obs::trace_instant("exec", "worker_crash",
                       {"signal", std::int64_t(WTERMSIG(status))},
                       {"received", std::uint64_t(outcome.cells_received)});
    outcome.death = std::string("worker killed by signal ") +
                    std::to_string(WTERMSIG(status)) + " (" +
                    ::strsignal(WTERMSIG(status)) + ")";
  } else if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    outcome.exec_failed = code == 127 && output.empty();
    outcome.death = outcome.exec_failed
                        ? "worker binary '" + worker_path +
                              "' could not be executed"
                        : "worker exited with status " + std::to_string(code);
  } else {
    outcome.death = "worker ended in an unknown way";
  }
  if (!fed && outcome.death.empty())
    outcome.death = "worker closed its stdin before the shard was delivered";
  return outcome;
}

void mark_failed(std::vector<CellResult>& results, const SweepSpec& spec,
                 const std::vector<SweepCell>& cells, std::size_t index,
                 const std::string& message) {
  results[index] = make_failed_cell(spec, cells[index], message);
}

/// Drive one slice to completion: spawn, harvest, and on worker death
/// fail the first unemitted cell and respawn for the remainder.
void run_slice(const std::string& worker_path, const SweepSpec& spec,
               const EvaluatorOptions& evaluator,
               const std::vector<SweepCell>& cells, std::size_t begin,
               std::size_t end, std::vector<CellResult>& results) {
  block_sigpipe();
  std::size_t next = begin;
  while (next < end) {
    auto outcome =
        spawn_slice(worker_path, spec, evaluator, next, end, results);
    next += outcome.cells_received;
    if (next >= end && outcome.clean_exit) return;
    if (outcome.clean_exit)
      outcome.death = "worker exited before emitting its whole slice";
    if (outcome.exec_failed && outcome.cells_received == 0) {
      // Exec will not start working on a respawn either: fail the whole
      // remainder instead of burning one spawn per cell.
      for (; next < end; ++next)
        mark_failed(results, spec, cells, next, outcome.death);
      return;
    }
    obs::trace_instant("exec", "worker_respawn",
                       {"next", std::uint64_t(next + 1)},
                       {"end", std::uint64_t(end)});
    static obs::Counter& respawns = obs::MetricsRegistry::global().counter(
        "phonoc_exec_worker_respawns_total",
        "Worker processes respawned after a mid-slice death.");
    respawns.inc();
    log_info("exec") << "ForkExec: " << outcome.death << "; cell " << next
                     << " marked failed, respawning for ["
                     << next + 1 << ", " << end << ")";
    mark_failed(results, spec, cells, next, outcome.death);
    ++next;
  }
}

}  // namespace

std::vector<CellResult> run_fork_exec(const SweepSpec& spec,
                                      const BatchOptions& options,
                                      std::size_t workers) {
  static obs::Counter& sweeps = obs::MetricsRegistry::global().counter(
      "phonoc_exec_sweeps_total", "Batch sweeps run, by backend.",
      {{"backend", "fork_exec"}});
  sweeps.inc();
  const auto cells = expand(spec);
  std::vector<CellResult> results(cells.size());
  if (cells.empty()) return results;

  const auto worker_path = resolve_worker_path(options);
  // Pre-flight explicit paths so a typo fails fast instead of failing
  // every cell; bare names go through execvp's PATH search.
  if (worker_path.find('/') != std::string::npos &&
      ::access(worker_path.c_str(), X_OK) != 0)
    throw ExecError("ForkExec: worker binary '" + worker_path +
                    "' is not executable");

  const std::size_t n_workers = std::min(
      std::max<std::size_t>(workers, 1), cells.size());
  log_info("exec") << "BatchEngine[fork/exec]: " << cells.size()
                   << " cells on " << n_workers
                   << " worker process(es), worker binary '" << worker_path
                   << "'";

  // Contiguous, balanced slices in grid order: slice i gets the cells
  // [i*base + min(i, rem), ...) — the first `rem` slices are one longer.
  const std::size_t base = cells.size() / n_workers;
  const std::size_t rem = cells.size() % n_workers;

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(n_workers);
  threads.reserve(n_workers);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < n_workers; ++i) {
    const std::size_t size = base + (i < rem ? 1 : 0);
    const std::size_t end = begin + size;
    threads.emplace_back([&, i, begin, end] {
      try {
        run_slice(worker_path, spec, options.evaluator, cells, begin, end,
                  results);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    begin = end;
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);
  return results;
}

#else  // !PHONOC_HAS_FORK_EXEC

std::vector<CellResult> run_fork_exec(const SweepSpec&, const BatchOptions&,
                                      std::size_t) {
  throw ExecError(
      "BatchBackend::ForkExec requires a POSIX platform (fork/exec/pipes); "
      "use BatchBackend::InProcess here");
}

#endif

}  // namespace phonoc
