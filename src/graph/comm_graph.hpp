#pragma once
/// \file comm_graph.hpp
/// \brief Communication Graph (paper Definition 1): tasks and directed
/// communications between them, annotated with bandwidth demands.

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace phonoc {

/// Payload of a communication edge.
struct Communication {
  /// Average bandwidth demand in MB/s. The paper's IL/SNR objectives are
  /// structure-only; bandwidth feeds the weighted-objective extension.
  double bandwidth_mbps = 0.0;
};

/// A Communication Graph CG = G(C, E): vertices are application tasks,
/// edges the communications between them (Definition 1).
class CommGraph {
 public:
  CommGraph() = default;
  explicit CommGraph(std::string name) : name_(std::move(name)) {}

  /// Add a task; names must be unique and non-empty.
  NodeId add_task(const std::string& name);

  /// Add a communication; src/dst must exist, self-loops are rejected.
  /// Duplicate (src,dst) pairs are rejected (merge bandwidths upstream).
  EdgeId add_communication(NodeId src, NodeId dst, double bandwidth_mbps);

  /// Convenience overload resolving names (throws on unknown names).
  EdgeId add_communication(const std::string& src, const std::string& dst,
                           double bandwidth_mbps);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t task_count() const noexcept {
    return graph_.node_count();
  }
  [[nodiscard]] std::size_t communication_count() const noexcept {
    return graph_.edge_count();
  }

  [[nodiscard]] const std::string& task_name(NodeId id) const;
  /// kInvalidNode when absent.
  [[nodiscard]] NodeId find_task(const std::string& name) const noexcept;

  [[nodiscard]] const Digraph<Communication>& graph() const noexcept {
    return graph_;
  }

  /// All edges as (src, dst, bandwidth) triples in insertion order.
  struct EdgeView {
    NodeId src;
    NodeId dst;
    double bandwidth_mbps;
  };
  [[nodiscard]] std::vector<EdgeView> edges() const;

  /// Total bandwidth demand (sum over edges), MB/s.
  [[nodiscard]] double total_bandwidth() const noexcept;

  /// Highest in+out degree over all tasks.
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Validation used by the IO layer and the problem constructor: at
  /// least one task, no isolated-task requirement (isolated tasks are
  /// legal: they occupy a tile without communicating).
  void validate() const;

 private:
  std::string name_ = "unnamed";
  Digraph<Communication> graph_;
  std::vector<std::string> task_names_;
};

}  // namespace phonoc
