#pragma once
/// \file algorithms.hpp
/// \brief Graph algorithms over Digraph: reachability, components,
/// shortest hop distances, cycle detection, topological order.

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace phonoc {

/// Breadth-first hop distances from `source` following edge direction.
/// Unreachable nodes get kUnreachable.
inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

template <typename EdgeData>
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(
    const Digraph<EdgeData>& g, NodeId source) {
  require(source < g.node_count(), "bfs_distances: source out of range");
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (const auto n : frontier) {
      for (const auto e : g.out_edges(n)) {
        const auto m = g.edge(e).dst;
        if (dist[m] == kUnreachable) {
          dist[m] = dist[n] + 1;
          next.push_back(m);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

/// Weak connectivity: every node reachable from node 0 when edges are
/// traversed in both directions. Empty graphs count as connected.
template <typename EdgeData>
[[nodiscard]] bool is_weakly_connected(const Digraph<EdgeData>& g) {
  if (g.node_count() == 0) return true;
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const auto n = stack.back();
    stack.pop_back();
    const auto visit = [&](NodeId m) {
      if (!seen[m]) {
        seen[m] = true;
        ++visited;
        stack.push_back(m);
      }
    };
    for (const auto e : g.out_edges(n)) visit(g.edge(e).dst);
    for (const auto e : g.in_edges(n)) visit(g.edge(e).src);
  }
  return visited == g.node_count();
}

/// Kahn topological order; std::nullopt when the graph has a cycle.
template <typename EdgeData>
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(
    const Digraph<EdgeData>& g) {
  std::vector<std::uint32_t> indeg(g.node_count(), 0);
  for (NodeId n = 0; n < g.node_count(); ++n)
    indeg[n] = static_cast<std::uint32_t>(g.in_degree(n));
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < g.node_count(); ++n)
    if (indeg[n] == 0) ready.push_back(n);
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const auto n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (const auto e : g.out_edges(n)) {
      const auto m = g.edge(e).dst;
      if (--indeg[m] == 0) ready.push_back(m);
    }
  }
  if (order.size() != g.node_count()) return std::nullopt;
  return order;
}

/// True when the directed graph contains at least one cycle.
template <typename EdgeData>
[[nodiscard]] bool has_cycle(const Digraph<EdgeData>& g) {
  return !topological_order(g).has_value();
}

/// Longest shortest-path hop count over all reachable ordered pairs.
template <typename EdgeData>
[[nodiscard]] std::uint32_t diameter(const Digraph<EdgeData>& g) {
  std::uint32_t best = 0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const auto dist = bfs_distances(g, n);
    for (const auto d : dist)
      if (d != kUnreachable) best = std::max(best, d);
  }
  return best;
}

}  // namespace phonoc
