#include "graph/algorithms.hpp"

// Header-only templates; instantiate with a representative payload so the
// algorithms compile as part of the library build.
namespace phonoc {
namespace {
[[maybe_unused]] void instantiate() {
  Digraph<int> g(2);
  g.add_edge(0, 1, 7);
  (void)bfs_distances(g, 0);
  (void)is_weakly_connected(g);
  (void)topological_order(g);
  (void)has_cycle(g);
  (void)diameter(g);
}
}  // namespace
}  // namespace phonoc
