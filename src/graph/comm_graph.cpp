#include "graph/comm_graph.hpp"

#include <algorithm>

namespace phonoc {

NodeId CommGraph::add_task(const std::string& name) {
  require(!name.empty(), "CommGraph: task name must be non-empty");
  require(find_task(name) == kInvalidNode,
          "CommGraph: duplicate task name '" + name + "'");
  task_names_.push_back(name);
  return graph_.add_node();
}

EdgeId CommGraph::add_communication(NodeId src, NodeId dst,
                                    double bandwidth_mbps) {
  require(src < task_count() && dst < task_count(),
          "CommGraph: communication endpoint out of range");
  require(src != dst, "CommGraph: self-communication is not allowed");
  require(bandwidth_mbps >= 0.0, "CommGraph: bandwidth must be >= 0");
  require(!graph_.has_edge(src, dst),
          "CommGraph: duplicate communication " + task_names_[src] + " -> " +
              task_names_[dst]);
  return graph_.add_edge(src, dst, Communication{bandwidth_mbps});
}

EdgeId CommGraph::add_communication(const std::string& src,
                                    const std::string& dst,
                                    double bandwidth_mbps) {
  const auto s = find_task(src);
  const auto d = find_task(dst);
  require(s != kInvalidNode, "CommGraph: unknown task '" + src + "'");
  require(d != kInvalidNode, "CommGraph: unknown task '" + dst + "'");
  return add_communication(s, d, bandwidth_mbps);
}

const std::string& CommGraph::task_name(NodeId id) const {
  require(id < task_names_.size(), "CommGraph: task id out of range");
  return task_names_[id];
}

NodeId CommGraph::find_task(const std::string& name) const noexcept {
  const auto it = std::find(task_names_.begin(), task_names_.end(), name);
  if (it == task_names_.end()) return kInvalidNode;
  return static_cast<NodeId>(it - task_names_.begin());
}

std::vector<CommGraph::EdgeView> CommGraph::edges() const {
  std::vector<EdgeView> out;
  out.reserve(graph_.edge_count());
  for (const auto& e : graph_.edges())
    out.push_back(EdgeView{e.src, e.dst, e.data.bandwidth_mbps});
  return out;
}

double CommGraph::total_bandwidth() const noexcept {
  double sum = 0.0;
  for (const auto& e : graph_.edges()) sum += e.data.bandwidth_mbps;
  return sum;
}

std::size_t CommGraph::max_degree() const noexcept {
  std::size_t best = 0;
  for (NodeId n = 0; n < graph_.node_count(); ++n)
    best = std::max(best, graph_.in_degree(n) + graph_.out_degree(n));
  return best;
}

void CommGraph::validate() const {
  require(task_count() >= 1, "CommGraph: at least one task is required");
  for (const auto& e : graph_.edges())
    require(e.src != e.dst, "CommGraph: self-loop detected");
}

}  // namespace phonoc
