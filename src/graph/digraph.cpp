#include "graph/digraph.hpp"

// Digraph is a header-only template; this translation unit instantiates a
// representative specialization so template errors surface at library
// build time rather than first use.
namespace phonoc {
template class Digraph<int>;
}  // namespace phonoc
