#pragma once
/// \file digraph.hpp
/// \brief Compact directed graph with adjacency lists, the common
/// substrate under Communication Graphs and Topology graphs.
///
/// Nodes are dense indices [0, node_count). Edges carry a user payload
/// and are themselves indexed densely [0, edge_count), so per-edge data
/// (paths, losses, noise budgets) can live in parallel arrays.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace phonoc {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

/// Directed multigraph template. `EdgeData` is any copyable payload.
template <typename EdgeData>
class Digraph {
 public:
  struct Edge {
    NodeId src;
    NodeId dst;
    EdgeData data;
  };

  Digraph() = default;
  explicit Digraph(std::size_t nodes) { resize(nodes); }

  void resize(std::size_t nodes) {
    out_.resize(nodes);
    in_.resize(nodes);
  }

  NodeId add_node() {
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<NodeId>(out_.size() - 1);
  }

  EdgeId add_edge(NodeId src, NodeId dst, EdgeData data = {}) {
    require(src < node_count() && dst < node_count(),
            "Digraph::add_edge: node index out of range");
    const auto id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{src, dst, std::move(data)});
    out_[src].push_back(id);
    in_[dst].push_back(id);
    return id;
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId id) const {
    require(id < edges_.size(), "Digraph::edge: edge index out of range");
    return edges_[id];
  }
  [[nodiscard]] Edge& edge(EdgeId id) {
    require(id < edges_.size(), "Digraph::edge: edge index out of range");
    return edges_[id];
  }

  /// Edge ids leaving / entering a node.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId n) const {
    require(n < node_count(), "Digraph::out_edges: node out of range");
    return out_[n];
  }
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId n) const {
    require(n < node_count(), "Digraph::in_edges: node out of range");
    return in_[n];
  }

  [[nodiscard]] std::size_t out_degree(NodeId n) const {
    return out_edges(n).size();
  }
  [[nodiscard]] std::size_t in_degree(NodeId n) const {
    return in_edges(n).size();
  }

  /// First edge src->dst, or kInvalidEdge when absent.
  [[nodiscard]] EdgeId find_edge(NodeId src, NodeId dst) const {
    if (src >= node_count()) return kInvalidEdge;
    for (const auto id : out_[src])
      if (edges_[id].dst == dst) return id;
    return kInvalidEdge;
  }

  [[nodiscard]] bool has_edge(NodeId src, NodeId dst) const {
    return find_edge(src, dst) != kInvalidEdge;
  }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace phonoc
