#pragma once
/// \file csv.hpp
/// \brief Minimal CSV writer (RFC-4180 quoting) for experiment output.

#include <iosfwd>
#include <string>
#include <vector>

namespace phonoc {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row; fields containing commas/quotes/newlines are quoted.
  void row(const std::vector<std::string>& fields);

  /// Convenience: header then delegate to row().
  void header(const std::vector<std::string>& fields) { row(fields); }

  /// Escape a single field per RFC 4180.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

}  // namespace phonoc
