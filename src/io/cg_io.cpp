#include "io/cg_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

CommGraph read_cg(std::istream& in) {
  CommGraph cg;
  std::string line;
  int line_no = 0;
  bool named = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    const auto& keyword = fields[0];
    if (keyword == "cg") {
      if (fields.size() != 2)
        throw ParseError("cg directive expects one name", line_no);
      if (named) throw ParseError("duplicate cg directive", line_no);
      cg.set_name(fields[1]);
      named = true;
    } else if (keyword == "task") {
      if (fields.size() != 2)
        throw ParseError("task directive expects one name", line_no);
      try {
        cg.add_task(fields[1]);
      } catch (const InvalidArgument& e) {
        throw ParseError(e.what(), line_no);
      }
    } else if (keyword == "edge") {
      if (fields.size() != 4)
        throw ParseError("edge directive expects <src> <dst> <bandwidth>",
                         line_no);
      try {
        cg.add_communication(fields[1], fields[2],
                             parse_double(fields[3], line_no));
      } catch (const InvalidArgument& e) {
        throw ParseError(e.what(), line_no);
      }
    } else {
      throw ParseError("unknown directive '" + keyword + "'", line_no);
    }
  }
  cg.validate();
  return cg;
}

CommGraph read_cg_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open CG file '" + path + "'");
  return read_cg(in);
}

void write_cg(std::ostream& out, const CommGraph& cg) {
  out << "# PhoNoCMap communication graph\n";
  out << "cg " << cg.name() << '\n';
  for (NodeId t = 0; t < cg.task_count(); ++t)
    out << "task " << cg.task_name(t) << '\n';
  // format_double (max_digits10) so bandwidths survive a write/read
  // round trip bit-exactly; the worker wire protocol relies on this.
  for (const auto& e : cg.edges())
    out << "edge " << cg.task_name(e.src) << ' ' << cg.task_name(e.dst) << ' '
        << format_double(e.bandwidth_mbps) << '\n';
}

void write_cg_file(const std::string& path, const CommGraph& cg) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write CG file '" + path + "'");
  write_cg(out, cg);
}

}  // namespace phonoc
