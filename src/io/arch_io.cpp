#include "io/arch_io.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "routing/registry.hpp"
#include "topology/registry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

namespace {

/// Physical-parameter fields addressable as `param.<name>`.
std::map<std::string, double PhysicalParameters::*> parameter_fields() {
  return {
      {"crossing_loss_db", &PhysicalParameters::crossing_loss_db},
      {"propagation_loss_db_per_cm",
       &PhysicalParameters::propagation_loss_db_per_cm},
      {"ppse_off_loss_db", &PhysicalParameters::ppse_off_loss_db},
      {"ppse_on_loss_db", &PhysicalParameters::ppse_on_loss_db},
      {"cpse_off_loss_db", &PhysicalParameters::cpse_off_loss_db},
      {"cpse_on_loss_db", &PhysicalParameters::cpse_on_loss_db},
      {"crossing_crosstalk_db", &PhysicalParameters::crossing_crosstalk_db},
      {"pse_off_crosstalk_db", &PhysicalParameters::pse_off_crosstalk_db},
      {"pse_on_crosstalk_db", &PhysicalParameters::pse_on_crosstalk_db},
  };
}

}  // namespace

ArchitectureSpec read_architecture(std::istream& in) {
  ArchitectureSpec spec;
  const auto params = parameter_fields();
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos)
      throw ParseError("expected 'key = value'", line_no);
    const auto key = to_lower(std::string(trim(trimmed.substr(0, eq))));
    const auto value = std::string(trim(trimmed.substr(eq + 1)));
    if (value.empty()) throw ParseError("empty value for '" + key + "'",
                                        line_no);

    if (key == "topology") {
      spec.topology = to_lower(value);
    } else if (key == "rows") {
      spec.rows = static_cast<std::uint32_t>(parse_long(value, line_no));
    } else if (key == "cols") {
      spec.cols = static_cast<std::uint32_t>(parse_long(value, line_no));
    } else if (key == "tile_pitch_mm") {
      spec.tile_pitch_mm = parse_double(value, line_no);
    } else if (key == "router") {
      spec.router = to_lower(value);
    } else if (key == "routing") {
      spec.routing = to_lower(value);
    } else if (key == "fidelity") {
      const auto lowered = to_lower(value);
      if (lowered == "simplified")
        spec.model_options.fidelity = ModelFidelity::Simplified;
      else if (lowered == "full")
        spec.model_options.fidelity = ModelFidelity::Full;
      else
        throw ParseError("fidelity must be 'simplified' or 'full'", line_no);
    } else if (key == "conflict_policy") {
      const auto lowered = to_lower(value);
      if (lowered == "exclude")
        spec.model_options.conflict_policy = ConflictPolicy::Exclude;
      else if (lowered == "ignore")
        spec.model_options.conflict_policy = ConflictPolicy::Ignore;
      else
        throw ParseError("conflict_policy must be 'exclude' or 'ignore'",
                         line_no);
    } else if (key == "snr_ceiling_db") {
      spec.model_options.snr_ceiling_db = parse_double(value, line_no);
    } else if (starts_with(key, "param.")) {
      const auto field = key.substr(6);
      const auto it = params.find(field);
      if (it == params.end())
        throw ParseError("unknown physical parameter '" + field + "'",
                         line_no);
      spec.parameters.*(it->second) = parse_double(value, line_no);
    } else {
      throw ParseError("unknown key '" + key + "'", line_no);
    }
  }
  return spec;
}

ArchitectureSpec read_architecture_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open architecture file '" + path + "'");
  return read_architecture(in);
}

void write_architecture(std::ostream& out, const ArchitectureSpec& spec) {
  out << "# PhoNoCMap architecture description\n";
  out << "topology = " << spec.topology << '\n';
  out << "rows = " << spec.rows << '\n';
  out << "cols = " << spec.cols << '\n';
  out << "tile_pitch_mm = " << spec.tile_pitch_mm << '\n';
  out << "router = " << spec.router << '\n';
  out << "routing = " << spec.routing << '\n';
  out << "fidelity = "
      << (spec.model_options.fidelity == ModelFidelity::Simplified
              ? "simplified"
              : "full")
      << '\n';
  out << "conflict_policy = "
      << (spec.model_options.conflict_policy == ConflictPolicy::Exclude
              ? "exclude"
              : "ignore")
      << '\n';
  out << "snr_ceiling_db = " << spec.model_options.snr_ceiling_db << '\n';
  const auto defaults = PhysicalParameters::paper_defaults();
  for (const auto& [name, member] : parameter_fields()) {
    if (spec.parameters.*member != defaults.*member)
      out << "param." << name << " = " << spec.parameters.*member << '\n';
  }
}

std::shared_ptr<const NetworkModel> build_network(
    const ArchitectureSpec& spec) {
  GridOptions grid;
  grid.rows = spec.rows;
  grid.cols = spec.cols;
  grid.tile_pitch_mm = spec.tile_pitch_mm;
  auto topology = make_topology(spec.topology, grid);
  auto router = std::make_shared<const RouterModel>(
      make_router_netlist(spec.router), spec.parameters);
  std::shared_ptr<const RoutingAlgorithm> routing =
      make_routing(spec.routing);
  return std::make_shared<const NetworkModel>(std::move(topology),
                                              std::move(router),
                                              std::move(routing),
                                              spec.model_options);
}

}  // namespace phonoc
