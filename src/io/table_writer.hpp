#pragma once
/// \file table_writer.hpp
/// \brief Fixed-width ASCII / Markdown table rendering for the bench
/// harness output (the Table II reproduction prints through this).

#include <string>
#include <vector>

namespace phonoc {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Aligned plain-text rendering (two-space column gap).
  [[nodiscard]] std::string to_ascii() const;

  /// GitHub-flavoured Markdown rendering.
  [[nodiscard]] std::string to_markdown() const;

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

 private:
  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace phonoc
