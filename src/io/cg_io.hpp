#pragma once
/// \file cg_io.hpp
/// \brief Communication Graph text format.
///
/// Line-oriented, '#' comments:
///
///     cg <name>
///     task <name>
///     edge <src-task> <dst-task> <bandwidth-MB/s>
///
/// Tasks must be declared before edges reference them.

#include <iosfwd>
#include <string>

#include "graph/comm_graph.hpp"

namespace phonoc {

[[nodiscard]] CommGraph read_cg(std::istream& in);
[[nodiscard]] CommGraph read_cg_file(const std::string& path);

void write_cg(std::ostream& out, const CommGraph& cg);
void write_cg_file(const std::string& path, const CommGraph& cg);

}  // namespace phonoc
