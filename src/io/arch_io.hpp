#pragma once
/// \file arch_io.hpp
/// \brief Architecture description format: topology, router, routing,
/// model options, and physical-parameter overrides in one file.
///
/// Line-oriented `key = value` pairs, '#' comments:
///
///     topology = mesh          # registered topology name
///     rows = 4
///     cols = 4
///     tile_pitch_mm = 2.5
///     router = crux            # registered router name
///     routing = xy             # registered routing name
///     fidelity = simplified    # simplified | full
///     conflict_policy = exclude  # exclude | ignore
///     snr_ceiling_db = 200
///     param.crossing_loss_db = -0.04     # any PhysicalParameters field
///
/// Unrecognized keys raise ParseError, so typos never silently fall back
/// to defaults.

#include <iosfwd>
#include <memory>
#include <string>

#include "model/network_model.hpp"
#include "photonics/parameters.hpp"

namespace phonoc {

struct ArchitectureSpec {
  std::string topology = "mesh";
  std::uint32_t rows = 4;
  std::uint32_t cols = 4;
  double tile_pitch_mm = 2.5;
  std::string router = "crux";
  std::string routing = "xy";
  PhysicalParameters parameters = PhysicalParameters::paper_defaults();
  NetworkModelOptions model_options = {};
};

[[nodiscard]] ArchitectureSpec read_architecture(std::istream& in);
[[nodiscard]] ArchitectureSpec read_architecture_file(const std::string& path);

void write_architecture(std::ostream& out, const ArchitectureSpec& spec);

/// Instantiate the full network model from a spec (uses the topology,
/// router, and routing registries).
[[nodiscard]] std::shared_ptr<const NetworkModel> build_network(
    const ArchitectureSpec& spec);

}  // namespace phonoc
