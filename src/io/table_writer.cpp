#include "io/table_writer.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace phonoc {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "TableWriter: at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "TableWriter: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::vector<std::size_t> TableWriter::column_widths() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

std::string TableWriter::to_ascii() const {
  const auto widths = column_widths();
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) out << "  ";
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TableWriter::to_markdown() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      out << (c + 1 < cells.size() ? " | " : " |");
    }
    out << '\n';
  };
  emit(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace phonoc
