#include "router/router_model.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {

RouterModel::RouterModel(RouterNetlist netlist,
                         const PhysicalParameters& params)
    : netlist_(std::move(netlist)),
      params_(params),
      linear_(LinearParameters::from(params)) {
  params_.validate();
  netlist_.validate();

  const auto ports = netlist_.port_count();
  const auto& conns = netlist_.connections();
  const auto n = conns.size();

  conn_index_.assign(ports * ports, -1);
  traces_.reserve(n);
  gains_.reserve(n);
  losses_db_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = conns[i];
    conn_index_[c.in_port * ports + c.out_port] = static_cast<int>(i);
    traces_.push_back(trace_connection(netlist_, c, linear_));
    gains_.push_back(traces_.back().gain);
    losses_db_.push_back(linear_to_db(traces_.back().gain));
  }

  pairs_.resize(n * n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t a = 0; a < n; ++a) {
      if (v == a) {
        pairs_[v * n + a].conflict = true;  // a connection vs itself
        continue;
      }
      pairs_[v * n + a] = analyze_pair(netlist_, conns[v], traces_[v],
                                       conns[a], traces_[a], linear_);
    }
  }
}

int RouterModel::connection_index(PortId in_port, PortId out_port) const {
  const auto ports = netlist_.port_count();
  if (in_port >= ports || out_port >= ports) return -1;
  return conn_index_[in_port * ports + out_port];
}

const RouterConnection& RouterModel::connection(std::size_t idx) const {
  require(idx < netlist_.connections().size(),
          "RouterModel: connection index out of range");
  return netlist_.connections()[idx];
}

const Trace& RouterModel::trace(std::size_t idx) const {
  require(idx < traces_.size(), "RouterModel: connection index out of range");
  return traces_[idx];
}

double RouterModel::worst_connection_loss_db() const {
  double worst = 0.0;
  for (const auto db : losses_db_) worst = std::min(worst, db);
  return worst;
}

const PairAnalysis& RouterModel::pair(std::size_t victim,
                                      std::size_t attacker) const {
  const auto n = netlist_.connections().size();
  require(victim < n && attacker < n,
          "RouterModel: pair index out of range");
  return pairs_[victim * n + attacker];
}

}  // namespace phonoc
