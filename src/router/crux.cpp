#include "router/crux.hpp"

#include <array>
#include <string>

#include "router/ports.hpp"
#include "util/error.hpp"

namespace phonoc {

namespace {

/// Builder helper that hides the Cpse-vs-ParallelPair site structure.
/// A "site" is a switching location with rails A and B; in the Cpse
/// variant it is a single CPSE element, in the ParallelPair variant a
/// plain crossing feeding a PPSE on both rails. `in(site, rail)` /
/// `out(site, rail)` give the element pins to wire against, and
/// `ring(site)` the element whose microring realizes the site.
class SiteBuilder {
 public:
  struct Site {
    ElementId entry;  ///< element receiving both rails' inputs
    ElementId exit;   ///< element driving both rails' outputs
    ElementId ring;   ///< ring-bearing element
  };

  SiteBuilder(RouterNetlist& netlist, const CruxOptions& options)
      : netlist_(netlist), options_(options) {}

  [[nodiscard]] Site add_site(const std::string& name) {
    if (options_.variant == CruxOptions::Variant::Cpse) {
      const auto id = netlist_.add_element(ElementKind::Cpse, name);
      return Site{id, id, id};
    }
    const auto x = netlist_.add_element(ElementKind::Crossing, "X_" + name);
    const auto p = netlist_.add_element(ElementKind::Ppse, "P_" + name);
    netlist_.wire(x, Rail::A, p, Rail::A, options_.internal_segment_cm);
    netlist_.wire(x, Rail::B, p, Rail::B, options_.internal_segment_cm);
    return Site{x, p, p};
  }

 private:
  RouterNetlist& netlist_;
  const CruxOptions& options_;
};

}  // namespace

RouterNetlist build_crux(const CruxOptions& options) {
  RouterNetlist netlist(
      options.variant == CruxOptions::Variant::Cpse ? "crux" : "parallel",
      {"L", "N", "E", "S", "W"});
  SiteBuilder sites(netlist, options);
  const double seg = options.internal_segment_cm;

  // Ring sites (names encode the connection whose ring lives there).
  const auto LE = sites.add_site("LE");
  const auto LW = sites.add_site("LW");
  const auto LN = sites.add_site("LN");
  const auto LS = sites.add_site("LS");
  const auto WN = sites.add_site("WN");
  const auto WS = sites.add_site("WS");
  const auto WL = sites.add_site("WL");
  const auto EN = sites.add_site("EN");
  const auto ES = sites.add_site("ES");
  const auto EL = sites.add_site("EL");
  const auto SL = sites.add_site("SL");
  // N->L couples the N->S guide onto the parallel ejection guide: a PPSE
  // in both variants.
  const auto NL_elem = netlist.add_element(ElementKind::Ppse, "NL");
  const SiteBuilder::Site NL{NL_elem, NL_elem, NL_elem};
  // Ring-free crossing of the injection and ejection guides.
  const auto XLL = netlist.add_element(ElementKind::Crossing, "XLL");

  // --- Injection guide: L_in -> XLL.B ^ LE.B ^ LW.B, corner, LN.A ->
  //     LS.A -> terminator. (^ = upward rail-B traversals.)
  netlist.wire_input(kPortLocal, XLL, Rail::B, seg);
  netlist.wire(XLL, Rail::B, LE.entry, Rail::B, seg);
  netlist.wire(LE.exit, Rail::B, LW.entry, Rail::B, seg);
  netlist.wire(LW.exit, Rail::B, LN.entry, Rail::A, seg);
  netlist.wire(LN.exit, Rail::A, LS.entry, Rail::A, seg);
  // LS.exit rail A is terminated (default).

  // --- W->E guide: W_in -> LE.A -> WN.A -> WS.A -> WL.A -> E_out.
  netlist.wire_input(kPortWest, LE.entry, Rail::A, seg);
  netlist.wire(LE.exit, Rail::A, WN.entry, Rail::A, seg);
  netlist.wire(WN.exit, Rail::A, WS.entry, Rail::A, seg);
  netlist.wire(WS.exit, Rail::A, WL.entry, Rail::A, seg);
  netlist.wire_output(WL.exit, Rail::A, kPortEast, seg);

  // --- E->W guide: E_in -> EL.A -> ES.A -> EN.A -> LW.A -> W_out.
  netlist.wire_input(kPortEast, EL.entry, Rail::A, seg);
  netlist.wire(EL.exit, Rail::A, ES.entry, Rail::A, seg);
  netlist.wire(ES.exit, Rail::A, EN.entry, Rail::A, seg);
  netlist.wire(EN.exit, Rail::A, LW.entry, Rail::A, seg);
  netlist.wire_output(LW.exit, Rail::A, kPortWest, seg);

  // --- S->N guide: S_in -> SL.B -> WN.B -> EN.B -> LN.B -> N_out.
  netlist.wire_input(kPortSouth, SL.entry, Rail::B, seg);
  netlist.wire(SL.exit, Rail::B, WN.entry, Rail::B, seg);
  netlist.wire(WN.exit, Rail::B, EN.entry, Rail::B, seg);
  netlist.wire(EN.exit, Rail::B, LN.entry, Rail::B, seg);
  netlist.wire_output(LN.exit, Rail::B, kPortNorth, seg);

  // --- N->S guide: N_in -> LS.B -> ES.B -> NL.A -> WS.B -> S_out.
  netlist.wire_input(kPortNorth, LS.entry, Rail::B, seg);
  netlist.wire(LS.exit, Rail::B, ES.entry, Rail::B, seg);
  netlist.wire(ES.exit, Rail::B, NL.entry, Rail::A, seg);
  netlist.wire(NL.exit, Rail::A, WS.entry, Rail::B, seg);
  netlist.wire_output(WS.exit, Rail::B, kPortSouth, seg);

  // --- Ejection guide: (EL.B top) v NL.B v WL.B v SL.A -> XLL.A -> L_out.
  netlist.wire(EL.exit, Rail::B, NL.entry, Rail::B, seg);
  netlist.wire(NL.exit, Rail::B, WL.entry, Rail::B, seg);
  netlist.wire(WL.exit, Rail::B, SL.entry, Rail::A, seg);
  netlist.wire(SL.exit, Rail::A, XLL, Rail::A, seg);
  netlist.wire_output(XLL, Rail::A, kPortLocal, seg);

  // --- The sixteen XY-legal connections -----------------------------------
  netlist.add_connection(kPortLocal, kPortNorth, {LN.ring});
  netlist.add_connection(kPortLocal, kPortEast, {LE.ring});
  netlist.add_connection(kPortLocal, kPortSouth, {LS.ring});
  netlist.add_connection(kPortLocal, kPortWest, {LW.ring});
  netlist.add_connection(kPortNorth, kPortSouth, {});
  netlist.add_connection(kPortNorth, kPortLocal, {NL.ring});
  netlist.add_connection(kPortSouth, kPortNorth, {});
  netlist.add_connection(kPortSouth, kPortLocal, {SL.ring});
  netlist.add_connection(kPortEast, kPortWest, {});
  netlist.add_connection(kPortEast, kPortNorth, {EN.ring});
  netlist.add_connection(kPortEast, kPortSouth, {ES.ring});
  netlist.add_connection(kPortEast, kPortLocal, {EL.ring});
  netlist.add_connection(kPortWest, kPortEast, {});
  netlist.add_connection(kPortWest, kPortNorth, {WN.ring});
  netlist.add_connection(kPortWest, kPortSouth, {WS.ring});
  netlist.add_connection(kPortWest, kPortLocal, {WL.ring});

  netlist.validate();
  return netlist;
}

}  // namespace phonoc
