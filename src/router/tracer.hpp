#pragma once
/// \file tracer.hpp
/// \brief Signal propagation through a router netlist.
///
/// The tracer walks light through the element graph under a given set of
/// ON rings: at every element the signal follows the bar or cross rail
/// according to the Eq. (1a)-(1j) transfer model, accumulating loss.
/// It produces the ordered element traversal of a connection (used for
/// crosstalk derivation) and verifies that the netlist actually delivers
/// the connection's input port to its declared output port.

#include <cstdint>
#include <vector>

#include "photonics/elements.hpp"
#include "router/netlist.hpp"

namespace phonoc {

/// One element traversal on a signal path.
struct TraceStep {
  ElementId element;
  Rail in_rail;
  RingState state;       ///< element state during this connection
  double gain_before;    ///< linear gain accumulated before entering
};

/// Full trace of a connection through the netlist.
struct Trace {
  std::vector<TraceStep> steps;
  double gain = 1.0;              ///< total linear gain (elements + internal wg)
  double internal_length_cm = 0.0;
};

/// Per-element ON/OFF flags (index = ElementId). Built from a ring set.
using RingFlags = std::vector<std::uint8_t>;

/// Expand a sorted ring list into per-element flags.
[[nodiscard]] RingFlags make_ring_flags(const RouterNetlist& netlist,
                                        const std::vector<ElementId>& rings);

/// Union of two flag vectors (co-active connections).
[[nodiscard]] RingFlags union_flags(const RingFlags& a, const RingFlags& b);

/// Trace `connection` through the netlist with its own rings ON.
/// Throws ModelError when the light fails to arrive at the declared
/// output port (mis-wired netlist or wrong ring set).
[[nodiscard]] Trace trace_connection(const RouterNetlist& netlist,
                                     const RouterConnection& connection,
                                     const LinearParameters& params);

/// Result of free propagation from an arbitrary output pin.
struct Propagation {
  bool reached_output = false;
  PortId out_port = 0;
  double gain = 1.0;  ///< linear gain accumulated along the way
};

/// Follow light leaving element `from`'s rail `rail` output pin through
/// the netlist under the given ring flags, taking the signal (not leak)
/// path at every subsequent element, until it exits an external port or
/// terminates. Used to find where first-order crosstalk leaks end up.
[[nodiscard]] Propagation propagate_from_pin(const RouterNetlist& netlist,
                                             ElementId from, Rail rail,
                                             const RingFlags& rings,
                                             const LinearParameters& params);

}  // namespace phonoc
