#pragma once
/// \file router_model.hpp
/// \brief Precomputed analytical model of one router microarchitecture.
///
/// Built once per (netlist, physical parameters) pair. All quantities the
/// network-level analysis needs per evaluation are dense lookups here:
/// connection indices, per-connection insertion gains, and pairwise
/// conflict / crosstalk matrices. This is what makes mapping-space search
/// fast enough for the paper's 100 000-sample experiments.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "photonics/parameters.hpp"
#include "router/matrices.hpp"
#include "router/netlist.hpp"
#include "router/tracer.hpp"

namespace phonoc {

class RouterModel {
 public:
  /// Derives all matrices; throws ModelError if any declared connection
  /// cannot actually be traced to its output port.
  RouterModel(RouterNetlist netlist, const PhysicalParameters& params);

  [[nodiscard]] const std::string& name() const noexcept {
    return netlist_.name();
  }
  [[nodiscard]] const RouterNetlist& netlist() const noexcept {
    return netlist_;
  }
  [[nodiscard]] std::size_t port_count() const noexcept {
    return netlist_.port_count();
  }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return netlist_.connections().size();
  }

  /// Dense connection index for (in, out), or -1 when the router does
  /// not support that connection.
  [[nodiscard]] int connection_index(PortId in_port, PortId out_port) const;

  [[nodiscard]] const RouterConnection& connection(std::size_t idx) const;
  [[nodiscard]] const Trace& trace(std::size_t idx) const;

  /// Linear power gain of a connection (includes internal waveguides).
  [[nodiscard]] double connection_gain(std::size_t idx) const {
    return gains_[idx];
  }
  /// Same in dB (<= 0).
  [[nodiscard]] double connection_loss_db(std::size_t idx) const {
    return losses_db_[idx];
  }

  /// True when the ordered pair cannot be co-active (see PairAnalysis).
  [[nodiscard]] bool conflicts(std::size_t victim, std::size_t attacker) const {
    return pair(victim, attacker).conflict;
  }

  /// Linear crosstalk coefficient victim<-attacker at the requested
  /// fidelity; 0 for conflicting pairs.
  [[nodiscard]] double crosstalk_gain(std::size_t victim, std::size_t attacker,
                                      ModelFidelity fidelity) const {
    const auto& p = pair(victim, attacker);
    return fidelity == ModelFidelity::Simplified ? p.k_simplified : p.k_full;
  }

  /// Worst (most negative) connection loss over all connections, dB.
  [[nodiscard]] double worst_connection_loss_db() const;

  /// Physical parameter set the model was built with.
  [[nodiscard]] const PhysicalParameters& parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] const LinearParameters& linear_parameters() const noexcept {
    return linear_;
  }

 private:
  [[nodiscard]] const PairAnalysis& pair(std::size_t victim,
                                         std::size_t attacker) const;

  RouterNetlist netlist_;
  PhysicalParameters params_;
  LinearParameters linear_;
  std::vector<int> conn_index_;       ///< [in * ports + out] -> idx or -1
  std::vector<Trace> traces_;         ///< per connection
  std::vector<double> gains_;         ///< per connection, linear
  std::vector<double> losses_db_;     ///< per connection, dB
  std::vector<PairAnalysis> pairs_;   ///< [victim * n + attacker]
};

/// Shared-ownership alias used across the model layer: one RouterModel is
/// referenced by every tile of a network.
using RouterModelPtr = std::shared_ptr<const RouterModel>;

}  // namespace phonoc
