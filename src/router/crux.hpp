#pragma once
/// \file crux.hpp
/// \brief Crux optical router (paper ref [12], Xie et al., DAC 2010) —
/// documented reconstruction.
///
/// Crux is a 5-port router optimized for XY dimension-order routing: it
/// supports exactly the 16 XY-legal connections (inject to any direction,
/// eject from any direction, X/Y straight-through, X-to-Y turns; no
/// Y-to-X turns and no U-turns) using 12 microrings, and its
/// straight-through paths traverse only crossings and OFF-state rings.
///
/// The original netlist figure is not reproduced in the PhoNoCMap paper,
/// so this is a reconstruction with the published structural properties
/// (see DESIGN.md §3). Layout summary:
///   * four unidirectional guides: W->E, E->W (horizontal), S->N, N->S
///     (vertical), giving four mutual crossings that host the four
///     X-to-Y turn rings (WN, WS, EN, ES);
///   * an L-shaped injection guide with four rings (LE, LW, LN, LS);
///   * an L-shaped ejection guide with rings EL, WL, SL (CPSE) and NL
///     (PPSE, since the N->S guide runs parallel to it), ending at the
///     local output after a plain crossing (XLL) with the injection
///     guide — the one ring-free crossing of the design, which makes
///     concurrent injection/ejection at a tile interact at the -40 dB
///     crossing-crosstalk floor (the SNR plateau visible in the paper's
///     Table II).

#include "router/netlist.hpp"

namespace phonoc {

struct CruxOptions {
  /// Element style for the twelve ring sites.
  enum class Variant {
    /// Rings implemented as CPSEs at waveguide crossings (Crux proper).
    Cpse,
    /// Each ring site split into a plain crossing followed by a PPSE —
    /// a parallel-coupler router in the spirit of Cygnus (reconstruction
    /// used as the "parallel" comparison point).
    ParallelPair,
  };
  Variant variant = Variant::Cpse;
  /// Internal waveguide segment length between adjacent elements, cm.
  /// The paper treats intra-router propagation as negligible (0).
  double internal_segment_cm = 0.0;
};

/// Build the Crux netlist (5 standard ports, 16 connections).
[[nodiscard]] RouterNetlist build_crux(const CruxOptions& options = {});

}  // namespace phonoc
