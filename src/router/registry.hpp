#pragma once
/// \file registry.hpp
/// \brief Name-based router factory, the tool's extension point for new
/// optical router microarchitectures (paper Fig. 1: the architecture
/// description names a router; users can register their own).

#include <functional>
#include <string>
#include <vector>

#include "router/netlist.hpp"

namespace phonoc {

using RouterFactory = std::function<RouterNetlist()>;

/// Register a router under `name` (case-insensitive); replaces any
/// previous registration with the same name.
void register_router(const std::string& name, RouterFactory factory);

/// Instantiate a registered router; throws InvalidArgument for unknown
/// names (message lists the registered ones).
[[nodiscard]] RouterNetlist make_router_netlist(const std::string& name);

/// Names currently registered (sorted). Built-ins: "crux", "crossbar",
/// "xy_crossbar", "parallel".
[[nodiscard]] std::vector<std::string> registered_routers();

}  // namespace phonoc
