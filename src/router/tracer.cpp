#include "router/tracer.hpp"

#include "util/error.hpp"

namespace phonoc {

namespace {

RingState state_of(const RouterNetlist& netlist, ElementId elem,
                   const RingFlags& rings) {
  if (!has_ring(netlist.element(elem).kind)) return RingState::Off;
  return rings[elem] ? RingState::On : RingState::Off;
}

/// Hard bound on walk length: a signal cannot revisit pins in a
/// physically meaningful netlist; 4x element count catches mis-wirings.
std::size_t step_limit(const RouterNetlist& netlist) {
  return 4 * netlist.element_count() + 8;
}

}  // namespace

RingFlags make_ring_flags(const RouterNetlist& netlist,
                          const std::vector<ElementId>& rings) {
  RingFlags flags(netlist.element_count(), 0);
  for (const auto r : rings) {
    require(r < flags.size(), "make_ring_flags: ring id out of range");
    flags[r] = 1;
  }
  return flags;
}

RingFlags union_flags(const RingFlags& a, const RingFlags& b) {
  require(a.size() == b.size(), "union_flags: size mismatch");
  RingFlags out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] | b[i];
  return out;
}

Trace trace_connection(const RouterNetlist& netlist,
                       const RouterConnection& connection,
                       const LinearParameters& params) {
  const auto flags = make_ring_flags(netlist, connection.rings);

  Trace trace;
  const PinTarget* target = &netlist.input_feed(connection.in_port);
  require_model(target->kind == PinTarget::Kind::Element,
                "trace_connection: input port '" +
                    netlist.port_name(connection.in_port) + "' of router '" +
                    netlist.name() + "' is not wired to an element");

  const std::size_t limit = step_limit(netlist);
  std::size_t steps = 0;
  while (true) {
    require_model(++steps <= limit,
                  "trace_connection: walk exceeded step limit in router '" +
                      netlist.name() + "' (cyclic wiring?)");
    // Traverse the waveguide segment leading to the target.
    trace.internal_length_cm += target->length_cm;
    trace.gain *= params.propagation_gain(target->length_cm);

    if (target->kind == PinTarget::Kind::OutputPort) {
      require_model(
          target->index == connection.out_port,
          "trace_connection: light from port '" +
              netlist.port_name(connection.in_port) + "' arrived at port '" +
              netlist.port_name(target->index) + "' instead of '" +
              netlist.port_name(connection.out_port) + "' in router '" +
              netlist.name() + "'");
      return trace;
    }
    require_model(target->kind == PinTarget::Kind::Element,
                  "trace_connection: light terminated before reaching port '" +
                      netlist.port_name(connection.out_port) +
                      "' in router '" + netlist.name() + "'");

    const ElementId elem = target->index;
    const Rail in_rail = target->rail;
    const auto state = state_of(netlist, elem, flags);
    const auto transfer =
        element_transfer(netlist.element(elem).kind, state, in_rail, params);
    trace.steps.push_back(TraceStep{elem, in_rail, state, trace.gain});
    trace.gain *= transfer.signal_gain;
    target = &netlist.exit_of(elem, transfer.signal_out);
  }
}

Propagation propagate_from_pin(const RouterNetlist& netlist, ElementId from,
                               Rail rail, const RingFlags& rings,
                               const LinearParameters& params) {
  Propagation result;
  const PinTarget* target = &netlist.exit_of(from, rail);
  const std::size_t limit = step_limit(netlist);
  std::size_t steps = 0;
  while (true) {
    if (++steps > limit) return result;  // cyclic stray path: treat as lost
    result.gain *= params.propagation_gain(target->length_cm);
    switch (target->kind) {
      case PinTarget::Kind::None:
        return result;  // absorbed at a terminator
      case PinTarget::Kind::OutputPort:
        result.reached_output = true;
        result.out_port = target->index;
        return result;
      case PinTarget::Kind::Element: {
        const ElementId elem = target->index;
        const auto state = state_of(netlist, elem, rings);
        const auto transfer = element_transfer(netlist.element(elem).kind,
                                               state, target->rail, params);
        result.gain *= transfer.signal_gain;
        target = &netlist.exit_of(elem, transfer.signal_out);
        break;
      }
    }
  }
}

}  // namespace phonoc
