#pragma once
/// \file parallel_router.hpp
/// \brief PPSE-based 5-port router (reconstruction in the spirit of
/// Cygnus): the Crux guide layout with every CPSE site split into a
/// plain crossing followed by a parallel PSE. See crux.hpp.

#include "router/netlist.hpp"

namespace phonoc {

[[nodiscard]] RouterNetlist build_parallel_router(
    double internal_segment_cm = 0.0);

}  // namespace phonoc
