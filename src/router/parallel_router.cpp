#include "router/parallel_router.hpp"

#include "router/crux.hpp"

namespace phonoc {

RouterNetlist build_parallel_router(double internal_segment_cm) {
  CruxOptions options;
  options.variant = CruxOptions::Variant::ParallelPair;
  options.internal_segment_cm = internal_segment_cm;
  return build_crux(options);
}

}  // namespace phonoc
