#include "router/ports.hpp"

#include "util/error.hpp"

namespace phonoc {

std::string standard_port_name(PortId port) {
  switch (port) {
    case kPortLocal: return "L";
    case kPortNorth: return "N";
    case kPortEast: return "E";
    case kPortSouth: return "S";
    case kPortWest: return "W";
    default: {
      std::string name = "P";
      name += std::to_string(port);
      return name;
    }
  }
}

PortId opposite_port(PortId port) {
  switch (port) {
    case kPortLocal: return kPortLocal;
    case kPortNorth: return kPortSouth;
    case kPortSouth: return kPortNorth;
    case kPortEast: return kPortWest;
    case kPortWest: return kPortEast;
    default:
      throw InvalidArgument("opposite_port: not a standard port id");
  }
}

}  // namespace phonoc
