#include "router/registry.hpp"

#include <map>

#include "router/crossbar.hpp"
#include "router/crux.hpp"
#include "router/parallel_router.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

namespace {

std::map<std::string, RouterFactory>& registry() {
  static std::map<std::string, RouterFactory> instance = [] {
    std::map<std::string, RouterFactory> m;
    m["crux"] = [] { return build_crux(); };
    m["crossbar"] = [] { return build_crossbar(); };
    m["xy_crossbar"] = [] {
      CrossbarOptions options;
      options.xy_legal_only = true;
      return build_crossbar(options);
    };
    m["parallel"] = [] { return build_parallel_router(); };
    return m;
  }();
  return instance;
}

}  // namespace

void register_router(const std::string& name, RouterFactory factory) {
  require(!name.empty(), "register_router: empty name");
  require(factory != nullptr, "register_router: null factory");
  registry()[to_lower(name)] = std::move(factory);
}

RouterNetlist make_router_netlist(const std::string& name) {
  const auto it = registry().find(to_lower(name));
  if (it == registry().end()) {
    std::string known;
    for (const auto& [key, unused] : registry()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw InvalidArgument("unknown router '" + name + "' (registered: " +
                          known + ")");
  }
  return it->second();
}

std::vector<std::string> registered_routers() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, unused] : registry()) names.push_back(key);
  return names;
}

}  // namespace phonoc
