#pragma once
/// \file matrices.hpp
/// \brief Pairwise connection analysis: conflicts and crosstalk
/// coefficients between two co-active connections of one router.

#include "photonics/parameters.hpp"
#include "router/netlist.hpp"
#include "router/tracer.hpp"

namespace phonoc {

/// Crosstalk-model fidelity (paper §II-C simplifications).
enum class ModelFidelity {
  /// Paper model: `Ki*Li = Ki` inside the generating switch — neither
  /// the attacker's pre-leak loss nor the noise's post-leak loss within
  /// that router are applied.
  Simplified,
  /// Keep the intra-router attenuation terms the paper drops.
  Full,
};

/// Derived relation between an ordered (victim, attacker) connection pair.
struct PairAnalysis {
  /// True when the two connections cannot be active simultaneously:
  /// shared input/output port, shared ring, or a ring one connection
  /// turns ON sitting on an element the other traverses in OFF state.
  bool conflict = false;
  /// Total linear crosstalk coefficient: noise power co-propagating out
  /// of the victim's output port per unit of attacker power entering the
  /// attacker's input port, under the paper's simplified model.
  double k_simplified = 0.0;
  /// Same with intra-router attenuation retained.
  double k_full = 0.0;
};

/// Analyze the ordered pair (victim, attacker). `victim_trace` and
/// `attacker_trace` must come from trace_connection on the same netlist.
[[nodiscard]] PairAnalysis analyze_pair(const RouterNetlist& netlist,
                                        const RouterConnection& victim,
                                        const Trace& victim_trace,
                                        const RouterConnection& attacker,
                                        const Trace& attacker_trace,
                                        const LinearParameters& params);

}  // namespace phonoc
