#pragma once
/// \file ports.hpp
/// \brief Canonical 5-port naming for tile routers.
///
/// Topologies and routing algorithms speak in these port ids; router
/// netlists may have any port count, but the built-in mesh/torus flows
/// use the 5-port convention below.

#include <cstdint>
#include <string>

namespace phonoc {

using PortId = std::uint32_t;

inline constexpr PortId kPortLocal = 0;  ///< processing-element interface
inline constexpr PortId kPortNorth = 1;
inline constexpr PortId kPortEast = 2;
inline constexpr PortId kPortSouth = 3;
inline constexpr PortId kPortWest = 4;
inline constexpr std::size_t kStandardPortCount = 5;

/// Human-readable name of a standard port ("L", "N", "E", "S", "W").
[[nodiscard]] std::string standard_port_name(PortId port);

/// Opposite cardinal direction (N<->S, E<->W); Local maps to Local.
[[nodiscard]] PortId opposite_port(PortId port);

}  // namespace phonoc
