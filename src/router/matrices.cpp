#include "router/matrices.hpp"

#include <algorithm>

namespace phonoc {

namespace {

/// True when `rings` contains an element that `trace` traverses in OFF
/// state: turning that ring ON would divert the traced signal.
bool ring_diverts_trace(const std::vector<ElementId>& rings,
                        const Trace& trace) {
  for (const auto& step : trace.steps) {
    if (step.state != RingState::Off) continue;
    if (std::binary_search(rings.begin(), rings.end(), step.element))
      return true;
  }
  return false;
}

bool share_a_ring(const std::vector<ElementId>& a,
                  const std::vector<ElementId>& b) {
  // Both sorted; linear merge scan.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j])
      ++i;
    else
      ++j;
  }
  return false;
}

}  // namespace

PairAnalysis analyze_pair(const RouterNetlist& netlist,
                          const RouterConnection& victim,
                          const Trace& victim_trace,
                          const RouterConnection& attacker,
                          const Trace& attacker_trace,
                          const LinearParameters& params) {
  PairAnalysis out;

  // --- Conflict detection -------------------------------------------------
  if (victim.in_port == attacker.in_port ||
      victim.out_port == attacker.out_port) {
    // Port sharing: the pair is structurally impossible to co-activate
    // (one modulator / one detector per port), so no coefficient exists.
    out.conflict = true;
    return out;
  }
  if (share_a_ring(victim.rings, attacker.rings) ||
      ring_diverts_trace(attacker.rings, victim_trace) ||
      ring_diverts_trace(victim.rings, attacker_trace)) {
    // Ring-state contradiction: flagged as a conflict, but we still
    // compute the nominal coefficients below so that the naive
    // "sum over all pairs" ablation policy (ConflictPolicy::Ignore)
    // has a value to use.
    out.conflict = true;
  }

  // --- First-order leak collection ----------------------------------------
  // For every element the attacker traverses, its leak lands on the
  // output pin of the other rail (bar traversal) or the own rail (cross
  // traversal); from there the stray light propagates passively through
  // the netlist under the union ring configuration. Only strays that
  // exit at the victim's output port co-propagate with the victim and
  // reach its photodetector.
  const auto victim_flags = make_ring_flags(netlist, victim.rings);
  const auto attacker_flags = make_ring_flags(netlist, attacker.rings);
  const auto both = union_flags(victim_flags, attacker_flags);

  for (const auto& step : attacker_trace.steps) {
    const auto transfer = element_transfer(netlist.element(step.element).kind,
                                           step.state, step.in_rail, params);
    const auto stray = propagate_from_pin(netlist, step.element,
                                          transfer.leak_out, both, params);
    if (!stray.reached_output || stray.out_port != victim.out_port) continue;
    // Paper model (Ki*Li = Ki): coefficient of the leaking element only.
    out.k_simplified += transfer.leak_gain;
    // Full model: attacker attenuation up to the element, the leak, and
    // the stray-path attenuation to the output port.
    out.k_full += step.gain_before * transfer.leak_gain * stray.gain;
  }
  return out;
}

}  // namespace phonoc
