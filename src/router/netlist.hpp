#pragma once
/// \file netlist.hpp
/// \brief Router microarchitecture as a netlist of photonic elements.
///
/// A RouterNetlist is a directed graph of 2x2 photonic elements
/// (crossings, PPSEs, CPSEs; see photonics/elements.hpp). Each element
/// has two rails (A, B), each with an input and an output pin. Output
/// pins are wired to input pins of other elements, to external output
/// ports, or terminated. External input ports feed element input pins.
///
/// A *connection* declares that the router can steer light from one
/// external input port to one external output port by switching a given
/// set of microrings ON. Everything else about the router — insertion
/// loss per connection, pairwise crosstalk coefficients, conflicts — is
/// *derived* from the netlist by the tracer and matrix builder, so new
/// router microarchitectures only need to describe their physical
/// structure.

#include <cstdint>
#include <string>
#include <vector>

#include "photonics/elements.hpp"
#include "router/ports.hpp"

namespace phonoc {

using ElementId = std::uint32_t;
using ConnectionId = std::uint32_t;

/// Where an output pin's light goes next.
struct PinTarget {
  enum class Kind : std::uint8_t {
    None,        ///< terminated (absorbed; default)
    Element,     ///< input pin of another element
    OutputPort,  ///< external output port of the router
  };
  Kind kind = Kind::None;
  std::uint32_t index = 0;  ///< element id or port id
  Rail rail = Rail::A;      ///< target rail (Kind::Element only)
  double length_cm = 0.0;   ///< waveguide length of this internal segment
};

/// A switchable input->output service of the router.
struct RouterConnection {
  PortId in_port = 0;
  PortId out_port = 0;
  /// Elements whose microring must be ON to realize this connection
  /// (each must be a Ppse or Cpse). Sorted ascending.
  std::vector<ElementId> rings;
};

class RouterNetlist {
 public:
  struct Element {
    ElementKind kind;
    std::string name;
  };

  /// `port_names[i]` labels external port i (both its input and output
  /// side); `name` identifies the router type (e.g. "crux").
  RouterNetlist(std::string name, std::vector<std::string> port_names);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t port_count() const noexcept {
    return port_names_.size();
  }
  [[nodiscard]] const std::string& port_name(PortId port) const;

  /// Add an element; returns its id.
  ElementId add_element(ElementKind kind, std::string name);

  [[nodiscard]] std::size_t element_count() const noexcept {
    return elements_.size();
  }
  [[nodiscard]] const Element& element(ElementId id) const;

  /// Wire an element's output pin to another element's input pin.
  void wire(ElementId from, Rail from_rail, ElementId to, Rail to_rail,
            double length_cm = 0.0);
  /// Wire an external input port to an element's input pin.
  void wire_input(PortId port, ElementId to, Rail to_rail,
                  double length_cm = 0.0);
  /// Wire an element's output pin to an external output port.
  void wire_output(ElementId from, Rail from_rail, PortId port,
                   double length_cm = 0.0);

  /// Declare a connection (see RouterConnection). Rings are validated to
  /// reference ring-bearing elements. Returns the connection id.
  ConnectionId add_connection(PortId in_port, PortId out_port,
                              std::vector<ElementId> rings);

  [[nodiscard]] const std::vector<RouterConnection>& connections()
      const noexcept {
    return connections_;
  }

  /// Where the given output pin leads.
  [[nodiscard]] const PinTarget& exit_of(ElementId elem, Rail rail) const;
  /// What the given external input port feeds (Kind::None if unwired).
  [[nodiscard]] const PinTarget& input_feed(PortId port) const;

  /// Structural statistics for reporting.
  [[nodiscard]] std::size_t ring_count() const noexcept;
  [[nodiscard]] std::size_t crossing_count() const noexcept;

  /// Structural validation: every connection's ports in range, every
  /// input-pin fed by at most one source, rings reference ring elements.
  /// (Connection traceability is verified by the tracer at model build.)
  void validate() const;

 private:
  [[nodiscard]] PinTarget& exit_slot(ElementId elem, Rail rail);

  std::string name_;
  std::vector<std::string> port_names_;
  std::vector<Element> elements_;
  /// exits_[2*elem + rail]
  std::vector<PinTarget> exits_;
  std::vector<PinTarget> input_feeds_;
  std::vector<RouterConnection> connections_;
  /// fan-in guard: counts feeds per (element, rail) input pin
  std::vector<std::uint8_t> input_pin_feeds_;
};

}  // namespace phonoc
