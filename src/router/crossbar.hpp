#pragma once
/// \file crossbar.hpp
/// \brief Parametric matrix-crossbar optical router.
///
/// N input guides (rows, one per input port) cross N output guides
/// (columns, one per output port). Every supported connection (i -> j)
/// has a CPSE at intersection (i, j); unsupported intersections are
/// plain crossings. A 5-port crossbar without U-turns has 20 rings; the
/// XY-restricted variant has 16 (turnaround-free, no Y-to-X turns),
/// matching the connection set of Crux but with the loss/crosstalk
/// profile of a matrix layout. Both serve as comparison points for the
/// router-ablation benchmark.

#include <cstddef>

#include "router/netlist.hpp"

namespace phonoc {

struct CrossbarOptions {
  /// Number of ports; 5 uses the standard L/N/E/S/W names.
  std::size_t ports = 5;
  /// Restrict connections to the XY-legal set (requires ports == 5).
  bool xy_legal_only = false;
  /// Internal waveguide segment length between adjacent elements, cm.
  double internal_segment_cm = 0.0;
};

/// True when (in, out) is a legal XY dimension-order connection for the
/// standard 5-port router: inject/eject anywhere, X straights and X->Y
/// turns, Y straights; no Y->X turns, no U-turns.
[[nodiscard]] bool xy_legal_connection(PortId in_port, PortId out_port);

[[nodiscard]] RouterNetlist build_crossbar(const CrossbarOptions& options = {});

}  // namespace phonoc
