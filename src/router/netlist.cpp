#include "router/netlist.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace phonoc {

RouterNetlist::RouterNetlist(std::string name,
                             std::vector<std::string> port_names)
    : name_(std::move(name)), port_names_(std::move(port_names)) {
  require(!port_names_.empty(), "RouterNetlist: at least one port required");
  input_feeds_.resize(port_names_.size());
}

const std::string& RouterNetlist::port_name(PortId port) const {
  require(port < port_names_.size(), "RouterNetlist: port id out of range");
  return port_names_[port];
}

ElementId RouterNetlist::add_element(ElementKind kind, std::string name) {
  elements_.push_back(Element{kind, std::move(name)});
  exits_.emplace_back();  // rail A
  exits_.emplace_back();  // rail B
  input_pin_feeds_.push_back(0);
  input_pin_feeds_.push_back(0);
  return static_cast<ElementId>(elements_.size() - 1);
}

const RouterNetlist::Element& RouterNetlist::element(ElementId id) const {
  require(id < elements_.size(), "RouterNetlist: element id out of range");
  return elements_[id];
}

PinTarget& RouterNetlist::exit_slot(ElementId elem, Rail rail) {
  require(elem < elements_.size(), "RouterNetlist: element id out of range");
  return exits_[2 * elem + static_cast<std::size_t>(rail)];
}

void RouterNetlist::wire(ElementId from, Rail from_rail, ElementId to,
                         Rail to_rail, double length_cm) {
  require(to < elements_.size(), "RouterNetlist::wire: target out of range");
  require(length_cm >= 0.0, "RouterNetlist::wire: negative length");
  auto& slot = exit_slot(from, from_rail);
  require(slot.kind == PinTarget::Kind::None,
          "RouterNetlist::wire: output pin already wired (" +
              elements_[from].name + ")");
  slot = PinTarget{PinTarget::Kind::Element, to, to_rail, length_cm};
  auto& feeds = input_pin_feeds_[2 * to + static_cast<std::size_t>(to_rail)];
  require(feeds == 0, "RouterNetlist::wire: input pin already fed (" +
                          elements_[to].name + ")");
  ++feeds;
}

void RouterNetlist::wire_input(PortId port, ElementId to, Rail to_rail,
                               double length_cm) {
  require(port < port_names_.size(),
          "RouterNetlist::wire_input: port out of range");
  require(to < elements_.size(),
          "RouterNetlist::wire_input: element out of range");
  auto& feed = input_feeds_[port];
  require(feed.kind == PinTarget::Kind::None,
          "RouterNetlist::wire_input: port already wired");
  feed = PinTarget{PinTarget::Kind::Element, to, to_rail, length_cm};
  auto& feeds = input_pin_feeds_[2 * to + static_cast<std::size_t>(to_rail)];
  require(feeds == 0, "RouterNetlist::wire_input: input pin already fed (" +
                          elements_[to].name + ")");
  ++feeds;
}

void RouterNetlist::wire_output(ElementId from, Rail from_rail, PortId port,
                                double length_cm) {
  require(port < port_names_.size(),
          "RouterNetlist::wire_output: port out of range");
  auto& slot = exit_slot(from, from_rail);
  require(slot.kind == PinTarget::Kind::None,
          "RouterNetlist::wire_output: output pin already wired (" +
              elements_[from].name + ")");
  slot = PinTarget{PinTarget::Kind::OutputPort, port, Rail::A, length_cm};
}

ConnectionId RouterNetlist::add_connection(PortId in_port, PortId out_port,
                                           std::vector<ElementId> rings) {
  require(in_port < port_names_.size() && out_port < port_names_.size(),
          "RouterNetlist::add_connection: port out of range");
  for (const auto ring : rings) {
    require(ring < elements_.size(),
            "RouterNetlist::add_connection: ring id out of range");
    require(has_ring(elements_[ring].kind),
            "RouterNetlist::add_connection: element '" +
                elements_[ring].name + "' has no microring");
  }
  std::sort(rings.begin(), rings.end());
  for (const auto& existing : connections_)
    require(!(existing.in_port == in_port && existing.out_port == out_port),
            "RouterNetlist::add_connection: duplicate connection");
  connections_.push_back(RouterConnection{in_port, out_port, std::move(rings)});
  return static_cast<ConnectionId>(connections_.size() - 1);
}

const PinTarget& RouterNetlist::exit_of(ElementId elem, Rail rail) const {
  require(elem < elements_.size(), "RouterNetlist: element id out of range");
  return exits_[2 * elem + static_cast<std::size_t>(rail)];
}

const PinTarget& RouterNetlist::input_feed(PortId port) const {
  require(port < port_names_.size(), "RouterNetlist: port id out of range");
  return input_feeds_[port];
}

std::size_t RouterNetlist::ring_count() const noexcept {
  std::size_t n = 0;
  for (const auto& e : elements_)
    if (has_ring(e.kind)) ++n;
  return n;
}

std::size_t RouterNetlist::crossing_count() const noexcept {
  // CPSEs contain a waveguide crossing; plain crossings obviously do.
  std::size_t n = 0;
  for (const auto& e : elements_)
    if (e.kind == ElementKind::Crossing || e.kind == ElementKind::Cpse) ++n;
  return n;
}

void RouterNetlist::validate() const {
  require_model(!connections_.empty(),
                "RouterNetlist '" + name_ + "': no connections declared");
  for (PortId p = 0; p < port_names_.size(); ++p) {
    // Ports may legitimately be input-only or output-only (e.g. a
    // terminator port), but a port used by a connection must be wired.
    for (const auto& c : connections_) {
      if (c.in_port == p)
        require_model(input_feeds_[p].kind != PinTarget::Kind::None,
                      "RouterNetlist '" + name_ + "': input port " +
                          port_names_[p] + " used but unwired");
    }
  }
}

}  // namespace phonoc
