#include "router/crossbar.hpp"

#include <string>
#include <vector>

#include "router/ports.hpp"
#include "util/error.hpp"

namespace phonoc {

bool xy_legal_connection(PortId in_port, PortId out_port) {
  if (in_port == out_port) return false;
  if (in_port == kPortLocal || out_port == kPortLocal) return true;
  const bool in_is_y = in_port == kPortNorth || in_port == kPortSouth;
  if (in_is_y) return out_port == opposite_port(in_port);  // Y: straight only
  return true;  // X input: straight or any X->Y turn
}

RouterNetlist build_crossbar(const CrossbarOptions& options) {
  const auto n = options.ports;
  require(n >= 2, "build_crossbar: at least two ports required");
  require(!options.xy_legal_only || n == kStandardPortCount,
          "build_crossbar: XY restriction requires the standard 5 ports");

  std::vector<std::string> names;
  names.reserve(n);
  for (PortId p = 0; p < n; ++p) names.push_back(standard_port_name(p));
  RouterNetlist netlist(options.xy_legal_only ? "xy_crossbar" : "crossbar",
                        std::move(names));
  const double seg = options.internal_segment_cm;

  const auto supported = [&](PortId i, PortId j) {
    if (i == j) return false;  // no U-turns
    return !options.xy_legal_only || xy_legal_connection(i, j);
  };

  // Elements: grid[i][j] is the intersection of input row i (rail A,
  // flowing with increasing j) and output column j (rail B, flowing with
  // increasing i, exiting at the bottom into output port j).
  std::vector<std::vector<ElementId>> grid(n, std::vector<ElementId>(n));
  for (PortId i = 0; i < n; ++i) {
    for (PortId j = 0; j < n; ++j) {
      const auto kind =
          supported(i, j) ? ElementKind::Cpse : ElementKind::Crossing;
      grid[i][j] = netlist.add_element(
          kind, std::string(supported(i, j) ? "R" : "X") +
                    standard_port_name(i) + standard_port_name(j));
    }
  }

  for (PortId i = 0; i < n; ++i) {
    netlist.wire_input(i, grid[i][0], Rail::A, seg);
    for (PortId j = 0; j + 1 < n; ++j)
      netlist.wire(grid[i][j], Rail::A, grid[i][j + 1], Rail::A, seg);
    // Row ends in a terminator (default unwired pin).
  }
  for (PortId j = 0; j < n; ++j) {
    for (PortId i = 0; i + 1 < n; ++i)
      netlist.wire(grid[i][j], Rail::B, grid[i + 1][j], Rail::B, seg);
    netlist.wire_output(grid[n - 1][j], Rail::B, j, seg);
  }

  for (PortId i = 0; i < n; ++i)
    for (PortId j = 0; j < n; ++j)
      if (supported(i, j)) netlist.add_connection(i, j, {grid[i][j]});

  netlist.validate();
  return netlist;
}

}  // namespace phonoc
