#pragma once
/// \file elements.hpp
/// \brief Photonic building blocks and their state-dependent transfer
/// behaviour (paper Fig. 2 and Eq. 1a-1j).
///
/// Every switching element is modeled as a 2x2 coupler with two directed
/// rails, A and B. Each rail has an input and an output side. An element
/// either passes a signal along its own rail ("bar": A_in -> A_out) or
/// couples it onto the other rail ("cross": A_in -> B_out):
///
///   * Waveguide crossing: always bar, loss Lc; first-order leak Kc onto
///     the co-propagating output of the other rail (Eq. 1i/1j; the
///     counter-propagating arm is neglected, as is back-reflection).
///   * PPSE (parallel PSE, Fig. 2a/b): OFF = bar with Lp,off, leak
///     Kp,off to the other rail (Eq. 1a/1b); ON = cross with Lp,on, leak
///     Kp,on straight on (Eq. 1c/1d).
///   * CPSE (crossing PSE, Fig. 2c/d): OFF = bar with Lc,off, leak
///     (Kp,off + Kc) to the other rail (Eq. 1e/1f); ON = cross with
///     Lc,on, leak Kp,on straight on (Eq. 1g/1h).
///
/// The behaviour is symmetric in A and B (reciprocal device).

#include <cstdint>
#include <string>

#include "photonics/parameters.hpp"

namespace phonoc {

/// Photonic element species.
enum class ElementKind : std::uint8_t {
  Crossing,  ///< plain waveguide crossing, no microring
  Ppse,      ///< microring between two parallel waveguides
  Cpse,      ///< microring at a waveguide crossing
};

/// Resonance state of a microring (crossings are always Off).
enum class RingState : std::uint8_t { Off, On };

/// One of the two directed rails through a 2x2 element.
enum class Rail : std::uint8_t { A = 0, B = 1 };

[[nodiscard]] constexpr Rail other_rail(Rail r) noexcept {
  return r == Rail::A ? Rail::B : Rail::A;
}

[[nodiscard]] std::string to_string(ElementKind kind);
[[nodiscard]] std::string to_string(Rail rail);

/// Signal and first-order-leak response of an element for a signal
/// entering on `in` with the element in `state`.
struct ElementTransfer {
  Rail signal_out;     ///< rail whose output the signal exits on
  double signal_gain;  ///< linear power gain of the signal path (<= 1)
  Rail leak_out;       ///< rail whose output the leak exits on
  double leak_gain;    ///< linear power gain of the leak path (<= 1)
};

/// Evaluate the Eq. (1a)-(1j) transfer for one element traversal.
/// `state` must be Off for ElementKind::Crossing.
[[nodiscard]] ElementTransfer element_transfer(ElementKind kind,
                                               RingState state, Rail in,
                                               const LinearParameters& p);

/// True for elements that contain a microring (and hence have an On state
/// and participate in connection ring-sets).
[[nodiscard]] constexpr bool has_ring(ElementKind kind) noexcept {
  return kind != ElementKind::Crossing;
}

}  // namespace phonoc
