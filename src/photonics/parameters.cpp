#include "photonics/parameters.hpp"

#include <cmath>

#include "util/error.hpp"

namespace phonoc {

void PhysicalParameters::validate() const {
  const auto check = [](double db, const char* name) {
    require(std::isfinite(db), std::string("PhysicalParameters: ") + name +
                                   " must be finite");
    require(db <= 0.0, std::string("PhysicalParameters: ") + name +
                           " must be <= 0 dB (passive component)");
  };
  check(crossing_loss_db, "crossing_loss_db");
  check(propagation_loss_db_per_cm, "propagation_loss_db_per_cm");
  check(ppse_off_loss_db, "ppse_off_loss_db");
  check(ppse_on_loss_db, "ppse_on_loss_db");
  check(cpse_off_loss_db, "cpse_off_loss_db");
  check(cpse_on_loss_db, "cpse_on_loss_db");
  check(crossing_crosstalk_db, "crossing_crosstalk_db");
  check(pse_off_crosstalk_db, "pse_off_crosstalk_db");
  check(pse_on_crosstalk_db, "pse_on_crosstalk_db");
}

}  // namespace phonoc
