#include "photonics/elements.hpp"

#include "util/error.hpp"

namespace phonoc {

std::string to_string(ElementKind kind) {
  switch (kind) {
    case ElementKind::Crossing: return "crossing";
    case ElementKind::Ppse: return "ppse";
    case ElementKind::Cpse: return "cpse";
  }
  return "?";
}

std::string to_string(Rail rail) { return rail == Rail::A ? "A" : "B"; }

ElementTransfer element_transfer(ElementKind kind, RingState state, Rail in,
                                 const LinearParameters& p) {
  const Rail bar = in;               // continue on own rail
  const Rail cross = other_rail(in); // couple onto the other rail
  switch (kind) {
    case ElementKind::Crossing:
      require_model(state == RingState::Off,
                    "a plain crossing has no On state");
      // Eq. (1i): straight-through with Lc; Eq. (1j): Kc leaks onto the
      // other guide (only the co-propagating arm is tracked).
      return ElementTransfer{bar, p.crossing_loss, cross,
                             p.crossing_crosstalk};
    case ElementKind::Ppse:
      if (state == RingState::Off)
        // Eq. (1a)/(1b): through with Lp,off; Kp,off leaks to the drop.
        return ElementTransfer{bar, p.ppse_off_loss, cross,
                               p.pse_off_crosstalk};
      // Eq. (1c)/(1d): drop with Lp,on; Kp,on leaks to the through port.
      return ElementTransfer{cross, p.ppse_on_loss, bar, p.pse_on_crosstalk};
    case ElementKind::Cpse:
      if (state == RingState::Off)
        // Eq. (1e)/(1f): through with Lc,off; ring and crossing leaks
        // both land on the drop: Kp,off + Kc.
        return ElementTransfer{bar, p.cpse_off_loss, cross,
                               p.pse_off_crosstalk + p.crossing_crosstalk};
      // Eq. (1g)/(1h): drop with Lc,on; Kp,on leaks straight on.
      return ElementTransfer{cross, p.cpse_on_loss, bar, p.pse_on_crosstalk};
  }
  throw ModelError("element_transfer: unknown element kind");
}

}  // namespace phonoc
