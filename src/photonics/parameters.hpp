#pragma once
/// \file parameters.hpp
/// \brief Physical-layer loss and crosstalk coefficients (paper Table I).
///
/// All coefficients are expressed in dB (losses negative). The paper's
/// built-in values are the defaults; every field is user-overridable,
/// matching the tool's "physical parameters" library (Fig. 1, block 2).

#include "util/units.hpp"

namespace phonoc {

/// Loss / crosstalk parameters of the photonic building blocks.
struct PhysicalParameters {
  // --- Losses (dB, <= 0) -------------------------------------------------
  /// Crossing loss Lc: power lost traversing a waveguide crossing.
  double crossing_loss_db = -0.04;
  /// Propagation loss in silicon Lp, per centimetre of waveguide.
  double propagation_loss_db_per_cm = -0.274;
  /// PPSE through loss in OFF state, Lp,off.
  double ppse_off_loss_db = -0.005;
  /// PPSE drop loss in ON state, Lp,on.
  double ppse_on_loss_db = -0.5;
  /// CPSE through loss in OFF state, Lc,off.
  double cpse_off_loss_db = -0.045;
  /// CPSE drop loss in ON state, Lc,on.
  double cpse_on_loss_db = -0.5;

  // --- Crosstalk coefficients (dB, <= 0) ---------------------------------
  /// Crossing crosstalk Kc: fraction coupled into the crossing waveguide.
  double crossing_crosstalk_db = -40.0;
  /// PSE crosstalk in OFF state, Kp,off (applies to PPSE and CPSE rings).
  double pse_off_crosstalk_db = -20.0;
  /// PSE crosstalk in ON state, Kp,on.
  double pse_on_crosstalk_db = -25.0;

  /// Paper defaults (Table I).
  [[nodiscard]] static PhysicalParameters paper_defaults() noexcept {
    return PhysicalParameters{};
  }

  /// Throws InvalidArgument when any coefficient is positive (a gain) or
  /// non-finite; the model assumes passive photonic components.
  void validate() const;
};

/// Linear-domain view of PhysicalParameters, precomputed once per model
/// build so the hot evaluation path never calls pow().
struct LinearParameters {
  double crossing_loss;
  double ppse_off_loss;
  double ppse_on_loss;
  double cpse_off_loss;
  double cpse_on_loss;
  double crossing_crosstalk;
  double pse_off_crosstalk;
  double pse_on_crosstalk;
  /// dB/cm kept in dB form: propagation is applied per-length.
  double propagation_db_per_cm;

  [[nodiscard]] static LinearParameters from(
      const PhysicalParameters& p) noexcept {
    return LinearParameters{
        db_to_linear(p.crossing_loss_db),
        db_to_linear(p.ppse_off_loss_db),
        db_to_linear(p.ppse_on_loss_db),
        db_to_linear(p.cpse_off_loss_db),
        db_to_linear(p.cpse_on_loss_db),
        db_to_linear(p.crossing_crosstalk_db),
        db_to_linear(p.pse_off_crosstalk_db),
        db_to_linear(p.pse_on_crosstalk_db),
        p.propagation_loss_db_per_cm,
    };
  }

  /// Linear gain of `length_cm` of waveguide.
  [[nodiscard]] double propagation_gain(double length_cm) const noexcept {
    return db_to_linear(propagation_db_per_cm * length_cm);
  }
};

}  // namespace phonoc
