#pragma once
/// \file protocol.hpp
/// \brief Wire protocol of the phonocd mapping service.
///
/// Every message is one exec/serialize frame (length + FNV-1a checksum)
/// carried over a sched Connection — the service reuses the scheduler's
/// transport and framing wholesale; only the payload grammar is new.
/// Payloads are line-oriented text: a single header line, optionally
/// followed by a body that reuses the exec/serialize formats verbatim
/// (`write_spec` for requests, `write_cell_result` blocks for results),
/// so the bit-exact round-trip contract of the shard protocol carries
/// over unchanged.
///
/// Client -> server payloads:
///   hello phonoc-service v1 [client <name>]
///   request <id> deadline <seconds> max_cells <n> [priority <p>]\n<spec text>
///   evaluate <id> tiles <t0> <t1> ...\n<spec text>
///   stats
///   quit
///
/// Server -> client payloads:
///   hello phonoc-service v1
///   accepted <id> cells <n>
///   cell <id>\n<phonoc-cell block>
///   done <id> ok <n> failed <m>
///   rejected <id> <kind> <reason ...>
///   evaluation <id> fitness <f> snr_db <s> loss_db <l>
///   stats\n<metric value lines>
///   error <message>
///
/// Request ids are client-chosen opaque tokens (single line, no
/// whitespace, at most 64 bytes) echoed on every reply, so a client may
/// pipeline several requests down one connection and match the streamed
/// `cell` frames — which may arrive in any order within a request — by
/// id plus the cell's grid index. Exactly one terminal frame (`done` or
/// `rejected`) ends each accepted or refused request.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "topology/topology.hpp"

namespace phonoc {

/// Service handshake payload; both sides send it first. Prefix-matched
/// (like kSchedHello) so later revisions may append fields. The server
/// reads an optional `client <name>` suffix as the connection's
/// fairness identity (same syntax rules as a request id); connections
/// announcing the same name share one scheduler sub-queue.
inline constexpr const char* kServiceHello = "hello phonoc-service v1";
/// Client farewell: the daemon goes back to accepting instead of
/// logging a peer death.
inline constexpr const char* kServiceQuit = "quit";
/// Metrics snapshot request (no arguments).
inline constexpr const char* kServiceStats = "stats";
/// Metrics in Prometheus text exposition format: the phonocd snapshot
/// (phonocd_* families) plus the process-wide obs::MetricsRegistry
/// (phonoc_* instrumentation counters). Same `stats\n<body>` reply
/// frame, different body grammar.
inline constexpr const char* kServiceStatsPrometheus = "stats prometheus";

/// Why the broker refused a request (the token after `rejected <id>`).
enum class RejectKind {
  Overloaded,      ///< admission queue or outstanding-cell budget is full
  Budget,          ///< the grid exceeds the request's / server's max_cells
  Deadline,        ///< the request's deadline passed while it was queued
  Malformed,       ///< the request payload did not parse
  Shutdown,        ///< the broker is draining; no new work is admitted
  PerClientLimit,  ///< this client alone already fills its queue share
  Internal,        ///< request-level execution failure (see the reason)
};

[[nodiscard]] std::string_view reject_kind_token(RejectKind kind) noexcept;
/// Throws ParseError on an unknown token.
[[nodiscard]] RejectKind parse_reject_kind(std::string_view token);

/// Requested scheduling lane of a sweep request. `Auto` (the default,
/// and the only value old clients can send — the header field is
/// optional) routes by grid size: at most the broker's interactive
/// cell threshold goes to the interactive lane, anything larger to
/// bulk. Explicit values pin the lane; per-client fair queuing bounds
/// the damage a mislabelled request can do within its lane.
enum class RequestPriority { Auto, Interactive, Bulk };

[[nodiscard]] std::string_view priority_token(RequestPriority p) noexcept;
/// Throws ParseError on an unknown token.
[[nodiscard]] RequestPriority parse_priority(std::string_view token);

/// One mapping/sweep job: a full SweepSpec plus the per-request budget.
struct ServiceRequest {
  std::string id;
  /// Wall-clock budget in seconds from submission; a request still
  /// queued when it expires is shed with RejectKind::Deadline. 0 = none.
  double deadline_seconds = 0.0;
  /// Reject (RejectKind::Budget) when the expanded grid exceeds this
  /// many cells. 0 = no client-side cap (the server cap still applies).
  std::uint64_t max_cells = 0;
  /// Optional lane hint; written on the wire only when not Auto, so a
  /// default-priority request's bytes are identical to the pre-lane
  /// protocol.
  RequestPriority priority = RequestPriority::Auto;
  SweepSpec spec;
};

/// Single-mapping job: score one explicit assignment against the spec's
/// first (workload, topology, goal) coordinate. Answered synchronously
/// (no admission queue) through the same problem cache and memo.
struct EvaluateRequest {
  std::string id;
  std::vector<TileId> assignment;
  SweepSpec spec;
};

/// Throws ParseError unless `id` is a valid request id: non-empty, at
/// most 64 bytes, no whitespace or control characters.
void validate_request_id(std::string_view id);

[[nodiscard]] std::string write_request(const ServiceRequest& request);
[[nodiscard]] ServiceRequest parse_request(const std::string& payload);

[[nodiscard]] std::string write_evaluate(const EvaluateRequest& request);
[[nodiscard]] EvaluateRequest parse_evaluate(const std::string& payload);

// --- server-side reply builders --------------------------------------------

[[nodiscard]] std::string accepted_reply(const std::string& id,
                                         std::size_t cells);
[[nodiscard]] std::string cell_reply(const std::string& id,
                                     const CellResult& result);
[[nodiscard]] std::string done_reply(const std::string& id, std::size_t ok,
                                     std::size_t failed);
[[nodiscard]] std::string rejected_reply(const std::string& id,
                                         RejectKind kind,
                                         const std::string& reason);
[[nodiscard]] std::string evaluation_reply(const std::string& id,
                                           double fitness, double snr_db,
                                           double loss_db);
[[nodiscard]] std::string stats_reply(const std::string& text);
[[nodiscard]] std::string error_reply(const std::string& message);

// --- client-side reply parser ----------------------------------------------

/// One parsed server reply; which fields are meaningful follows `kind`.
struct ServiceReply {
  enum class Kind {
    Hello,       ///< handshake echo
    Accepted,    ///< `cells`
    Cell,        ///< `result` (parsed from the embedded cell block)
    Done,        ///< `ok`, `failed`
    Rejected,    ///< `reject`, `reason`
    Evaluation,  ///< `fitness`, `snr_db`, `loss_db`
    Stats,       ///< `body` (the metric/value text)
    Error,       ///< `body` (the message)
  };

  Kind kind = Kind::Error;
  std::string id;  ///< request id (empty for Hello/Stats/Error)
  std::size_t cells = 0;
  CellResult result;
  std::size_t ok = 0;
  std::size_t failed = 0;
  RejectKind reject = RejectKind::Internal;
  std::string reason;
  double fitness = 0.0;
  double snr_db = 0.0;
  double loss_db = 0.0;
  std::string body;
};

/// Parse any server payload; throws ParseError on malformed replies
/// (clients treat that like a corrupt stream and drop the connection).
[[nodiscard]] ServiceReply parse_reply(const std::string& payload);

}  // namespace phonoc
