#include "service/metrics.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

/// One row of the metric-descriptor table. Every rendering — the framed
/// `stats` text, the --stats-csv dump and the Prometheus exposition —
/// walks this table, so adding a field here is the single step that
/// keeps all three surfaces in sync (to_text/to_csv drifted apart when
/// they were separate hand-rolled lists).
struct MetricDescriptor {
  enum class Kind { Counter, Gauge };
  const char* name;  ///< snake_case; Prometheus prefixes `phonocd_`
  Kind kind;
  const char* help;
  bool integral;  ///< integral values render without a decimal point
  double (*value)(const MetricsSnapshot&);
};

constexpr MetricDescriptor kMetricTable[] = {
    {"queue_depth", MetricDescriptor::Kind::Gauge,
     "Requests admitted but not yet executing.", true,
     [](const MetricsSnapshot& s) { return double(s.queue_depth); }},
    {"queue_depth_interactive", MetricDescriptor::Kind::Gauge,
     "Queued requests in the interactive lane.", true,
     [](const MetricsSnapshot& s) {
       return double(s.queue_depth_interactive);
     }},
    {"queue_depth_bulk", MetricDescriptor::Kind::Gauge,
     "Queued requests in the bulk lane.", true,
     [](const MetricsSnapshot& s) { return double(s.queue_depth_bulk); }},
    {"in_flight_cells", MetricDescriptor::Kind::Gauge,
     "Unfinished cells across all executing requests.", true,
     [](const MetricsSnapshot& s) { return double(s.in_flight_cells); }},
    {"in_flight_requests", MetricDescriptor::Kind::Gauge,
     "Requests currently executing on broker workers.", true,
     [](const MetricsSnapshot& s) { return double(s.in_flight_requests); }},
    {"uptime_seconds", MetricDescriptor::Kind::Gauge,
     "Seconds since the broker started.", false,
     [](const MetricsSnapshot& s) { return s.uptime_seconds; }},
    {"connections", MetricDescriptor::Kind::Counter,
     "Client connections accepted.", true,
     [](const MetricsSnapshot& s) { return double(s.connections); }},
    {"requests_accepted", MetricDescriptor::Kind::Counter,
     "Requests past admission control.", true,
     [](const MetricsSnapshot& s) { return double(s.requests_accepted); }},
    {"requests_completed", MetricDescriptor::Kind::Counter,
     "Requests that ran to completion.", true,
     [](const MetricsSnapshot& s) { return double(s.requests_completed); }},
    {"requests_failed", MetricDescriptor::Kind::Counter,
     "Accepted requests that died executing.", true,
     [](const MetricsSnapshot& s) { return double(s.requests_failed); }},
    {"requests_canceled", MetricDescriptor::Kind::Counter,
     "Requests whose client vanished mid-stream.", true,
     [](const MetricsSnapshot& s) { return double(s.requests_canceled); }},
    {"shed_overloaded", MetricDescriptor::Kind::Counter,
     "Requests shed: admission queue full.", true,
     [](const MetricsSnapshot& s) { return double(s.shed_overloaded); }},
    {"shed_budget", MetricDescriptor::Kind::Counter,
     "Requests shed: cell budget exceeded.", true,
     [](const MetricsSnapshot& s) { return double(s.shed_budget); }},
    {"shed_deadline", MetricDescriptor::Kind::Counter,
     "Requests shed: deadline passed while queued.", true,
     [](const MetricsSnapshot& s) { return double(s.shed_deadline); }},
    {"shed_shutdown", MetricDescriptor::Kind::Counter,
     "Requests shed: broker draining for shutdown.", true,
     [](const MetricsSnapshot& s) { return double(s.shed_shutdown); }},
    {"shed_per_client", MetricDescriptor::Kind::Counter,
     "Requests shed: the client's own queue share is full.", true,
     [](const MetricsSnapshot& s) { return double(s.shed_per_client); }},
    {"requests_interactive", MetricDescriptor::Kind::Counter,
     "Requests routed to the interactive lane.", true,
     [](const MetricsSnapshot& s) { return double(s.requests_interactive); }},
    {"requests_bulk", MetricDescriptor::Kind::Counter,
     "Requests routed to the bulk lane.", true,
     [](const MetricsSnapshot& s) { return double(s.requests_bulk); }},
    {"interactive_overtakes", MetricDescriptor::Kind::Counter,
     "Interactive picks that jumped queued bulk requests.", true,
     [](const MetricsSnapshot& s) {
       return double(s.interactive_overtakes);
     }},
    {"requests_malformed", MetricDescriptor::Kind::Counter,
     "Frames that failed to parse as requests.", true,
     [](const MetricsSnapshot& s) { return double(s.requests_malformed); }},
    {"stats_requests", MetricDescriptor::Kind::Counter,
     "Stats scrapes served (framed and HTTP).", true,
     [](const MetricsSnapshot& s) { return double(s.stats_requests); }},
    {"single_evaluations", MetricDescriptor::Kind::Counter,
     "Single-mapping evaluation requests served.", true,
     [](const MetricsSnapshot& s) { return double(s.single_evaluations); }},
    {"cells_ok", MetricDescriptor::Kind::Counter,
     "Sweep cells that evaluated successfully.", true,
     [](const MetricsSnapshot& s) { return double(s.cells_ok); }},
    {"cells_failed", MetricDescriptor::Kind::Counter,
     "Sweep cells that failed to evaluate.", true,
     [](const MetricsSnapshot& s) { return double(s.cells_failed); }},
    {"evaluator_cache_hits", MetricDescriptor::Kind::Counter,
     "Evaluator pool cache hits.", true,
     [](const MetricsSnapshot& s) { return double(s.evaluator_cache_hits); }},
    {"evaluator_cache_misses", MetricDescriptor::Kind::Counter,
     "Evaluator pool cache misses.", true,
     [](const MetricsSnapshot& s) {
       return double(s.evaluator_cache_misses);
     }},
    {"evaluator_cache_evictions", MetricDescriptor::Kind::Counter,
     "Evaluator pool cache evictions.", true,
     [](const MetricsSnapshot& s) {
       return double(s.evaluator_cache_evictions);
     }},
    {"problem_cache_hits", MetricDescriptor::Kind::Counter,
     "Parsed-problem cache hits.", true,
     [](const MetricsSnapshot& s) { return double(s.problem_cache_hits); }},
    {"problem_cache_misses", MetricDescriptor::Kind::Counter,
     "Parsed-problem cache misses.", true,
     [](const MetricsSnapshot& s) { return double(s.problem_cache_misses); }},
    {"problem_cache_evictions", MetricDescriptor::Kind::Counter,
     "Parsed-problem cache evictions.", true,
     [](const MetricsSnapshot& s) {
       return double(s.problem_cache_evictions);
     }},
    {"wall_p50_seconds", MetricDescriptor::Kind::Gauge,
     "Median wall time of completed requests.", false,
     [](const MetricsSnapshot& s) { return s.wall_p50_seconds; }},
    {"wall_p90_seconds", MetricDescriptor::Kind::Gauge,
     "90th-percentile wall time of completed requests.", false,
     [](const MetricsSnapshot& s) { return s.wall_p90_seconds; }},
    {"wall_p99_seconds", MetricDescriptor::Kind::Gauge,
     "99th-percentile wall time of completed requests.", false,
     [](const MetricsSnapshot& s) { return s.wall_p99_seconds; }},
    {"wall_max_seconds", MetricDescriptor::Kind::Gauge,
     "Slowest completed request.", false,
     [](const MetricsSnapshot& s) { return s.wall_max_seconds; }},
    {"wall_mean_seconds", MetricDescriptor::Kind::Gauge,
     "Mean wall time of completed requests.", false,
     [](const MetricsSnapshot& s) { return s.wall_mean_seconds; }},
    {"wait_interactive_p50_seconds", MetricDescriptor::Kind::Gauge,
     "Median interactive-lane queue wait.", false,
     [](const MetricsSnapshot& s) { return s.wait_interactive_p50_seconds; }},
    {"wait_interactive_p99_seconds", MetricDescriptor::Kind::Gauge,
     "99th-percentile interactive-lane queue wait.", false,
     [](const MetricsSnapshot& s) { return s.wait_interactive_p99_seconds; }},
    {"wait_bulk_p50_seconds", MetricDescriptor::Kind::Gauge,
     "Median bulk-lane queue wait.", false,
     [](const MetricsSnapshot& s) { return s.wait_bulk_p50_seconds; }},
    {"wait_bulk_p99_seconds", MetricDescriptor::Kind::Gauge,
     "99th-percentile bulk-lane queue wait.", false,
     [](const MetricsSnapshot& s) { return s.wait_bulk_p99_seconds; }},
};

std::string plain_value(const MetricDescriptor& metric,
                        const MetricsSnapshot& snapshot) {
  const double value = metric.value(snapshot);
  if (metric.integral) return std::to_string(std::uint64_t(value));
  return format_double(value);
}

}  // namespace

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  for (const auto& metric : kMetricTable)
    out << metric.name << ' ' << plain_value(metric, *this) << '\n';
  return out.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream out;
  out << "metric,value\n";
  for (const auto& metric : kMetricTable)
    out << metric.name << ',' << plain_value(metric, *this) << '\n';
  return out.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& metric : kMetricTable) {
    const std::string name = std::string("phonocd_") + metric.name;
    const bool counter = metric.kind == MetricDescriptor::Kind::Counter;
    obs::append_prometheus_header(out, name, metric.help,
                                  counter ? "counter" : "gauge");
    if (metric.integral) {
      obs::append_prometheus_sample(out, name, std::string(),
                                    std::uint64_t(metric.value(*this)));
    } else {
      obs::append_prometheus_sample(out, name, std::string(),
                                    metric.value(*this));
    }
  }
  return out;
}

ServiceMetrics::ServiceMetrics() = default;

void ServiceMetrics::on_connection() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.connections;
}

void ServiceMetrics::on_stats_request() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.stats_requests;
}

void ServiceMetrics::on_malformed() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_malformed;
}

void ServiceMetrics::on_accepted(bool interactive) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_accepted;
  if (interactive)
    ++counters_.requests_interactive;
  else
    ++counters_.requests_bulk;
}

void ServiceMetrics::on_shed_overloaded() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_overloaded;
}

void ServiceMetrics::on_shed_budget() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_budget;
}

void ServiceMetrics::on_shed_deadline() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_deadline;
}

void ServiceMetrics::on_shed_shutdown() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_shutdown;
}

void ServiceMetrics::on_shed_per_client() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_per_client;
}

void ServiceMetrics::on_dequeue(bool interactive, double wait_seconds,
                                bool overtook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (interactive) {
    wait_interactive_hist_.add(wait_seconds);
    if (overtook) ++counters_.interactive_overtakes;
  } else {
    wait_bulk_hist_.add(wait_seconds);
  }
}

void ServiceMetrics::on_completed(std::size_t cells_ok,
                                  std::size_t cells_failed,
                                  double wall_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_completed;
  counters_.cells_ok += cells_ok;
  counters_.cells_failed += cells_failed;
  wall_hist_.add(wall_seconds);
  wall_stats_.add(wall_seconds);
}

void ServiceMetrics::on_request_failed() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_failed;
}

void ServiceMetrics::on_request_canceled(std::size_t cells_ok,
                                         std::size_t cells_failed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_canceled;
  counters_.cells_ok += cells_ok;
  counters_.cells_failed += cells_failed;
}

void ServiceMetrics::on_evaluation() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.single_evaluations;
}

void ServiceMetrics::on_evaluator_counters(std::uint64_t hits,
                                           std::uint64_t misses,
                                           std::uint64_t evictions) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.evaluator_cache_hits += hits;
  counters_.evaluator_cache_misses += misses;
  counters_.evaluator_cache_evictions += evictions;
}

MetricsSnapshot ServiceMetrics::snapshot(const Gauges& gauges) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap = counters_;
  snap.queue_depth = gauges.queue_depth;
  snap.queue_depth_interactive = gauges.queue_depth_interactive;
  snap.queue_depth_bulk = gauges.queue_depth_bulk;
  snap.in_flight_cells = gauges.in_flight_cells;
  snap.in_flight_requests = gauges.in_flight_requests;
  snap.uptime_seconds = uptime_.elapsed_seconds();
  snap.wall_p50_seconds = wall_hist_.quantile(0.5);
  snap.wall_p90_seconds = wall_hist_.quantile(0.9);
  snap.wall_p99_seconds = wall_hist_.quantile(0.99);
  snap.wall_max_seconds = wall_stats_.max();
  snap.wall_mean_seconds = wall_stats_.mean();
  snap.wait_interactive_p50_seconds = wait_interactive_hist_.quantile(0.5);
  snap.wait_interactive_p99_seconds = wait_interactive_hist_.quantile(0.99);
  snap.wait_bulk_p50_seconds = wait_bulk_hist_.quantile(0.5);
  snap.wait_bulk_p99_seconds = wait_bulk_hist_.quantile(0.99);
  return snap;
}

}  // namespace phonoc
