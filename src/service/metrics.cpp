#include "service/metrics.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace phonoc {
namespace {

template <typename Emit>
void each_metric(const MetricsSnapshot& s, Emit&& emit) {
  emit("queue_depth", std::to_string(s.queue_depth));
  emit("in_flight_cells", std::to_string(s.in_flight_cells));
  emit("uptime_seconds", format_double(s.uptime_seconds));
  emit("connections", std::to_string(s.connections));
  emit("requests_accepted", std::to_string(s.requests_accepted));
  emit("requests_completed", std::to_string(s.requests_completed));
  emit("requests_failed", std::to_string(s.requests_failed));
  emit("requests_canceled", std::to_string(s.requests_canceled));
  emit("shed_overloaded", std::to_string(s.shed_overloaded));
  emit("shed_budget", std::to_string(s.shed_budget));
  emit("shed_deadline", std::to_string(s.shed_deadline));
  emit("shed_shutdown", std::to_string(s.shed_shutdown));
  emit("requests_malformed", std::to_string(s.requests_malformed));
  emit("stats_requests", std::to_string(s.stats_requests));
  emit("single_evaluations", std::to_string(s.single_evaluations));
  emit("cells_ok", std::to_string(s.cells_ok));
  emit("cells_failed", std::to_string(s.cells_failed));
  emit("evaluator_cache_hits", std::to_string(s.evaluator_cache_hits));
  emit("evaluator_cache_misses", std::to_string(s.evaluator_cache_misses));
  emit("evaluator_cache_evictions",
       std::to_string(s.evaluator_cache_evictions));
  emit("problem_cache_hits", std::to_string(s.problem_cache_hits));
  emit("problem_cache_misses", std::to_string(s.problem_cache_misses));
  emit("problem_cache_evictions", std::to_string(s.problem_cache_evictions));
  emit("wall_p50_seconds", format_double(s.wall_p50_seconds));
  emit("wall_p90_seconds", format_double(s.wall_p90_seconds));
  emit("wall_p99_seconds", format_double(s.wall_p99_seconds));
  emit("wall_max_seconds", format_double(s.wall_max_seconds));
  emit("wall_mean_seconds", format_double(s.wall_mean_seconds));
}

}  // namespace

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  each_metric(*this, [&](const char* name, const std::string& value) {
    out << name << ' ' << value << '\n';
  });
  return out.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream out;
  out << "metric,value\n";
  each_metric(*this, [&](const char* name, const std::string& value) {
    out << name << ',' << value << '\n';
  });
  return out.str();
}

ServiceMetrics::ServiceMetrics() = default;

void ServiceMetrics::on_connection() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.connections;
}

void ServiceMetrics::on_stats_request() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.stats_requests;
}

void ServiceMetrics::on_malformed() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_malformed;
}

void ServiceMetrics::on_accepted() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_accepted;
}

void ServiceMetrics::on_shed_overloaded() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_overloaded;
}

void ServiceMetrics::on_shed_budget() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_budget;
}

void ServiceMetrics::on_shed_deadline() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_deadline;
}

void ServiceMetrics::on_shed_shutdown() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed_shutdown;
}

void ServiceMetrics::on_completed(std::size_t cells_ok,
                                  std::size_t cells_failed,
                                  double wall_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_completed;
  counters_.cells_ok += cells_ok;
  counters_.cells_failed += cells_failed;
  wall_hist_.add(wall_seconds);
  wall_stats_.add(wall_seconds);
}

void ServiceMetrics::on_request_failed() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_failed;
}

void ServiceMetrics::on_request_canceled(std::size_t cells_ok,
                                         std::size_t cells_failed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests_canceled;
  counters_.cells_ok += cells_ok;
  counters_.cells_failed += cells_failed;
}

void ServiceMetrics::on_evaluation() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.single_evaluations;
}

void ServiceMetrics::on_evaluator_counters(std::uint64_t hits,
                                           std::uint64_t misses,
                                           std::uint64_t evictions) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.evaluator_cache_hits += hits;
  counters_.evaluator_cache_misses += misses;
  counters_.evaluator_cache_evictions += evictions;
}

MetricsSnapshot ServiceMetrics::snapshot(std::size_t queue_depth,
                                         std::size_t in_flight_cells) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap = counters_;
  snap.queue_depth = queue_depth;
  snap.in_flight_cells = in_flight_cells;
  snap.uptime_seconds = uptime_.elapsed_seconds();
  snap.wall_p50_seconds = wall_hist_.quantile(0.5);
  snap.wall_p90_seconds = wall_hist_.quantile(0.9);
  snap.wall_p99_seconds = wall_hist_.quantile(0.99);
  snap.wall_max_seconds = wall_stats_.max();
  snap.wall_mean_seconds = wall_stats_.mean();
  return snap;
}

}  // namespace phonoc
