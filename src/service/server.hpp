#pragma once
/// \file server.hpp
/// \brief Connection handling of the phonocd mapping service.
///
/// serve_client() is the per-connection loop: handshake, then request /
/// evaluate / stats frames in, streamed cell frames and terminal
/// done/rejected frames out, until "quit" or the peer disconnects. It
/// plugs any sched Connection into a shared RequestBroker, so tests
/// drive it over socketpairs while phonocd runs it on accepted TCP
/// sockets. ServiceServer is the accept loop that phonocd wraps: one
/// handler thread per connection, all multiplexed onto one broker.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/transport.hpp"
#include "service/broker.hpp"

namespace phonoc {

struct ServiceServerOptions {
  /// Handshake deadline; a peer that dials but never says hello is
  /// dropped after this long.
  double handshake_timeout_seconds = 30.0;
  /// How long to wait for the next request frame before giving up on
  /// the peer; <= 0 waits forever (the daemon default — clients say
  /// "quit").
  double idle_timeout_seconds = 0.0;
};

/// Serve one client connection to completion; returns the number of
/// request frames handled (requests, evaluates and stats). Never
/// throws: protocol errors are answered with an `error` frame (best
/// effort) and end the connection. Does not return while any accepted
/// job of this connection is still running — a vanished client cancels
/// its in-flight request (the broker skips the remaining cells) rather
/// than orphaning callbacks into a dead connection.
std::size_t serve_client(Connection& conn, RequestBroker& broker,
                         const ServiceServerOptions& options = {});

/// The phonocd accept loop: owns the listener, the broker and one
/// handler thread per live connection.
class ServiceServer {
 public:
  /// Binds and listens immediately (port 0 picks an ephemeral port —
  /// read it back with port()).
  ServiceServer(std::uint16_t port, BrokerOptions broker_options,
                ServiceServerOptions options = {});
  /// Joins every handler thread; the broker drains afterwards (member
  /// order), shedding still-queued jobs with RejectKind::Shutdown.
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }
  [[nodiscard]] RequestBroker& broker() noexcept { return broker_; }

  /// Accept and serve until `max_connections` have been handled
  /// (0 = forever) or the listener dies. Blocking; phonocd's main loop.
  void run(std::size_t max_connections = 0);

 private:
  void reap_finished();

  BrokerOptions broker_options_;
  ServiceServerOptions options_;
  RequestBroker broker_;
  TcpListener listener_;

  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;  ///< set on handler exit
  };
  std::mutex handlers_mutex_;
  std::vector<Handler> handlers_;
};

}  // namespace phonoc
