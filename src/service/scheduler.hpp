#pragma once
/// \file scheduler.hpp
/// \brief Weighted-fair admission scheduling of the phonocd broker.
///
/// FairScheduler replaces the broker's single FIFO deque: queued
/// requests live in per-client sub-queues inside two priority lanes,
/// and broker workers pick the next job with a deficit-round-robin
/// (DRR) walk keyed by request cost (expanded grid cells).
///
///  * **Lanes** — `Interactive` is always drained before `Bulk`, so
///    cheap requests (single evaluations, small grids under the
///    broker's cell threshold) overtake long sweeps instead of
///    head-of-line-blocking behind them. Starvation of the bulk lane is
///    bounded by construction: interactive requests are small by the
///    routing rule, so the lane empties between bulk picks.
///  * **DRR within a lane** — each backlogged client holds a deficit
///    counter. A visit tops the deficit up by `quantum_cells` once,
///    then serves that client's FIFO sub-queue while the deficit covers
///    the front job's cost; when it no longer does, the cursor moves on
///    and the remaining deficit is kept. Over any backlog interval every
///    client therefore receives ~quantum cells of service per round
///    regardless of how it slices its work — one client queueing eight
///    sweeps cannot crowd out a client queueing one. A job costing more
///    than the quantum accumulates deficit across rounds and is served
///    eventually (no starvation: every full round grows each deficit by
///    the quantum). A client whose sub-queue empties forfeits its
///    deficit, so idleness earns no credit.
///
/// The scheduler is a plain data structure: NOT thread-safe, the broker
/// calls it under its own mutex. It is a template so the DRR mechanics
/// can be unit-tested deterministically with trivial payloads
/// (tests/test_service.cpp) while the broker instantiates it with its
/// internal Job type.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace phonoc {

/// Priority lane of a queued request (see lane routing in broker.hpp).
enum class ServiceLane { Interactive, Bulk };

template <typename JobT>
class FairScheduler {
 public:
  /// `quantum_cells` is the per-visit deficit top-up: the amount of
  /// work (in cells) one client may consume before the round-robin
  /// cursor moves to the next backlogged client.
  explicit FairScheduler(std::size_t quantum_cells = 32)
      : quantum_(quantum_cells == 0 ? 1 : quantum_cells) {}

  /// Enqueue one job of `cost` cells for `client` into `lane`. The new
  /// client (if it was idle) joins the ring just behind the cursor, so
  /// it is served after every currently backlogged client finishes its
  /// in-progress visit — arrival cannot jump an ongoing round.
  void push(ServiceLane lane, const std::string& client, std::size_t cost,
            JobT job) {
    LaneState& state = lane_state(lane);
    auto it = state.index.find(client);
    if (it == state.index.end()) {
      // Insert before the cursor: last position of the current round.
      const auto ring_it =
          state.ring.emplace(state.cursor_valid ? state.cursor
                                                : state.ring.end());
      ring_it->client = client;
      if (!state.cursor_valid) {
        state.cursor = ring_it;
        state.cursor_valid = true;
      }
      it = state.index.emplace(client, ring_it).first;
    }
    it->second->jobs.emplace_back(cost, std::move(job));
    ++state.count;
    ++depth_[client];
  }

  /// Dequeue the next job: the interactive lane strictly first, DRR
  /// within the lane. Returns nullopt when both lanes are empty.
  [[nodiscard]] std::optional<JobT> pop() {
    if (auto job = pop_lane(interactive_)) return job;
    return pop_lane(bulk_);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return interactive_.count + bulk_.count;
  }
  [[nodiscard]] std::size_t size(ServiceLane lane) const noexcept {
    return lane == ServiceLane::Interactive ? interactive_.count
                                            : bulk_.count;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Queued jobs of one client, summed across both lanes (the broker's
  /// per-client admission cap).
  [[nodiscard]] std::size_t client_depth(const std::string& client) const {
    const auto it = depth_.find(client);
    return it == depth_.end() ? 0 : it->second;
  }

  /// Remove and return every queued job, interactive lane first, each
  /// client's jobs in FIFO order (the shutdown drain: every job still
  /// gets its structured rejection).
  [[nodiscard]] std::vector<JobT> drain() {
    std::vector<JobT> all;
    all.reserve(size());
    for (LaneState* state : {&interactive_, &bulk_}) {
      for (auto& queue : state->ring)
        for (auto& [cost, job] : queue.jobs) all.push_back(std::move(job));
      state->ring.clear();
      state->index.clear();
      state->count = 0;
      state->cursor_valid = false;
    }
    depth_.clear();
    return all;
  }

 private:
  struct ClientQueue {
    std::string client;
    std::deque<std::pair<std::size_t, JobT>> jobs;  ///< {cost, job} FIFO
    std::size_t deficit = 0;
    bool visited = false;  ///< quantum already granted this visit
  };
  using Ring = std::list<ClientQueue>;

  struct LaneState {
    Ring ring;  ///< backlogged clients in round-robin order
    typename Ring::iterator cursor;
    bool cursor_valid = false;
    std::map<std::string, typename Ring::iterator> index;
    std::size_t count = 0;  ///< jobs across the ring
  };

  LaneState& lane_state(ServiceLane lane) noexcept {
    return lane == ServiceLane::Interactive ? interactive_ : bulk_;
  }

  void advance(LaneState& state) {
    if (++state.cursor == state.ring.end()) state.cursor = state.ring.begin();
  }

  std::optional<JobT> pop_lane(LaneState& state) {
    if (state.count == 0) return std::nullopt;
    // Terminates: every full pass over the ring grows each backlogged
    // client's deficit by the quantum, so some front job becomes
    // affordable after at most ceil(max_cost / quantum) passes.
    for (;;) {
      ClientQueue& queue = *state.cursor;
      if (!queue.visited) {
        queue.deficit += quantum_;
        queue.visited = true;
      }
      const std::size_t cost = queue.jobs.front().first;
      if (queue.deficit >= cost) {
        queue.deficit -= cost;
        JobT job = std::move(queue.jobs.front().second);
        queue.jobs.pop_front();
        --state.count;
        if (--depth_[queue.client] == 0) depth_.erase(queue.client);
        if (queue.jobs.empty()) {
          // An emptied client leaves the ring and forfeits its deficit.
          state.index.erase(queue.client);
          const auto dead = state.cursor;
          advance(state);
          state.ring.erase(dead);
          if (state.ring.empty()) state.cursor_valid = false;
        }
        // Cursor stays (visited still set): the next pop continues this
        // client's burst while its deficit covers the next job.
        return job;
      }
      queue.visited = false;  // deficit kept for the next round
      advance(state);
    }
  }

  std::size_t quantum_;
  LaneState interactive_;
  LaneState bulk_;
  std::map<std::string, std::size_t> depth_;  ///< per client, both lanes
};

}  // namespace phonoc
