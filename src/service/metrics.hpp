#pragma once
/// \file metrics.hpp
/// \brief The phonocd metrics surface.
///
/// ServiceMetrics is the thread-safe accumulator the broker and server
/// feed; MetricsSnapshot is the immutable copy handed out to the framed
/// `stats` request and the `--stats-csv` dump. Wall-time quantiles come
/// from the existing fixed-bin Histogram (util/stats.hpp), so the
/// snapshot stays constant-size however many requests the daemon has
/// served. The full metric catalog is documented in
/// src/service/README.md.

#include <cstdint>
#include <mutex>
#include <string>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace phonoc {

/// Point-in-time copy of every service metric. Counters are monotonic
/// over the daemon's lifetime; gauges (queue_depth, in_flight_cells)
/// are sampled at snapshot time by the broker.
struct MetricsSnapshot {
  // gauges
  std::size_t queue_depth = 0;
  std::size_t queue_depth_interactive = 0;
  std::size_t queue_depth_bulk = 0;
  std::size_t in_flight_cells = 0;
  std::size_t in_flight_requests = 0;
  double uptime_seconds = 0.0;
  // connection / request counters
  std::uint64_t connections = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;    ///< accepted but died executing
  std::uint64_t requests_canceled = 0;  ///< client vanished mid-stream
  std::uint64_t shed_overloaded = 0;
  std::uint64_t shed_budget = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t shed_per_client = 0;
  std::uint64_t requests_malformed = 0;
  // lane routing / fairness
  std::uint64_t requests_interactive = 0;  ///< admitted into the fast lane
  std::uint64_t requests_bulk = 0;         ///< admitted into the bulk lane
  /// Interactive dequeues that jumped ahead of >= 1 queued bulk request.
  std::uint64_t interactive_overtakes = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t single_evaluations = 0;
  // cell counters
  std::uint64_t cells_ok = 0;
  std::uint64_t cells_failed = 0;
  // cross-request reuse
  std::uint64_t evaluator_cache_hits = 0;
  std::uint64_t evaluator_cache_misses = 0;
  std::uint64_t evaluator_cache_evictions = 0;
  std::uint64_t problem_cache_hits = 0;
  std::uint64_t problem_cache_misses = 0;
  std::uint64_t problem_cache_evictions = 0;
  // per-request wall time (completed requests only)
  double wall_p50_seconds = 0.0;
  double wall_p90_seconds = 0.0;
  double wall_p99_seconds = 0.0;
  double wall_max_seconds = 0.0;
  double wall_mean_seconds = 0.0;
  // per-lane queue-wait time (submit -> dequeue, every executed request)
  double wait_interactive_p50_seconds = 0.0;
  double wait_interactive_p99_seconds = 0.0;
  double wait_bulk_p50_seconds = 0.0;
  double wait_bulk_p99_seconds = 0.0;

  /// `<metric> <value>` lines (the framed `stats` reply body).
  [[nodiscard]] std::string to_text() const;
  /// `metric,value` CSV with a header row (the --stats-csv dump).
  [[nodiscard]] std::string to_csv() const;
  /// Prometheus text exposition (`# HELP`/`# TYPE` + samples) with a
  /// `phonocd_` name prefix — the body of the framed `stats prometheus`
  /// reply and the `--prom-port` HTTP scrape. All three renderings are
  /// generated from one metric-descriptor table (metrics.cpp), so they
  /// cannot drift apart again.
  [[nodiscard]] std::string to_prometheus() const;
};

/// Thread-safe metric accumulator (one per broker). All methods may be
/// called concurrently from connection threads and cell workers.
class ServiceMetrics {
 public:
  ServiceMetrics();

  void on_connection();
  void on_stats_request();
  void on_malformed();
  /// `interactive` is the admitted request's routed lane.
  void on_accepted(bool interactive);
  void on_shed_overloaded();
  void on_shed_budget();
  void on_shed_deadline();
  void on_shed_shutdown();
  void on_shed_per_client();
  /// A broker worker dequeued a request after `wait_seconds` in its
  /// lane; `overtook` marks an interactive pick that jumped ahead of at
  /// least one queued bulk request (the fairness counter).
  void on_dequeue(bool interactive, double wait_seconds, bool overtook);
  void on_completed(std::size_t cells_ok, std::size_t cells_failed,
                    double wall_seconds);
  void on_request_failed();
  void on_request_canceled(std::size_t cells_ok, std::size_t cells_failed);
  void on_evaluation();
  /// Fold one finished cell's evaluator counter deltas in.
  void on_evaluator_counters(std::uint64_t hits, std::uint64_t misses,
                             std::uint64_t evictions);

  /// The live gauges only the broker can sample (its queue and
  /// in-flight ledgers), handed into snapshot().
  struct Gauges {
    std::size_t queue_depth = 0;
    std::size_t queue_depth_interactive = 0;
    std::size_t queue_depth_bulk = 0;
    std::size_t in_flight_cells = 0;
    std::size_t in_flight_requests = 0;
  };

  /// Snapshot the counters; the caller supplies the gauges it owns and
  /// fills the problem-cache counters from ServiceCache::counters().
  [[nodiscard]] MetricsSnapshot snapshot(const Gauges& gauges) const;

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot counters_;  ///< gauges/quantiles unused; filled on demand
  /// Per-request wall-time distribution: 600 x 100ms bins over [0, 60s);
  /// slower requests land in the overflow bin and quantiles saturate at
  /// 60s, which is all a load dashboard needs.
  Histogram wall_hist_{0.0, 60.0, 600};
  RunningStats wall_stats_;
  /// Per-lane queue-wait distributions: 1000 x 10ms bins over [0, 10s)
  /// — fine enough to see an interactive request stuck behind a bulk
  /// pick, saturating at 10s.
  Histogram wait_interactive_hist_{0.0, 10.0, 1000};
  Histogram wait_bulk_hist_{0.0, 10.0, 1000};
  Timer uptime_;
};

}  // namespace phonoc
