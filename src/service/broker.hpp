#pragma once
/// \file broker.hpp
/// \brief The RequestBroker: admission control and request execution.
///
/// One broker multiplexes every client connection of a phonocd daemon
/// onto one shared BatchEngine configuration (any backend). Admission
/// is bounded and sheds explicitly: a request that would exceed the
/// queue depth or the outstanding-cell budget is rejected *immediately*
/// with a structured RejectKind::Overloaded answer — the service never
/// queues unboundedly and never silently drops work. Accepted requests
/// run one at a time in submission order on a dedicated execution
/// thread; within a request, cells fan out over the broker's persistent
/// thread pool (InProcess) or the configured ForkExec/Remote backend.
///
/// Event contract, per submit() call:
///  * rejected at admission — submit() returns the rejection; no events
///    fire (the caller already holds the answer to send);
///  * accepted — `on_accepted` fires synchronously inside submit()
///    (before the job can start, so the `accepted` frame is on the wire
///    ahead of any `cell` frame), then exactly one terminal event fires
///    later from the execution thread: `on_done` (the request ran —
///    even if the client vanished mid-stream) or `on_reject` (shed from
///    the queue on deadline/shutdown, or a request-level execution
///    failure).
///
/// Bit-identity: the InProcess path runs the exact per-cell code of
/// BatchEngine (same Engine/Evaluator construction, same seeds); the
/// cross-request problem cache and memo bank only shift physical cost
/// (see service/cache.hpp), so streamed results are bit-identical to an
/// in-process BatchEngine::run of the same spec.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "exec/batch_engine.hpp"
#include "exec/thread_pool.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "util/timer.hpp"

namespace phonoc {

struct BrokerOptions {
  /// Backend, worker count and evaluator knobs of the shared engine.
  BatchOptions batch{};
  /// Requests allowed to wait behind the running one; a submit that
  /// finds the queue at this depth is shed (RejectKind::Overloaded).
  std::size_t max_queue_depth = 8;
  /// Estimated outstanding cost cap: queued cells plus the unfinished
  /// cells of the running request. A request whose grid would push the
  /// total beyond this is shed (RejectKind::Overloaded). 0 = no cap.
  std::size_t max_outstanding_cells = 4096;
  /// Server-side per-request grid cap (RejectKind::Budget beyond it);
  /// 0 = no cap. The client's own ServiceRequest::max_cells is enforced
  /// independently.
  std::uint64_t max_cells_per_request = 0;
  /// Cross-request reuse (see ServiceCache::Options).
  ServiceCache::Options cache{};
  /// Construct paused (test hook): jobs queue but never start until
  /// resume() — admission decisions become deterministic.
  bool start_paused = false;
};

/// Callbacks of one submitted request. `on_cell` streams a finished
/// cell and returns false when the client is unreachable (the broker
/// then skips the request's remaining cells). All callbacks are invoked
/// from broker threads and must not throw.
struct JobEvents {
  std::function<void(std::size_t cells)> on_accepted;
  std::function<bool(const CellResult& result)> on_cell;
  std::function<void(std::size_t ok, std::size_t failed)> on_done;
  std::function<void(RejectKind kind, const std::string& reason)> on_reject;
  /// Optional liveness probe, checked before a queued job starts; a
  /// false return skips execution entirely (counted as canceled).
  std::function<bool()> alive;
};

/// Outcome of an admission decision.
struct Submission {
  bool accepted = false;
  std::size_t cells = 0;                     ///< expanded grid size
  RejectKind kind = RejectKind::Overloaded;  ///< valid when !accepted
  std::string reason;
};

/// What a single-mapping `evaluate` request answers with.
struct EvaluationAnswer {
  double fitness = 0.0;
  double snr_db = 0.0;
  double loss_db = 0.0;
};

class RequestBroker {
 public:
  explicit RequestBroker(BrokerOptions options);
  /// Drains the queue (shedding every waiting job with
  /// RejectKind::Shutdown), finishes the running request, joins.
  ~RequestBroker();

  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  /// Admission decision for one request (thread-safe; called from
  /// connection threads). See the event contract above.
  [[nodiscard]] Submission submit(ServiceRequest request, JobEvents events);

  /// Score one explicit mapping against the request's first
  /// (workload, topology, goal) coordinate, synchronously, through the
  /// shared problem cache and memo bank. Throws phonoc::Error on
  /// invalid input (empty dimensions, non-injective assignment).
  [[nodiscard]] EvaluationAnswer evaluate(const EvaluateRequest& request);

  /// Current metrics (counters + live gauges + cache counters).
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Prometheus exposition body: the snapshot's phonocd_* families plus
  /// the process-wide obs::MetricsRegistry (phonoc_* instrumentation).
  /// Served by both the framed `stats prometheus` request and the
  /// --prom-port HTTP listener.
  [[nodiscard]] std::string prometheus_text() const;

  /// Direct metric feeds for connection-level events the broker cannot
  /// see itself.
  ServiceMetrics& raw_metrics() noexcept { return metrics_; }

  /// Test hooks: freeze/unfreeze the execution thread so admission
  /// behavior can be asserted deterministically.
  void pause();
  void resume();

  [[nodiscard]] const BrokerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Job {
    ServiceRequest request;
    JobEvents events;
    std::size_t cells = 0;
    Timer queued;  ///< queue-wait clock for the deadline check
  };

  void run_loop();
  void execute(Job& job);
  void execute_in_process(Job& job, bool& canceled, std::size_t& ok,
                          std::size_t& failed);
  void execute_batch(Job& job, bool& canceled, std::size_t& ok,
                     std::size_t& failed);
  /// The shared per-cell body: BatchEngine's cell code plus memo
  /// seeding/harvesting and metric accounting.
  [[nodiscard]] CellResult run_cell(const SweepSpec& spec,
                                    const SweepCell& cell,
                                    const MappingProblem& problem,
                                    const std::string& key);
  void finish_cell();

  BrokerOptions options_;
  ServiceCache cache_;
  ServiceMetrics metrics_;
  std::unique_ptr<ThreadPool> pool_;  ///< InProcess cell fan-out

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;
  std::size_t queued_cells_ = 0;        ///< sum over queue_
  std::size_t running_cells_left_ = 0;  ///< unfinished cells, running job
  bool paused_ = false;
  bool stop_ = false;

  std::thread exec_thread_;
};

}  // namespace phonoc
