#pragma once
/// \file broker.hpp
/// \brief The RequestBroker: admission control and request execution.
///
/// One broker multiplexes every client connection of a phonocd daemon
/// onto one shared BatchEngine configuration (any backend). Admission
/// is bounded and sheds explicitly: a request that would exceed the
/// queue depth, the client's own queue share, or the outstanding-cell
/// budget is rejected *immediately* with a structured answer — the
/// service never queues unboundedly and never silently drops work.
///
/// Accepted requests are executed by a pool of
/// `BrokerOptions::request_concurrency` broker workers pulling from a
/// weighted-fair scheduler (service/scheduler.hpp) instead of one FIFO
/// deque: per-client sub-queues with a deficit-round-robin pick keyed
/// by request cost (cells), inside two priority lanes — `interactive`
/// for small grids under `interactive_cell_threshold` (or an explicit
/// `priority interactive` request field), `bulk` for the rest — so
/// cheap requests overtake long sweeps instead of head-of-line-blocking
/// behind them. With `request_concurrency = 1` exactly one request runs
/// at a time, and a single client's requests execute in submission
/// order with byte-identical streams (the pre-pool behavior, pinned by
/// test). Within a request, cells fan out over the broker's persistent
/// thread pool (InProcess) or the configured ForkExec/Remote backend.
///
/// Event contract, per submit() call:
///  * rejected at admission — submit() returns the rejection; no events
///    fire (the caller already holds the answer to send);
///  * accepted — `on_accepted` fires synchronously inside submit()
///    (before the job can start, so the `accepted` frame is on the wire
///    ahead of any `cell` frame), then exactly one terminal event fires
///    later from a broker worker: `on_done` (the request ran — even if
///    the client vanished mid-stream) or `on_reject` (shed from the
///    queue on deadline/shutdown, or a request-level execution
///    failure).
///
/// Bit-identity: the InProcess path runs the exact per-cell code of
/// BatchEngine (same Engine/Evaluator construction, same seeds);
/// concurrent requests share the problem cache and memo bank but never
/// mutate each other's problems (problems are immutable, each cell
/// owns its Evaluator, and the memo shifts physical cost only — see
/// service/cache.hpp), so every request's streamed results are
/// bit-identical to a solo run of the same spec at any concurrency.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/batch_engine.hpp"
#include "exec/thread_pool.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "util/timer.hpp"

namespace phonoc {

struct BrokerOptions {
  /// Backend, worker count and evaluator knobs of the shared engine.
  BatchOptions batch{};
  /// Requests executing concurrently: the broker worker pool size.
  /// 0 derives from the hardware concurrency; 1 preserves the
  /// single-executor behavior exactly (one request at a time, FIFO per
  /// client).
  std::size_t request_concurrency = 0;
  /// Requests allowed to wait across all clients; a submit that finds
  /// the queue at this depth is shed (RejectKind::Overloaded).
  std::size_t max_queue_depth = 8;
  /// Requests one client may have queued (both lanes); beyond it the
  /// submit is shed with RejectKind::PerClientLimit, so a single client
  /// can no longer fill the whole admission queue. 0 = no per-client
  /// cap (the global depth still applies).
  std::size_t max_queue_per_client = 0;
  /// Estimated outstanding cost cap: queued cells plus the unfinished
  /// cells of every executing request. A request whose grid would push
  /// the total beyond this is shed (RejectKind::Overloaded). 0 = no
  /// cap.
  std::size_t max_outstanding_cells = 4096;
  /// Server-side per-request grid cap (RejectKind::Budget beyond it);
  /// 0 = no cap. The client's own ServiceRequest::max_cells is enforced
  /// independently.
  std::uint64_t max_cells_per_request = 0;
  /// Lane routing: an Auto-priority request with at most this many
  /// cells goes to the interactive lane, larger grids to bulk. An
  /// explicit `priority` request field pins the lane either way.
  std::size_t interactive_cell_threshold = 4;
  /// Deficit-round-robin quantum in cells: the service one client may
  /// consume per scheduler round before the pick moves on.
  std::size_t drr_quantum_cells = 32;
  /// Cross-request reuse (see ServiceCache::Options).
  ServiceCache::Options cache{};
  /// Construct paused (test hook): jobs queue but never start until
  /// resume() — admission decisions become deterministic.
  bool start_paused = false;
};

/// Callbacks of one submitted request. `on_cell` streams a finished
/// cell and returns false when the client is unreachable (the broker
/// then skips the request's remaining cells). All callbacks are invoked
/// from broker threads and must not throw.
struct JobEvents {
  std::function<void(std::size_t cells)> on_accepted;
  std::function<bool(const CellResult& result)> on_cell;
  std::function<void(std::size_t ok, std::size_t failed)> on_done;
  std::function<void(RejectKind kind, const std::string& reason)> on_reject;
  /// Optional liveness probe, checked before a queued job starts; a
  /// false return skips execution entirely (counted as canceled).
  std::function<bool()> alive;
};

/// Outcome of an admission decision.
struct Submission {
  bool accepted = false;
  std::size_t cells = 0;                     ///< expanded grid size
  RejectKind kind = RejectKind::Overloaded;  ///< valid when !accepted
  std::string reason;
};

/// What a single-mapping `evaluate` request answers with.
struct EvaluationAnswer {
  double fitness = 0.0;
  double snr_db = 0.0;
  double loss_db = 0.0;
};

class RequestBroker {
 public:
  explicit RequestBroker(BrokerOptions options);
  /// Finishes the executing requests, then sheds everything still
  /// queued with RejectKind::Shutdown, joins the worker pool.
  ~RequestBroker();

  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  /// Admission decision for one request (thread-safe; called from
  /// connection threads). `client` is the fairness identity the request
  /// queues under — connections of the same client share one sub-queue;
  /// empty means anonymous (all anonymous submits share one queue).
  /// See the event contract above.
  [[nodiscard]] Submission submit(ServiceRequest request, JobEvents events,
                                  const std::string& client = {});

  /// Score one explicit mapping against the request's first
  /// (workload, topology, goal) coordinate, synchronously, through the
  /// shared problem cache and memo bank. Throws phonoc::Error on
  /// invalid input (empty dimensions, non-injective assignment).
  [[nodiscard]] EvaluationAnswer evaluate(const EvaluateRequest& request);

  /// Current metrics (counters + live gauges + cache counters).
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Prometheus exposition body: the snapshot's phonocd_* families plus
  /// the process-wide obs::MetricsRegistry (phonoc_* instrumentation).
  /// Served by both the framed `stats prometheus` request and the
  /// --prom-port HTTP listener.
  [[nodiscard]] std::string prometheus_text() const;

  /// Direct metric feeds for connection-level events the broker cannot
  /// see itself.
  ServiceMetrics& raw_metrics() noexcept { return metrics_; }

  /// Test hooks: freeze/unfreeze the broker workers so admission
  /// behavior can be asserted deterministically.
  void pause();
  void resume();

  /// Broker workers actually running (the resolved request_concurrency).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  [[nodiscard]] const BrokerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Job {
    ServiceRequest request;
    JobEvents events;
    std::string client;
    ServiceLane lane = ServiceLane::Bulk;
    std::size_t cells = 0;
    /// Cells of this job still counted in the broker's in-flight sum;
    /// decremented per finished cell, zeroed when the job ends (so a
    /// shed or canceled job releases its whole contribution at once).
    std::size_t cells_left = 0;
    Timer queued;  ///< queue-wait clock for the deadline check
  };

  void worker_loop();
  void execute(Job& job);
  void execute_in_process(Job& job, bool& canceled, std::size_t& ok,
                          std::size_t& failed);
  void execute_batch(Job& job, bool& canceled, std::size_t& ok,
                     std::size_t& failed);
  /// The shared per-cell body: BatchEngine's cell code plus memo
  /// seeding/harvesting and metric accounting.
  [[nodiscard]] CellResult run_cell(const SweepSpec& spec,
                                    const SweepCell& cell,
                                    const MappingProblem& problem,
                                    const std::string& key);
  void finish_cell(Job& job);
  [[nodiscard]] ServiceLane route(const ServiceRequest& request,
                                  std::size_t cells) const noexcept;

  BrokerOptions options_;
  ServiceCache cache_;
  ServiceMetrics metrics_;
  std::unique_ptr<ThreadPool> pool_;  ///< InProcess cell fan-out

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  FairScheduler<Job> sched_;
  std::size_t queued_cells_ = 0;        ///< sum over queued jobs
  std::size_t running_cells_left_ = 0;  ///< sum over executing jobs
  std::size_t running_jobs_ = 0;        ///< executing requests
  bool paused_ = false;
  bool stop_ = false;

  std::vector<std::thread> workers_;  ///< the request-execution pool
};

}  // namespace phonoc
