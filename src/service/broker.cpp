#include "service/broker.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <utility>
#include <vector>

#include "mapping/mapping.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace phonoc {

namespace {

/// Instrumentation counters of the admit -> queue -> execute -> stream
/// path (process-wide registry; the framed snapshot counters stay in
/// ServiceMetrics). Registered once, bumped with one relaxed atomic.
obs::Counter& admitted_counter() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "phonoc_service_admitted_total", "Requests admitted by the broker.");
  return counter;
}

obs::Counter& shed_counter(const char* kind) {
  static obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  return registry.counter("phonoc_service_sheds_total",
                          "Requests shed at or after admission, by kind.",
                          {{"kind", kind}});
}

obs::Counter& cells_counter(const char* status) {
  static obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  return registry.counter("phonoc_service_cells_total",
                          "Cells streamed by the broker, by status.",
                          {{"status", status}});
}

obs::Counter& lane_counter(const char* lane) {
  static obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  return registry.counter("phonoc_service_lane_total",
                          "Requests admitted by the broker, by lane.",
                          {{"lane", lane}});
}

obs::Gauge& in_flight_gauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::global().gauge(
      "phonoc_service_in_flight_requests",
      "Requests currently executing on broker workers.");
  return gauge;
}

}  // namespace

RequestBroker::RequestBroker(BrokerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      sched_(options_.drr_quantum_cells) {
  paused_ = options_.start_paused;
  if (options_.batch.backend == BatchBackend::InProcess) {
    std::size_t workers = options_.batch.workers != 0
                              ? options_.batch.workers
                              : ThreadPool::default_worker_count();
    workers = std::min(workers, ThreadPool::kMaxWorkers);
    if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
  }
  std::size_t brokers = options_.request_concurrency != 0
                            ? options_.request_concurrency
                            : ThreadPool::default_worker_count();
  brokers = std::max<std::size_t>(
      1, std::min(brokers, ThreadPool::kMaxWorkers));
  workers_.reserve(brokers);
  for (std::size_t i = 0; i < brokers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

RequestBroker::~RequestBroker() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  // Shutdown drain: nothing queued may be silently dropped. With the
  // workers joined nobody races the scheduler any more.
  std::vector<Job> leftovers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    leftovers = sched_.drain();
    queued_cells_ = 0;
  }
  for (auto& job : leftovers) {
    metrics_.on_shed_shutdown();
    if (job.events.on_reject)
      job.events.on_reject(RejectKind::Shutdown, "service is shutting down");
  }
}

Submission RequestBroker::submit(ServiceRequest request, JobEvents events,
                                 const std::string& client) {
  obs::TraceSpan span("service", "admit");
  span.arg({"id", std::string_view(request.id)});
  Submission outcome;
  outcome.cells = cell_count(request.spec);
  if (outcome.cells == 0) {
    metrics_.on_malformed();
    shed_counter("malformed").inc();
    obs::trace_instant("service", "shed", {"id", std::string_view(request.id)},
                       {"kind", std::string_view("malformed")});
    outcome.kind = RejectKind::Malformed;
    outcome.reason = "the sweep grid is empty (a dimension has no values)";
    return outcome;
  }
  if (request.max_cells != 0 && outcome.cells > request.max_cells) {
    metrics_.on_shed_budget();
    shed_counter("budget").inc();
    obs::trace_instant("service", "shed", {"id", std::string_view(request.id)},
                       {"kind", std::string_view("budget")});
    outcome.kind = RejectKind::Budget;
    outcome.reason = "grid has " + std::to_string(outcome.cells) +
                     " cells, the request allows max_cells=" +
                     std::to_string(request.max_cells);
    return outcome;
  }
  if (options_.max_cells_per_request != 0 &&
      outcome.cells > options_.max_cells_per_request) {
    metrics_.on_shed_budget();
    shed_counter("budget").inc();
    obs::trace_instant("service", "shed", {"id", std::string_view(request.id)},
                       {"kind", std::string_view("budget")});
    outcome.kind = RejectKind::Budget;
    outcome.reason = "grid has " + std::to_string(outcome.cells) +
                     " cells, the server caps requests at " +
                     std::to_string(options_.max_cells_per_request);
    return outcome;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      metrics_.on_shed_shutdown();
      shed_counter("shutdown").inc();
      obs::trace_instant("service", "shed",
                         {"id", std::string_view(request.id)},
                         {"kind", std::string_view("shutdown")});
      outcome.kind = RejectKind::Shutdown;
      outcome.reason = "service is shutting down";
      return outcome;
    }
    if (sched_.size() >= options_.max_queue_depth) {
      metrics_.on_shed_overloaded();
      shed_counter("overloaded").inc();
      obs::trace_instant("service", "shed",
                         {"id", std::string_view(request.id)},
                         {"kind", std::string_view("overloaded")});
      outcome.kind = RejectKind::Overloaded;
      outcome.reason = "admission queue is full (" +
                       std::to_string(sched_.size()) + " request(s) waiting)";
      return outcome;
    }
    if (options_.max_queue_per_client != 0 &&
        sched_.client_depth(client) >= options_.max_queue_per_client) {
      metrics_.on_shed_per_client();
      shed_counter("per_client_limit").inc();
      obs::trace_instant("service", "shed",
                         {"id", std::string_view(request.id)},
                         {"kind", std::string_view("per_client_limit")});
      outcome.kind = RejectKind::PerClientLimit;
      outcome.reason = "client already has " +
                       std::to_string(sched_.client_depth(client)) +
                       " request(s) queued (per-client cap " +
                       std::to_string(options_.max_queue_per_client) + ")";
      return outcome;
    }
    const std::size_t outstanding = queued_cells_ + running_cells_left_;
    if (options_.max_outstanding_cells != 0 &&
        outstanding + outcome.cells > options_.max_outstanding_cells) {
      metrics_.on_shed_overloaded();
      shed_counter("overloaded").inc();
      obs::trace_instant("service", "shed",
                         {"id", std::string_view(request.id)},
                         {"kind", std::string_view("overloaded")});
      outcome.kind = RejectKind::Overloaded;
      outcome.reason =
          std::to_string(outstanding) + " cell(s) outstanding; " +
          std::to_string(outcome.cells) + " more would exceed the cap of " +
          std::to_string(options_.max_outstanding_cells);
      return outcome;
    }
    Job job;
    job.request = std::move(request);
    job.events = std::move(events);
    job.client = client;
    job.cells = outcome.cells;
    job.lane = route(job.request, job.cells);
    queued_cells_ += job.cells;
    metrics_.on_accepted(job.lane == ServiceLane::Interactive);
    admitted_counter().inc();
    lane_counter(job.lane == ServiceLane::Interactive ? "interactive"
                                                      : "bulk")
        .inc();
    obs::trace_instant("service", "queue",
                       {"id", std::string_view(job.request.id)},
                       {"cells", std::uint64_t(job.cells)},
                       {"depth", std::uint64_t(sched_.size())});
    // Announce under the lock: the `accepted` frame must be on the wire
    // before a broker worker can dequeue the job and stream cells.
    if (job.events.on_accepted) job.events.on_accepted(job.cells);
    // Copied out first: push() takes the job by value, and the move that
    // initializes that parameter may gut job.client before a reference
    // to it would be read (argument evaluation order is unspecified).
    const ServiceLane lane = job.lane;
    const std::string client_key = job.client;
    const std::size_t cost = job.cells;
    sched_.push(lane, client_key, cost, std::move(job));
  }
  work_cv_.notify_all();
  outcome.accepted = true;
  return outcome;
}

ServiceLane RequestBroker::route(const ServiceRequest& request,
                                 std::size_t cells) const noexcept {
  if (request.priority == RequestPriority::Interactive)
    return ServiceLane::Interactive;
  if (request.priority == RequestPriority::Bulk) return ServiceLane::Bulk;
  return cells <= options_.interactive_cell_threshold
             ? ServiceLane::Interactive
             : ServiceLane::Bulk;
}

EvaluationAnswer RequestBroker::evaluate(const EvaluateRequest& request) {
  require(!request.spec.workloads.empty() &&
              !request.spec.topologies.empty() && !request.spec.goals.empty(),
          "evaluate: the spec needs at least one workload, topology and "
          "goal");
  const SweepCell cell{};
  const auto key = ServiceCache::key_of(request.spec, cell);
  const auto problem = cache_.problem(request.spec, cell, key);
  require(request.assignment.size() == problem->task_count(),
          "evaluate: the assignment maps " +
              std::to_string(request.assignment.size()) +
              " task(s), the workload has " +
              std::to_string(problem->task_count()));
  const auto mapping =
      Mapping::from_assignment(request.assignment, problem->tile_count());
  Evaluator evaluator(*problem, options_.batch.evaluator);
  cache_.seed_memo(key, evaluator);
  EvaluationAnswer answer;
  answer.fitness = evaluator.evaluate(mapping);
  const auto raw = evaluator.evaluate_raw(mapping);
  answer.snr_db = raw.worst_snr_db;
  answer.loss_db = raw.worst_loss_db;
  cache_.harvest_memo(key, evaluator);
  metrics_.on_evaluator_counters(evaluator.cache_hit_count(),
                                 evaluator.cache_miss_count(),
                                 evaluator.cache_eviction_count());
  metrics_.on_evaluation();
  return answer;
}

MetricsSnapshot RequestBroker::metrics() const {
  ServiceMetrics::Gauges gauges;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    gauges.queue_depth = sched_.size();
    gauges.queue_depth_interactive = sched_.size(ServiceLane::Interactive);
    gauges.queue_depth_bulk = sched_.size(ServiceLane::Bulk);
    gauges.in_flight_cells = running_cells_left_;
    gauges.in_flight_requests = running_jobs_;
  }
  MetricsSnapshot snap = metrics_.snapshot(gauges);
  const auto cache = cache_.counters();
  snap.problem_cache_hits = cache.problem_hits;
  snap.problem_cache_misses = cache.problem_misses;
  snap.problem_cache_evictions = cache.problem_evictions;
  return snap;
}

std::string RequestBroker::prometheus_text() const {
  return metrics().to_prometheus() +
         obs::MetricsRegistry::global().render_prometheus();
}

void RequestBroker::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void RequestBroker::resume() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void RequestBroker::worker_loop() {
  for (;;) {
    Job job;
    bool overtook = false;
    double waited = 0.0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || (!paused_ && !sched_.empty()); });
      if (stop_) return;
      auto picked = sched_.pop();  // non-empty: checked under this lock
      job = std::move(*picked);
      // Fairness accounting: an interactive pick that leaves bulk work
      // behind in the queue jumped the line by design.
      overtook = job.lane == ServiceLane::Interactive &&
                 sched_.size(ServiceLane::Bulk) > 0;
      waited = job.queued.elapsed_seconds();
      queued_cells_ -= job.cells;
      job.cells_left = job.cells;
      running_cells_left_ += job.cells;
      ++running_jobs_;
      in_flight_gauge().set(static_cast<double>(running_jobs_));
    }
    metrics_.on_dequeue(job.lane == ServiceLane::Interactive, waited,
                        overtook);
    execute(job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      // Release whatever the job still holds of the in-flight sum: zero
      // after a full run, the whole grid for a deadline-shed or
      // canceled job.
      running_cells_left_ -= std::min(job.cells_left, running_cells_left_);
      job.cells_left = 0;
      --running_jobs_;
      in_flight_gauge().set(static_cast<double>(running_jobs_));
    }
  }
}

void RequestBroker::execute(Job& job) {
  obs::TraceSpan span("service", "execute");
  span.arg({"id", std::string_view(job.request.id)});
  span.arg({"cells", std::uint64_t(job.cells)});
  const double deadline = job.request.deadline_seconds;
  const double waited = job.queued.elapsed_seconds();
  if (deadline > 0.0 && waited > deadline) {
    // Shed stale work instead of running it: the client stopped caring
    // `waited - deadline` seconds ago.
    metrics_.on_shed_deadline();
    shed_counter("deadline").inc();
    obs::trace_instant("service", "shed",
                       {"id", std::string_view(job.request.id)},
                       {"kind", std::string_view("deadline")});
    if (job.events.on_reject)
      job.events.on_reject(RejectKind::Deadline,
                           "deadline of " + format_double(deadline) +
                               "s passed after " + format_double(waited) +
                               "s in the queue");
    return;
  }
  if (job.events.alive && !job.events.alive()) {
    metrics_.on_request_canceled(0, 0);
    if (job.events.on_done) job.events.on_done(0, 0);
    return;
  }
  const Timer wall;
  bool canceled = false;
  std::size_t ok = 0;
  std::size_t failed = 0;
  try {
    if (options_.batch.backend == BatchBackend::InProcess)
      execute_in_process(job, canceled, ok, failed);
    else
      execute_batch(job, canceled, ok, failed);
  } catch (const std::exception& e) {
    // Request-level failure (problem construction, a dead backend):
    // answer it; the daemon and the other requests keep going.
    log_warning("service") << "service broker: request '" << job.request.id
                           << "' failed: " << e.what();
    metrics_.on_request_failed();
    if (job.events.on_reject)
      job.events.on_reject(RejectKind::Internal, e.what());
    return;
  }
  if (canceled)
    metrics_.on_request_canceled(ok, failed);
  else
    metrics_.on_completed(ok, failed, wall.elapsed_seconds());
  // on_done fires either way — for a vanished client the send simply
  // fails — so the connection's job accounting always balances.
  if (job.events.on_done) job.events.on_done(ok, failed);
}

void RequestBroker::execute_in_process(Job& job, bool& canceled,
                                       std::size_t& ok, std::size_t& failed) {
  const auto& spec = job.request.spec;
  const auto cells = expand(spec);
  // Problems come from the cross-request cache, built here before the
  // fan-out (construction is the expensive part; cells only read them).
  std::map<SweepProblemKey,
           std::pair<std::string, std::shared_ptr<const MappingProblem>>>
      problems;
  for (const auto& cell : cells) {
    const SweepProblemKey coord{cell.workload, cell.topology, cell.goal};
    if (problems.count(coord)) continue;
    auto key = ServiceCache::key_of(spec, cell);
    auto problem = cache_.problem(spec, cell, key);
    problems.emplace(coord, std::make_pair(std::move(key),
                                           std::move(problem)));
  }
  std::atomic<bool> cancel{false};
  std::mutex stream_mutex;  // serializes on_cell and the ok/failed tally
  const auto run_one = [&](const SweepCell& cell) {
    if (!cancel.load(std::memory_order_relaxed)) {
      const auto& [key, problem] = problems.at(
          SweepProblemKey{cell.workload, cell.topology, cell.goal});
      CellResult result = run_cell(spec, cell, *problem, key);
      const std::lock_guard<std::mutex> lock(stream_mutex);
      if (!cancel.load(std::memory_order_relaxed)) {
        if (result.status == CellStatus::Ok) {
          ++ok;
          cells_counter("ok").inc();
        } else {
          ++failed;
          cells_counter("failed").inc();
        }
        if (job.events.on_cell && !job.events.on_cell(result))
          cancel.store(true);
      }
    }
    finish_cell(job);
  };
  if (!pool_ || cells.size() <= 1) {
    for (const auto& cell : cells) run_one(cell);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(cells.size());
    for (const auto& cell : cells)
      futures.push_back(pool_->submit([&run_one, cell] { run_one(cell); }));
    for (auto& future : futures) future.get();
  }
  canceled = cancel.load();
}

void RequestBroker::execute_batch(Job& job, bool& canceled, std::size_t& ok,
                                  std::size_t& failed) {
  // ForkExec/Remote delegate the whole request to BatchEngine: cells
  // run in other processes (no cross-request cache there) and stream
  // back in grid order once the batch returns. Each job owns its
  // engine, so concurrent requests never share backend state.
  const BatchEngine engine(options_.batch);
  const auto results = engine.run(job.request.spec);
  for (const auto& result : results) {
    if (!canceled) {
      if (result.status == CellStatus::Ok) {
        ++ok;
        cells_counter("ok").inc();
      } else {
        ++failed;
        cells_counter("failed").inc();
      }
      if (job.events.on_cell && !job.events.on_cell(result)) canceled = true;
    }
    finish_cell(job);
  }
}

CellResult RequestBroker::run_cell(const SweepSpec& spec,
                                   const SweepCell& cell,
                                   const MappingProblem& problem,
                                   const std::string& key) {
  obs::TraceSpan span("service", "cell");
  span.arg({"index", std::uint64_t(cell.index)});
  if (spec.task_kind == SweepTaskKind::Sample) {
    // Sampling scores through evaluate_raw, which bypasses the memo:
    // nothing to seed or harvest, and the counters stay untouched.
    try {
      return run_sweep_cell(spec, cell, problem, options_.batch.evaluator);
    } catch (const std::exception& e) {
      return make_failed_cell(spec, cell, e.what());
    }
  }
  try {
    const Timer timer;
    CellResult result;
    result.cell = cell;
    result.seed = spec.seeds[cell.seed];
    // The exact per-cell code of run_sweep_cell, with the Evaluator
    // lifted out so the memo can be seeded from (and harvested into)
    // the cross-request bank. Memo state shifts physical cost only —
    // the RunResult is bit-identical either way.
    Evaluator evaluator(problem, options_.batch.evaluator);
    cache_.seed_memo(key, evaluator);
    result.run = Engine(problem, options_.batch.evaluator)
                     .run_with(evaluator, spec.optimizers[cell.optimizer],
                               spec.budgets[cell.budget], result.seed);
    cache_.harvest_memo(key, evaluator);
    metrics_.on_evaluator_counters(evaluator.cache_hit_count(),
                                   evaluator.cache_miss_count(),
                                   evaluator.cache_eviction_count());
    result.seconds = timer.elapsed_seconds();
    return result;
  } catch (const std::exception& e) {
    return make_failed_cell(spec, cell, e.what());
  }
}

void RequestBroker::finish_cell(Job& job) {
  // Both the job-local and the global remainder shrink together, so the
  // in-flight sum stays a true per-job total under any concurrency.
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job.cells_left > 0) {
    --job.cells_left;
    if (running_cells_left_ > 0) --running_cells_left_;
  }
}

}  // namespace phonoc
