#include "service/cache.hpp"

#include <sstream>
#include <unordered_set>
#include <utility>

#include "exec/serialize.hpp"
#include "mapping/mapping.hpp"

namespace phonoc {

ServiceCache::ServiceCache(Options options) : options_(options) {}

std::string ServiceCache::key_of(const SweepSpec& spec,
                                 const SweepCell& cell) {
  // A single-coordinate spec carrying exactly the fields that determine
  // the constructed problem. The swept optimizer/budget/seed dimensions
  // and the task kind are deliberately dropped: they parameterize the
  // search, not the problem.
  SweepSpec sub;
  sub.router = spec.router;
  sub.tile_pitch_mm = spec.tile_pitch_mm;
  sub.parameters = spec.parameters;
  sub.model_options = spec.model_options;
  sub.workloads = {spec.workloads[cell.workload]};
  sub.topologies = {spec.topologies[cell.topology]};
  // Pin the resolved side so an auto-sized topology ("side 0") shares
  // its slot with the equivalent explicit side.
  sub.topologies[0].side = resolved_side(spec, cell.workload, cell.topology);
  sub.goals = {spec.goals[cell.goal]};
  std::ostringstream out;
  write_spec(out, sub);
  return out.str();
}

void ServiceCache::touch(Slot& slot) const {
  lru_.splice(lru_.begin(), lru_, slot.lru_it);
}

std::shared_ptr<const MappingProblem> ServiceCache::problem(
    const SweepSpec& spec, const SweepCell& cell, const std::string& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = slots_.find(key); it != slots_.end()) {
      ++counters_.problem_hits;
      touch(it->second);
      return it->second.problem;
    }
    ++counters_.problem_misses;
  }
  // Build outside the lock: construction is the expensive part, and
  // holding the mutex through it would stall every concurrent broker
  // worker behind one large network build — even workers after cached
  // problems of *other* keys.
  auto problem = std::make_shared<const MappingProblem>(
      make_problem(spec, cell, make_cell_network(spec, cell.workload,
                                                 cell.topology)));
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = slots_.find(key); it != slots_.end()) {
    // A concurrent builder of the same key won the insert race. Adopt
    // its copy and drop ours — construction is deterministic (same
    // spec coordinate, same problem), so the copies are equivalent.
    touch(it->second);
    return it->second.problem;
  }
  lru_.push_front(key);
  slots_.emplace(key, Slot{problem, EvaluatorMemo{}, lru_.begin()});
  while (slots_.size() > options_.max_problems && !lru_.empty()) {
    slots_.erase(lru_.back());
    lru_.pop_back();
    ++counters_.problem_evictions;
  }
  return problem;
}

void ServiceCache::seed_memo(const std::string& key,
                             Evaluator& evaluator) const {
  if (options_.memo_capacity == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  if (it == slots_.end() || it->second.memo.entries.empty()) return;
  evaluator.preload_memo(it->second.memo);
}

void ServiceCache::harvest_memo(const std::string& key,
                                const Evaluator& evaluator) {
  if (options_.memo_capacity == 0) return;
  auto fresh = evaluator.export_memo();
  if (fresh.entries.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(key);
  if (it == slots_.end()) return;  // evicted meanwhile; drop the snapshot
  EvaluatorMemo& bank = it->second.memo;
  // Fresh entries first (they are the most recent activity), then the
  // surviving old ones. Dedup by assignment hash — a collision merely
  // drops one redundant snapshot entry, never a wrong fitness, since
  // preload_memo re-checks full keys on insert.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(fresh.entries.size() + bank.entries.size());
  EvaluatorMemo merged;
  merged.entries.reserve(
      std::min(options_.memo_capacity,
               fresh.entries.size() + bank.entries.size()));
  const auto adopt = [&](EvaluatorMemo::Entry& entry) {
    if (merged.entries.size() >= options_.memo_capacity) return;
    if (!seen.insert(assignment_hash(entry.assignment)).second) return;
    merged.entries.push_back(std::move(entry));
  };
  for (auto& entry : fresh.entries) adopt(entry);
  for (auto& entry : bank.entries) adopt(entry);
  bank = std::move(merged);
}

ServiceCache::Counters ServiceCache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace phonoc
