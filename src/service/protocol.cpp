#include "service/protocol.hpp"

#include <cctype>
#include <sstream>

#include "exec/serialize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

/// Split a payload into its header line and the body after the first
/// newline (empty body when the payload is a single line).
std::pair<std::string_view, std::string_view> split_header(
    std::string_view payload) {
  const auto newline = payload.find('\n');
  if (newline == std::string_view::npos) return {payload, {}};
  return {payload.substr(0, newline), payload.substr(newline + 1)};
}

SweepSpec parse_spec_body(std::string_view body, const char* what) {
  if (trim(body).empty())
    throw ParseError(std::string(what) + ": missing spec body");
  std::istringstream in{std::string(body)};
  return read_spec(in);
}

std::uint64_t parse_u64(std::string_view text, const char* what) {
  const long value = parse_long(text);
  if (value < 0)
    throw ParseError(std::string(what) + ": negative value '" +
                     std::string(text) + "'");
  return static_cast<std::uint64_t>(value);
}

/// read_spec expects the shard magic ahead of the spec body (write_spec
/// itself is magic-less; see the spec-magic note in exec/serialize.cpp),
/// so request writers emit it between the header line and the spec.
constexpr const char* kSpecMagic = "phonoc-shard v1";

}  // namespace

std::string_view reject_kind_token(RejectKind kind) noexcept {
  switch (kind) {
    case RejectKind::Overloaded: return "overloaded";
    case RejectKind::Budget: return "budget";
    case RejectKind::Deadline: return "deadline";
    case RejectKind::Malformed: return "malformed";
    case RejectKind::Shutdown: return "shutdown";
    case RejectKind::PerClientLimit: return "per_client_limit";
    case RejectKind::Internal: return "internal";
  }
  return "internal";
}

RejectKind parse_reject_kind(std::string_view token) {
  if (token == "overloaded") return RejectKind::Overloaded;
  if (token == "budget") return RejectKind::Budget;
  if (token == "deadline") return RejectKind::Deadline;
  if (token == "malformed") return RejectKind::Malformed;
  if (token == "shutdown") return RejectKind::Shutdown;
  if (token == "per_client_limit") return RejectKind::PerClientLimit;
  if (token == "internal") return RejectKind::Internal;
  throw ParseError("unknown reject kind '" + std::string(token) + "'");
}

std::string_view priority_token(RequestPriority p) noexcept {
  switch (p) {
    case RequestPriority::Auto: return "auto";
    case RequestPriority::Interactive: return "interactive";
    case RequestPriority::Bulk: return "bulk";
  }
  return "auto";
}

RequestPriority parse_priority(std::string_view token) {
  if (token == "auto") return RequestPriority::Auto;
  if (token == "interactive") return RequestPriority::Interactive;
  if (token == "bulk") return RequestPriority::Bulk;
  throw ParseError("unknown request priority '" + std::string(token) + "'");
}

void validate_request_id(std::string_view id) {
  if (id.empty()) throw ParseError("request id is empty");
  if (id.size() > 64)
    throw ParseError("request id exceeds 64 bytes: '" + std::string(id) +
                     "'");
  for (const char c : id)
    if (std::isspace(static_cast<unsigned char>(c)) ||
        std::iscntrl(static_cast<unsigned char>(c)))
      throw ParseError("request id contains whitespace or control bytes");
}

std::string write_request(const ServiceRequest& request) {
  validate_request_id(request.id);
  std::ostringstream out;
  out << "request " << request.id << " deadline "
      << format_double(request.deadline_seconds) << " max_cells "
      << request.max_cells;
  // Emitted only when set: an Auto-priority request is byte-identical
  // to the pre-lane wire format.
  if (request.priority != RequestPriority::Auto)
    out << " priority " << priority_token(request.priority);
  out << '\n' << kSpecMagic << '\n';
  write_spec(out, request.spec);
  return out.str();
}

ServiceRequest parse_request(const std::string& payload) {
  const auto [header, body] = split_header(payload);
  const auto tokens = split_ws(header);
  const bool has_priority = tokens.size() == 8 && tokens[6] == "priority";
  if ((tokens.size() != 6 && !has_priority) || tokens[0] != "request" ||
      tokens[2] != "deadline" || tokens[4] != "max_cells")
    throw ParseError("malformed request header: '" + std::string(header) +
                     "'");
  ServiceRequest request;
  validate_request_id(tokens[1]);
  request.id = tokens[1];
  request.deadline_seconds = parse_double(tokens[3]);
  if (request.deadline_seconds < 0.0)
    throw ParseError("request deadline is negative");
  request.max_cells = parse_u64(tokens[5], "request max_cells");
  if (has_priority) request.priority = parse_priority(tokens[7]);
  request.spec = parse_spec_body(body, "request");
  return request;
}

std::string write_evaluate(const EvaluateRequest& request) {
  validate_request_id(request.id);
  std::ostringstream out;
  out << "evaluate " << request.id << " tiles";
  for (const TileId tile : request.assignment) out << ' ' << tile;
  out << '\n' << kSpecMagic << '\n';
  write_spec(out, request.spec);
  return out.str();
}

EvaluateRequest parse_evaluate(const std::string& payload) {
  const auto [header, body] = split_header(payload);
  const auto tokens = split_ws(header);
  if (tokens.size() < 4 || tokens[0] != "evaluate" || tokens[2] != "tiles")
    throw ParseError("malformed evaluate header: '" + std::string(header) +
                     "'");
  EvaluateRequest request;
  validate_request_id(tokens[1]);
  request.id = tokens[1];
  request.assignment.reserve(tokens.size() - 3);
  for (std::size_t i = 3; i < tokens.size(); ++i)
    request.assignment.push_back(
        static_cast<TileId>(parse_u64(tokens[i], "evaluate tile")));
  request.spec = parse_spec_body(body, "evaluate");
  return request;
}

std::string accepted_reply(const std::string& id, std::size_t cells) {
  return "accepted " + id + " cells " + std::to_string(cells);
}

std::string cell_reply(const std::string& id, const CellResult& result) {
  std::ostringstream out;
  out << "cell " << id << '\n';
  write_cell_result(out, result);
  return out.str();
}

std::string done_reply(const std::string& id, std::size_t ok,
                       std::size_t failed) {
  return "done " + id + " ok " + std::to_string(ok) + " failed " +
         std::to_string(failed);
}

std::string rejected_reply(const std::string& id, RejectKind kind,
                           const std::string& reason) {
  return "rejected " + id + " " + std::string(reject_kind_token(kind)) +
         " " + reason;
}

std::string evaluation_reply(const std::string& id, double fitness,
                             double snr_db, double loss_db) {
  return "evaluation " + id + " fitness " + format_double(fitness) +
         " snr_db " + format_double(snr_db) + " loss_db " +
         format_double(loss_db);
}

std::string stats_reply(const std::string& text) {
  return std::string(kServiceStats) + "\n" + text;
}

std::string error_reply(const std::string& message) {
  return "error " + message;
}

ServiceReply parse_reply(const std::string& payload) {
  const auto [header, body] = split_header(payload);
  const auto tokens = split_ws(header);
  if (tokens.empty()) throw ParseError("empty service reply");
  ServiceReply reply;
  const std::string& kind = tokens[0];
  if (kind == "hello") {
    if (payload != kServiceHello &&
        !starts_with(payload, std::string(kServiceHello) + " "))
      throw ParseError("service handshake mismatch: '" + payload + "'");
    reply.kind = ServiceReply::Kind::Hello;
    return reply;
  }
  if (kind == "accepted") {
    if (tokens.size() != 4 || tokens[2] != "cells")
      throw ParseError("malformed accepted reply: '" + payload + "'");
    reply.kind = ServiceReply::Kind::Accepted;
    reply.id = tokens[1];
    reply.cells = parse_u64(tokens[3], "accepted cells");
    return reply;
  }
  if (kind == "cell") {
    if (tokens.size() != 2)
      throw ParseError("malformed cell reply header: '" +
                       std::string(header) + "'");
    reply.kind = ServiceReply::Kind::Cell;
    reply.id = tokens[1];
    std::istringstream in{std::string(body)};
    auto result = read_cell_result(in);
    if (!result) throw ParseError("cell reply without a cell block");
    reply.result = std::move(*result);
    return reply;
  }
  if (kind == "done") {
    if (tokens.size() != 6 || tokens[2] != "ok" || tokens[4] != "failed")
      throw ParseError("malformed done reply: '" + payload + "'");
    reply.kind = ServiceReply::Kind::Done;
    reply.id = tokens[1];
    reply.ok = parse_u64(tokens[3], "done ok");
    reply.failed = parse_u64(tokens[5], "done failed");
    return reply;
  }
  if (kind == "rejected") {
    if (tokens.size() < 3)
      throw ParseError("malformed rejected reply: '" + payload + "'");
    reply.kind = ServiceReply::Kind::Rejected;
    reply.id = tokens[1];
    reply.reject = parse_reject_kind(tokens[2]);
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      if (i > 3) reply.reason += ' ';
      reply.reason += tokens[i];
    }
    return reply;
  }
  if (kind == "evaluation") {
    if (tokens.size() != 8 || tokens[2] != "fitness" ||
        tokens[4] != "snr_db" || tokens[6] != "loss_db")
      throw ParseError("malformed evaluation reply: '" + payload + "'");
    reply.kind = ServiceReply::Kind::Evaluation;
    reply.id = tokens[1];
    reply.fitness = parse_double(tokens[3]);
    reply.snr_db = parse_double(tokens[5]);
    reply.loss_db = parse_double(tokens[7]);
    return reply;
  }
  if (kind == kServiceStats) {
    reply.kind = ServiceReply::Kind::Stats;
    reply.body = std::string(body);
    return reply;
  }
  if (kind == "error") {
    reply.kind = ServiceReply::Kind::Error;
    reply.body = std::string(trim(header.substr(5)));
    return reply;
  }
  throw ParseError("unknown service reply '" + kind + "'");
}

}  // namespace phonoc
