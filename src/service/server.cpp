#include "service/server.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace phonoc {
namespace {

/// Serializes every frame a connection emits. Cell frames arrive from
/// broker worker threads while the connection thread answers stats and
/// pipelined submissions, so all sends funnel through one mutex. Also
/// the connection's job ledger: serve_client must not return (and drop
/// the Connection) while a broker job still holds callbacks into it, so
/// jobs are counted in and out and wait_idle() blocks until the ledger
/// is clean. A failed send latches the writer shut — the broker's next
/// on_cell returns false and the job cancels instead of hammering a
/// dead socket.
class ResponseWriter {
 public:
  explicit ResponseWriter(Connection& conn) : conn_(conn) {}

  bool send(const std::string& payload) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shut_) return false;
    if (!conn_.send(payload)) {
      shut_ = true;
      return false;
    }
    return true;
  }

  [[nodiscard]] bool open() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return !shut_;
  }

  void shut() {
    const std::lock_guard<std::mutex> lock(mutex_);
    shut_ = true;
  }

  void job_started() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++jobs_;
  }

  void job_finished() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (jobs_ > 0 && --jobs_ == 0) idle_cv_.notify_all();
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return jobs_ == 0; });
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  Connection& conn_;
  bool shut_ = false;
  std::size_t jobs_ = 0;
};

/// Best-effort request id of a payload that failed to parse, so the
/// rejection still names the request the client sent.
std::string salvage_id(const std::string& payload) {
  const auto newline = payload.find('\n');
  const auto tokens = split_ws(std::string_view(payload).substr(
      0, newline == std::string::npos ? payload.size() : newline));
  if (tokens.size() < 2) return "-";
  try {
    validate_request_id(tokens[1]);
  } catch (const ParseError&) {
    return "-";
  }
  return tokens[1];
}

std::string first_line_of(const std::string& payload, std::size_t limit) {
  auto line = payload.substr(0, payload.find('\n'));
  if (line.size() > limit) line = line.substr(0, limit) + "...";
  return line;
}

/// Fairness identity of a connection, from the optional
/// `client <name>` hello suffix (the hello is prefix-matched, so old
/// clients simply have no suffix). Named connections of the same client
/// share one scheduler sub-queue; an unnamed (or malformed) suffix
/// falls back to a per-connection identity, so fairness degrades to
/// per-connection instead of lumping every anonymous peer together.
std::string client_identity(const std::string& hello_payload) {
  static std::atomic<std::uint64_t> next_anonymous{0};
  const std::size_t prefix = std::string_view(kServiceHello).size();
  if (hello_payload.size() > prefix) {
    const auto tokens =
        split_ws(std::string_view(hello_payload).substr(prefix));
    if (tokens.size() == 2 && tokens[0] == "client") {
      try {
        validate_request_id(tokens[1]);  // same charset/length rules
        return tokens[1];
      } catch (const ParseError&) {
        // fall through to the per-connection identity
      }
    }
  }
  return "conn#" + std::to_string(next_anonymous.fetch_add(1) + 1);
}

}  // namespace

std::size_t serve_client(Connection& conn, RequestBroker& broker,
                         const ServiceServerOptions& options) {
  Connection::RecvResult hello;
  try {
    hello = conn.recv(options.handshake_timeout_seconds);
  } catch (const std::exception& e) {
    // A non-client peer (port scanner, stray HTTP probe) sends unframed
    // bytes; drop the connection, not the daemon.
    (void)conn.send(
        error_reply(std::string("unframed handshake: ") + e.what()));
    return 0;
  }
  const bool hello_ok =
      hello.status == Connection::RecvStatus::Ok &&
      (hello.payload == kServiceHello ||
       starts_with(hello.payload, std::string(kServiceHello) + " "));
  if (!hello_ok) {
    if (hello.status == Connection::RecvStatus::Ok)
      (void)conn.send(error_reply("handshake mismatch: got '" +
                                  hello.payload + "', want '" +
                                  kServiceHello + "'"));
    return 0;
  }
  if (!conn.send(kServiceHello)) return 0;
  broker.raw_metrics().on_connection();
  const std::string client = client_identity(hello.payload);

  const auto writer = std::make_shared<ResponseWriter>(conn);
  std::size_t handled = 0;
  for (;;) {
    Connection::RecvResult request;
    try {
      request = conn.recv(options.idle_timeout_seconds);
    } catch (const std::exception& e) {
      (void)writer->send(
          error_reply(std::string("corrupt frame: ") + e.what()));
      break;
    }
    if (request.status != Connection::RecvStatus::Ok) break;
    if (request.payload == kServiceQuit) break;

    if (request.payload == kServiceStats) {
      ++handled;
      broker.raw_metrics().on_stats_request();
      (void)writer->send(stats_reply(broker.metrics().to_text()));
      continue;
    }

    if (request.payload == kServiceStatsPrometheus) {
      ++handled;
      broker.raw_metrics().on_stats_request();
      (void)writer->send(stats_reply(broker.prometheus_text()));
      continue;
    }

    if (starts_with(request.payload, "evaluate ")) {
      ++handled;
      std::string id = salvage_id(request.payload);
      try {
        const auto evaluate = parse_evaluate(request.payload);
        id = evaluate.id;
        const auto answer = broker.evaluate(evaluate);
        (void)writer->send(evaluation_reply(id, answer.fitness,
                                            answer.snr_db, answer.loss_db));
      } catch (const ParseError& e) {
        broker.raw_metrics().on_malformed();
        (void)writer->send(
            rejected_reply(id, RejectKind::Malformed, e.what()));
      } catch (const InvalidArgument& e) {
        broker.raw_metrics().on_malformed();
        (void)writer->send(
            rejected_reply(id, RejectKind::Malformed, e.what()));
      } catch (const std::exception& e) {
        (void)writer->send(
            rejected_reply(id, RejectKind::Internal, e.what()));
      }
      continue;
    }

    if (starts_with(request.payload, "request ")) {
      ++handled;
      ServiceRequest parsed;
      try {
        parsed = parse_request(request.payload);
      } catch (const std::exception& e) {
        broker.raw_metrics().on_malformed();
        (void)writer->send(rejected_reply(salvage_id(request.payload),
                                          RejectKind::Malformed, e.what()));
        continue;
      }
      const std::string id = parsed.id;
      JobEvents events;
      events.on_accepted = [writer, id](std::size_t cells) {
        (void)writer->send(accepted_reply(id, cells));
      };
      events.on_cell = [writer, id](const CellResult& result) {
        return writer->send(cell_reply(id, result));
      };
      events.on_done = [writer, id](std::size_t ok, std::size_t failed) {
        (void)writer->send(done_reply(id, ok, failed));
        writer->job_finished();
      };
      events.on_reject = [writer, id](RejectKind kind,
                                      const std::string& reason) {
        (void)writer->send(rejected_reply(id, kind, reason));
        writer->job_finished();
      };
      events.alive = [writer] { return writer->open(); };
      // Count the job in before submit: an accepted job may finish (and
      // call job_finished) before submit even returns.
      writer->job_started();
      const Submission outcome =
          broker.submit(std::move(parsed), std::move(events), client);
      if (!outcome.accepted) {
        writer->job_finished();
        (void)writer->send(
            rejected_reply(id, outcome.kind, outcome.reason));
      }
      continue;
    }

    (void)writer->send(error_reply("unknown request '" +
                                   first_line_of(request.payload, 80) +
                                   "'"));
    break;
  }
  // Latch the writer shut, then wait for in-flight jobs: their next
  // on_cell send fails, the broker cancels the rest of the request, and
  // the terminal on_done/on_reject balances the ledger.
  writer->shut();
  writer->wait_idle();
  return handled;
}

ServiceServer::ServiceServer(std::uint16_t port, BrokerOptions broker_options,
                             ServiceServerOptions options)
    : broker_options_(std::move(broker_options)),
      options_(options),
      broker_(broker_options_),
      listener_(port) {}

ServiceServer::~ServiceServer() {
  std::vector<Handler> rest;
  {
    const std::lock_guard<std::mutex> lock(handlers_mutex_);
    rest.swap(handlers_);
  }
  for (auto& handler : rest)
    if (handler.thread.joinable()) handler.thread.join();
}

void ServiceServer::reap_finished() {
  const std::lock_guard<std::mutex> lock(handlers_mutex_);
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (*it->done) {
      if (it->thread.joinable()) it->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServiceServer::run(std::size_t max_connections) {
  std::size_t accepted = 0;
  while (max_connections == 0 || accepted < max_connections) {
    auto conn = listener_.accept();
    if (!conn) break;
    ++accepted;
    reap_finished();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::shared_ptr<Connection> shared(std::move(conn));
    std::thread thread([this, shared, done] {
      try {
        (void)serve_client(*shared, broker_, options_);
      } catch (const std::exception& e) {
        log_warning("service") << "service server: connection died: "
                               << e.what();
      }
      shared->close();
      done->store(true);
    });
    const std::lock_guard<std::mutex> lock(handlers_mutex_);
    handlers_.push_back(Handler{std::move(thread), std::move(done)});
  }
  // Serve out the connections still open, then return with a clean
  // handler ledger (the destructor would join them too; run() returning
  // with work still streaming would surprise callers like phonocd
  // --max-conns).
  std::vector<Handler> rest;
  {
    const std::lock_guard<std::mutex> lock(handlers_mutex_);
    rest.swap(handlers_);
  }
  for (auto& handler : rest)
    if (handler.thread.joinable()) handler.thread.join();
}

}  // namespace phonoc
