#pragma once
/// \file cache.hpp
/// \brief Cross-request reuse state of the phonocd service.
///
/// Two things survive between requests, both keyed by the canonical
/// problem identity {resolved side, topology, workload, goal, shared
/// architecture knobs}:
///  * the constructed MappingProblem (network construction dominates a
///    small request's cost), LRU-capped at `max_problems`;
///  * an EvaluatorMemo snapshot bank: after each Optimize cell runs,
///    its evaluator memo is harvested and merged into the key's bank;
///    the next cell of the same problem preloads it. Memo entries are
///    exact {assignment, fitness} pairs, so preloading shifts physical
///    cost only — fitness values and logical evaluation counts (and
///    therefore the bit-identity contract against an in-process
///    BatchEngine run) are untouched.
///
/// The canonical key is the write_spec serialization of a
/// single-coordinate sub-spec with the resolved side pinned explicitly,
/// so "side 0" (auto-sized) can never alias a different explicit side,
/// and two requests that spell the same problem differently still share
/// one slot.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/evaluator.hpp"
#include "core/problem.hpp"
#include "exec/sweep.hpp"

namespace phonoc {

class ServiceCache {
 public:
  struct Options {
    /// Distinct problems kept alive (LRU beyond that). Evicting a
    /// problem drops its memo bank with it.
    std::size_t max_problems = 64;
    /// Memo snapshot entries kept per problem; 0 disables the bank.
    std::size_t memo_capacity = 4096;
  };

  struct Counters {
    std::uint64_t problem_hits = 0;
    std::uint64_t problem_misses = 0;
    std::uint64_t problem_evictions = 0;
  };

  explicit ServiceCache(Options options);

  /// Canonical problem identity of one grid coordinate (see file
  /// comment). Kind-independent: Optimize and Sample grids over the
  /// same workload/topology/goal share a slot.
  [[nodiscard]] static std::string key_of(const SweepSpec& spec,
                                          const SweepCell& cell);

  /// The problem of `cell`, built on a miss and shared on a hit. The
  /// construction happens under the cache lock (callers build problems
  /// serially per request anyway); the returned pointer stays valid
  /// after eviction for as long as the caller holds it.
  [[nodiscard]] std::shared_ptr<const MappingProblem> problem(
      const SweepSpec& spec, const SweepCell& cell, const std::string& key);

  /// Preload `evaluator` with the key's memo bank (no-op for unknown
  /// keys or a disabled bank).
  void seed_memo(const std::string& key, Evaluator& evaluator) const;

  /// Merge the evaluator's memo into the key's bank: fresh entries
  /// first, then surviving old ones, deduplicated and truncated to
  /// `memo_capacity`. No-op for unknown (evicted) keys.
  void harvest_memo(const std::string& key, const Evaluator& evaluator);

  [[nodiscard]] Counters counters() const;

 private:
  struct Slot {
    std::shared_ptr<const MappingProblem> problem;
    EvaluatorMemo memo;
    std::list<std::string>::iterator lru_it;
  };

  void touch(Slot& slot) const;

  Options options_;
  mutable std::mutex mutex_;
  mutable std::list<std::string> lru_;  ///< most-recent first
  std::map<std::string, Slot> slots_;
  Counters counters_;
};

}  // namespace phonoc
