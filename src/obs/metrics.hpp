#pragma once
/// \file metrics.hpp
/// \brief Fleet telemetry: a process-wide registry of named counters,
/// gauges and fixed-bin histograms with Prometheus text exposition.
///
/// The registry generalizes the hand-rolled ServiceMetrics fields: any
/// layer registers a metric once (name + help + optional labels) and
/// holds the returned reference; increments are single relaxed atomic
/// ops, so instrumenting a hot seam costs nanoseconds and never locks.
/// Metrics of the same name but different label sets form one family
/// and render under one `# HELP`/`# TYPE` header, e.g.
///
///     # HELP phonoc_sched_units_total Work units acquired by path.
///     # TYPE phonoc_sched_units_total counter
///     phonoc_sched_units_total{path="steal"} 4
///     phonoc_sched_units_total{path="own"} 28
///
/// Naming follows Prometheus conventions: `phonoc_<layer>_<what>` with
/// a `_total` suffix for monotonic counters and base-unit names
/// (`_seconds`, `_cells`). Labels are for low-cardinality dimensions —
/// host, backend, task kind, acquire path — never per-request ids.
/// phonocd serves the global registry (plus its ServiceMetrics
/// snapshot) over the framed `stats prometheus` request and the plain
/// HTTP `--prom-port` listener (see obs/prom_http.hpp).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace phonoc::obs {

/// One `key="value"` pair of a metric instance.
struct MetricLabel {
  std::string key;
  std::string value;
};
using MetricLabels = std::vector<MetricLabel>;

/// Monotonic counter (Prometheus type `counter`).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Settable point-in-time value (Prometheus type `gauge`).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus type `histogram`): cumulative
/// `_bucket{le=...}` counts plus `_sum` and `_count`. Bucket bounds are
/// fixed at registration, so observing is two relaxed atomic adds and a
/// small linear scan — constant-size state however many observations.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> upper_bounds);

  void observe(double value) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Observations <= bounds()[i] (non-cumulative slot counts are
  /// internal; this is the cumulative Prometheus view). i == size()
  /// is the +Inf bucket == count().
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const noexcept;

 private:
  std::vector<double> bounds_;  ///< sorted upper bounds, +Inf implicit
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;  ///< per-interval
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The registry: register-once, increment-forever. Registration takes a
/// mutex (do it at startup or cache the reference); the returned
/// references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumentation seam feeds.
  [[nodiscard]] static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::string_view help,
                                 MetricLabels labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view help,
                             MetricLabels labels = {});
  [[nodiscard]] HistogramMetric& histogram(std::string_view name,
                                           std::string_view help,
                                           std::vector<double> upper_bounds,
                                           MetricLabels labels = {});

  /// Prometheus text exposition format (0.0.4): families sorted by
  /// name, one HELP/TYPE header per family, instances in registration
  /// order.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Instance {
    std::string label_text;  ///< pre-rendered `key="value",...`
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::Counter;
    std::vector<Instance> instances;
  };

  Family& family_of(std::string_view name, std::string_view help, Kind kind);
  Instance& instance_of(Family& family, const MetricLabels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;
};

// --- exposition helpers (shared with the phonocd snapshot renderer) --------

/// Escape a label value (backslash, quote, newline) per the exposition
/// format.
[[nodiscard]] std::string prometheus_escape(std::string_view value);

/// Render `key="value",...` (no braces) from a label list.
[[nodiscard]] std::string prometheus_label_text(const MetricLabels& labels);

/// Append `# HELP`/`# TYPE` lines. `type` is "counter", "gauge",
/// "histogram" or "untyped".
void append_prometheus_header(std::string& out, std::string_view name,
                              std::string_view help, const char* type);

/// Append one `name{labels} value` sample line (labels may be empty).
void append_prometheus_sample(std::string& out, std::string_view name,
                              const std::string& label_text,
                              std::uint64_t value);
void append_prometheus_sample(std::string& out, std::string_view name,
                              const std::string& label_text, double value);

}  // namespace phonoc::obs
