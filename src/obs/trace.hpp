#pragma once
/// \file trace.hpp
/// \brief The flight recorder: lock-light structured tracing shared by
/// every layer (exec, sched, service).
///
/// Each thread that emits events owns a bounded ring buffer of
/// fixed-size records; emitting is a relaxed atomic check plus a write
/// into thread-local storage (no allocation, no blocking, no
/// cross-thread contention on the hot path). When the ring is full the
/// oldest event is overwritten and a `dropped_events` counter ticks —
/// tracing never stalls the traced system. A flush walks every ring
/// (including rings of threads that have already exited) and renders
/// Chrome `trace_event` JSON that chrome://tracing and Perfetto load
/// directly; `parallel_sweep`, `phonoc_workerd` and `phonocd` expose it
/// as `--trace=FILE`.
///
/// Event model (see src/obs/README.md):
///  - span: a named duration on one thread (TraceSpan RAII emits one
///    "X" complete event on destruction);
///  - instant: a point event ("i");
///  - counter: a sampled numeric series ("C").
/// Category and name must be string literals (their pointers are stored,
/// not their bytes). Args are a small typed list — integers, doubles,
/// or short strings truncated to fit the record — so a span can carry
/// the cell index or request id that stitches one cell's journey across
/// threads and processes.
///
/// Overhead contract: with tracing disabled (the default) every emit
/// path is one relaxed atomic load and a branch; nothing is written,
/// timestamped or locked. Tracing is strictly read-only with respect to
/// results: it never touches RNGs, evaluation state, the wire format or
/// the journal, so traced runs stay bit-identical to untraced ones.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>

namespace phonoc::obs {

/// Is the flight recorder on? Relaxed load; safe from any thread.
[[nodiscard]] bool trace_enabled() noexcept;

/// Arm the recorder: reset the epoch, clear old rings and start
/// recording. Idempotent (a second call just resets the clock).
void start_tracing();

/// Stop recording. Events already in the rings stay flushable.
void stop_tracing();

/// Events overwritten because a ring was full, summed over all threads
/// (including exited ones).
[[nodiscard]] std::uint64_t trace_dropped_events();

/// Events currently held in the rings, summed over all threads.
[[nodiscard]] std::uint64_t trace_event_count();

/// Per-thread ring capacity in events. Takes effect for rings created
/// after the call (start_tracing() discards existing rings, so set this
/// before arming). The default is 64k events per thread.
void set_trace_buffer_capacity(std::size_t events);

/// Render everything recorded so far as Chrome trace_event JSON
/// (object format: {"traceEvents": [...], ...}). Always valid JSON,
/// whatever mix of threads emitted concurrently before the flush.
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace into `path`; false (with a log line) when the
/// file cannot be written. The one-liner behind every --trace=FILE.
bool write_chrome_trace_file(const std::string& path);

/// One typed argument of an event. Keys must be string literals;
/// string values are copied (and truncated) into the record.
struct TraceArg {
  enum class Type : std::uint8_t { None, Int, Uint, Float, Text };
  static constexpr std::size_t kTextCapacity = 23;

  const char* key = nullptr;
  Type type = Type::None;
  union {
    std::int64_t i;
    std::uint64_t u;
    double f;
  };
  char text[kTextCapacity + 1] = {};

  TraceArg() : i(0) {}
  TraceArg(const char* k, std::int64_t value) : key(k), type(Type::Int), i(value) {}
  TraceArg(const char* k, std::uint64_t value) : key(k), type(Type::Uint), u(value) {}
  TraceArg(const char* k, double value) : key(k), type(Type::Float), f(value) {}
  TraceArg(const char* k, std::string_view value) : key(k), type(Type::Text), i(0) {
    const std::size_t n = value.size() < kTextCapacity ? value.size() : kTextCapacity;
    std::memcpy(text, value.data(), n);
    text[n] = '\0';
  }
};

inline constexpr std::size_t kMaxTraceArgs = 3;

/// Emit one point event. No-op when tracing is off.
void trace_instant(const char* category, const char* name);
void trace_instant(const char* category, const char* name, TraceArg a0);
void trace_instant(const char* category, const char* name, TraceArg a0,
                   TraceArg a1);
void trace_instant(const char* category, const char* name, TraceArg a0,
                   TraceArg a1, TraceArg a2);

/// Emit one sample of a counter series. No-op when tracing is off.
void trace_counter(const char* category, const char* name, double value);

/// RAII span: construction stamps the begin time, destruction emits one
/// complete ("X") event covering the scope. When tracing is off the
/// constructor is a relaxed load and a branch, and nothing else runs.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach an argument (at most kMaxTraceArgs; extras are dropped).
  /// Cheap no-op on a disarmed span.
  void arg(TraceArg value) noexcept;

 private:
  bool armed_;
  std::uint8_t arg_count_ = 0;
  const char* category_;
  const char* name_;
  std::uint64_t begin_ns_ = 0;
  TraceArg args_[kMaxTraceArgs];
};

}  // namespace phonoc::obs
