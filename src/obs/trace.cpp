#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace phonoc::obs {
namespace {

constexpr std::size_t kDefaultRingCapacity = 1 << 16;

/// One recorded event. Fixed size so the ring never allocates while
/// recording; `args` copies short strings, everything else is POD.
struct Event {
  enum class Kind : std::uint8_t { Complete, Instant, Counter };
  Kind kind = Kind::Instant;
  std::uint8_t arg_count = 0;
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< Complete spans only
  double value = 0.0;        ///< Counter samples only
  TraceArg args[kMaxTraceArgs];
};

/// One thread's bounded ring. The owning thread appends under `mutex`;
/// contention only ever comes from a flush, so the lock is effectively
/// private (uncontended) while recording.
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, std::uint64_t tid)
      : events(capacity), tid(tid) {}

  std::mutex mutex;
  std::vector<Event> events;  ///< sized once; never reallocates
  std::size_t next = 0;       ///< ring cursor
  std::size_t count = 0;      ///< live events (<= events.size())
  std::uint64_t dropped = 0;  ///< overwritten because the ring was full
  std::uint64_t tid = 0;      ///< registration-order thread id

  void push(const Event& event) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (count == events.size()) ++dropped;  // overwrite the oldest
    else ++count;
    events[next] = event;
    next = (next + 1) % events.size();
  }
};

struct Recorder {
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_ns{0};  ///< steady_clock origin
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::size_t> ring_capacity{kDefaultRingCapacity};

  /// Rings of every thread that emitted since the last start_tracing(),
  /// kept alive (shared_ptr) past thread exit so a flush at the end of
  /// main() still sees them.
  std::mutex registry_mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint64_t next_tid = 1;
};

Recorder& recorder() {
  static Recorder instance;
  return instance;
}

std::uint64_t now_ns() noexcept {
  const auto now =
      std::chrono::steady_clock::now().time_since_epoch();
  const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  const std::int64_t epoch =
      recorder().epoch_ns.load(std::memory_order_relaxed);
  return ns > epoch ? static_cast<std::uint64_t>(ns - epoch) : 0;
}

/// The calling thread's ring for the current recording generation,
/// registered on first use (and re-registered after start_tracing()
/// bumped the generation).
ThreadRing& local_ring() {
  thread_local std::shared_ptr<ThreadRing> ring;
  thread_local std::uint64_t ring_generation = ~std::uint64_t{0};
  Recorder& rec = recorder();
  const std::uint64_t generation =
      rec.generation.load(std::memory_order_acquire);
  if (!ring || ring_generation != generation) {
    const std::lock_guard<std::mutex> lock(rec.registry_mutex);
    ring = std::make_shared<ThreadRing>(
        rec.ring_capacity.load(std::memory_order_relaxed), rec.next_tid++);
    rec.rings.push_back(ring);
    ring_generation = generation;
  }
  return *ring;
}

void emit(Event event) {
  event.ts_ns = event.ts_ns != 0 ? event.ts_ns : now_ns();
  local_ring().push(event);
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// A JSON number that is always finite and parseable: Chrome's trace
/// format has no Inf/NaN, so those render as null.
void append_json_number(std::string& out, double value) {
  if (!(value == value) || value > 1.7e308 || value < -1.7e308) {
    out += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_args(std::string& out, const Event& event) {
  out += "\"args\":{";
  for (std::uint8_t i = 0; i < event.arg_count; ++i) {
    const TraceArg& arg = event.args[i];
    if (i > 0) out += ',';
    out += '"';
    append_json_escaped(out, arg.key ? arg.key : "arg");
    out += "\":";
    char buffer[32];
    switch (arg.type) {
      case TraceArg::Type::Int:
        std::snprintf(buffer, sizeof buffer, "%" PRId64, arg.i);
        out += buffer;
        break;
      case TraceArg::Type::Uint:
        std::snprintf(buffer, sizeof buffer, "%" PRIu64, arg.u);
        out += buffer;
        break;
      case TraceArg::Type::Float:
        append_json_number(out, arg.f);
        break;
      case TraceArg::Type::Text:
        out += '"';
        append_json_escaped(out, arg.text);
        out += '"';
        break;
      case TraceArg::Type::None:
        out += "null";
        break;
    }
  }
  out += '}';
}

void append_event(std::string& out, const Event& event, long pid,
                  std::uint64_t tid) {
  char buffer[96];
  out += "{\"ph\":\"";
  switch (event.kind) {
    case Event::Kind::Complete: out += 'X'; break;
    case Event::Kind::Instant: out += 'i'; break;
    case Event::Kind::Counter: out += 'C'; break;
  }
  out += "\",\"cat\":\"";
  append_json_escaped(out, event.category ? event.category : "phonoc");
  out += "\",\"name\":\"";
  append_json_escaped(out, event.name ? event.name : "?");
  // Chrome expects microseconds; keep nanosecond resolution as decimals.
  std::snprintf(buffer, sizeof buffer,
                "\",\"pid\":%ld,\"tid\":%" PRIu64 ",\"ts\":%.3f", pid, tid,
                static_cast<double>(event.ts_ns) / 1e3);
  out += buffer;
  if (event.kind == Event::Kind::Complete) {
    std::snprintf(buffer, sizeof buffer, ",\"dur\":%.3f",
                  static_cast<double>(event.dur_ns) / 1e3);
    out += buffer;
  }
  if (event.kind == Event::Kind::Instant) out += ",\"s\":\"t\"";
  if (event.kind == Event::Kind::Counter) {
    out += ",\"args\":{\"value\":";
    append_json_number(out, event.value);
    out += '}';
  } else {
    out += ',';
    append_args(out, event);
  }
  out += '}';
}

}  // namespace

bool trace_enabled() noexcept {
  return recorder().enabled.load(std::memory_order_relaxed);
}

void start_tracing() {
  Recorder& rec = recorder();
  {
    const std::lock_guard<std::mutex> lock(rec.registry_mutex);
    rec.rings.clear();
    rec.next_tid = 1;
  }
  rec.epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count(),
                     std::memory_order_relaxed);
  // The generation bump makes every thread re-register its ring lazily;
  // release pairs with the acquire in local_ring().
  rec.generation.fetch_add(1, std::memory_order_release);
  rec.enabled.store(true, std::memory_order_relaxed);
}

void stop_tracing() {
  recorder().enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t trace_dropped_events() {
  Recorder& rec = recorder();
  const std::lock_guard<std::mutex> lock(rec.registry_mutex);
  std::uint64_t dropped = 0;
  for (const auto& ring : rec.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    dropped += ring->dropped;
  }
  return dropped;
}

std::uint64_t trace_event_count() {
  Recorder& rec = recorder();
  const std::lock_guard<std::mutex> lock(rec.registry_mutex);
  std::uint64_t count = 0;
  for (const auto& ring : rec.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    count += ring->count;
  }
  return count;
}

void set_trace_buffer_capacity(std::size_t events) {
  recorder().ring_capacity.store(events > 0 ? events : 1,
                                 std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& out) {
  Recorder& rec = recorder();
  long pid = 1;
#if defined(__unix__) || defined(__APPLE__)
  pid = static_cast<long>(::getpid());
#endif
  // Snapshot the ring list, then drain each ring under its own lock;
  // threads still emitting append behind the snapshot point, which is
  // the best any flush of a live system can promise.
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    const std::lock_guard<std::mutex> lock(rec.registry_mutex);
    rings = rec.rings;
  }
  std::string json;
  json += "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& ring : rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    dropped += ring->dropped;
    // Oldest first: a full ring's oldest record sits at the cursor.
    const std::size_t capacity = ring->events.size();
    const std::size_t start =
        ring->count == capacity ? ring->next : (ring->next - ring->count);
    for (std::size_t i = 0; i < ring->count; ++i) {
      if (!first) json += ",\n";
      first = false;
      append_event(json, ring->events[(start + i) % capacity], pid,
                   ring->tid);
    }
  }
  char buffer[96];
  std::snprintf(buffer, sizeof buffer,
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"dropped_events\":%" PRIu64 "}}",
                dropped);
  json += buffer;
  out << json;
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    log_error("obs") << "cannot open trace file '" << path << "' for writing";
    return false;
  }
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    log_error("obs") << "writing trace file '" << path << "' failed";
    return false;
  }
  return true;
}

void trace_instant(const char* category, const char* name) {
  if (!trace_enabled()) return;
  Event event;
  event.kind = Event::Kind::Instant;
  event.category = category;
  event.name = name;
  emit(event);
}

void trace_instant(const char* category, const char* name, TraceArg a0) {
  if (!trace_enabled()) return;
  Event event;
  event.kind = Event::Kind::Instant;
  event.category = category;
  event.name = name;
  event.arg_count = 1;
  event.args[0] = a0;
  emit(event);
}

void trace_instant(const char* category, const char* name, TraceArg a0,
                   TraceArg a1) {
  if (!trace_enabled()) return;
  Event event;
  event.kind = Event::Kind::Instant;
  event.category = category;
  event.name = name;
  event.arg_count = 2;
  event.args[0] = a0;
  event.args[1] = a1;
  emit(event);
}

void trace_instant(const char* category, const char* name, TraceArg a0,
                   TraceArg a1, TraceArg a2) {
  if (!trace_enabled()) return;
  Event event;
  event.kind = Event::Kind::Instant;
  event.category = category;
  event.name = name;
  event.arg_count = 3;
  event.args[0] = a0;
  event.args[1] = a1;
  event.args[2] = a2;
  emit(event);
}

void trace_counter(const char* category, const char* name, double value) {
  if (!trace_enabled()) return;
  Event event;
  event.kind = Event::Kind::Counter;
  event.category = category;
  event.name = name;
  event.value = value;
  emit(event);
}

TraceSpan::TraceSpan(const char* category, const char* name) noexcept
    : armed_(trace_enabled()), category_(category), name_(name) {
  if (armed_) begin_ns_ = now_ns();
}

void TraceSpan::arg(TraceArg value) noexcept {
  if (!armed_ || arg_count_ >= kMaxTraceArgs) return;
  args_[arg_count_++] = value;
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  Event event;
  event.kind = Event::Kind::Complete;
  event.category = category_;
  event.name = name_;
  event.ts_ns = begin_ns_;
  const std::uint64_t end = now_ns();
  event.dur_ns = end > begin_ns_ ? end - begin_ns_ : 0;
  event.arg_count = arg_count_;
  for (std::uint8_t i = 0; i < arg_count_; ++i) event.args[i] = args_[i];
  emit(event);
}

}  // namespace phonoc::obs
