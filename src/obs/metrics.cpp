#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace phonoc::obs {

namespace {

/// Escape HELP text: backslash and newline only (quotes are legal there).
std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Render a double the way Prometheus expects: shortest faithful
/// decimal, `+Inf`/`-Inf`/`NaN` spelled out.
std::string format_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Prefer the shorter %g rendering when it round-trips exactly.
  char short_buffer[64];
  std::snprintf(short_buffer, sizeof short_buffer, "%g", value);
  double parsed = 0.0;
  if (std::sscanf(short_buffer, "%lf", &parsed) == 1 && parsed == value) {
    return short_buffer;
  }
  return buffer;
}

}  // namespace

// --- HistogramMetric -------------------------------------------------------

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) slots_[i].store(0);
}

void HistogramMetric::observe(double value) noexcept {
  std::size_t slot = bounds_.size();  // +Inf interval by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      slot = i;
      break;
    }
  }
  slots_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t HistogramMetric::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  const std::size_t last = i < bounds_.size() ? i : bounds_.size();
  for (std::size_t s = 0; s <= last; ++s) {
    total += slots_[s].load(std::memory_order_relaxed);
  }
  return total;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Family& MetricsRegistry::family_of(std::string_view name,
                                                    std::string_view help,
                                                    Kind kind) {
  for (auto& family : families_) {
    if (family->name == name) return *family;
  }
  auto family = std::make_unique<Family>();
  family->name = std::string(name);
  family->help = std::string(help);
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

MetricsRegistry::Instance& MetricsRegistry::instance_of(
    Family& family, const MetricLabels& labels) {
  const std::string label_text = prometheus_label_text(labels);
  for (auto& instance : family.instances) {
    if (instance.label_text == label_text) return instance;
  }
  family.instances.emplace_back();
  family.instances.back().label_text = label_text;
  return family.instances.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_of(name, help, Kind::Counter);
  Instance& instance = instance_of(family, labels);
  if (!instance.counter) instance.counter = std::make_unique<Counter>();
  return *instance.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_of(name, help, Kind::Gauge);
  Instance& instance = instance_of(family, labels);
  if (!instance.gauge) instance.gauge = std::make_unique<Gauge>();
  return *instance.gauge;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            std::string_view help,
                                            std::vector<double> upper_bounds,
                                            MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_of(name, help, Kind::Histogram);
  Instance& instance = instance_of(family, labels);
  if (!instance.histogram) {
    instance.histogram =
        std::make_unique<HistogramMetric>(std::move(upper_bounds));
  }
  return *instance.histogram;
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Sort family pointers by name for a stable, diff-friendly exposition.
  std::vector<const Family*> sorted;
  sorted.reserve(families_.size());
  for (const auto& family : families_) sorted.push_back(family.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Family* a, const Family* b) { return a->name < b->name; });

  std::string out;
  for (const Family* family : sorted) {
    const char* type = family->kind == Kind::Counter   ? "counter"
                       : family->kind == Kind::Gauge   ? "gauge"
                                                       : "histogram";
    append_prometheus_header(out, family->name, family->help, type);
    for (const Instance& instance : family->instances) {
      if (instance.counter) {
        append_prometheus_sample(out, family->name, instance.label_text,
                                 instance.counter->value());
      } else if (instance.gauge) {
        append_prometheus_sample(out, family->name, instance.label_text,
                                 instance.gauge->value());
      } else if (instance.histogram) {
        const HistogramMetric& h = *instance.histogram;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          std::string labels = instance.label_text;
          if (!labels.empty()) labels += ',';
          labels += "le=\"" + format_value(h.bounds()[i]) + "\"";
          append_prometheus_sample(out, std::string(family->name) + "_bucket",
                                   labels, h.cumulative(i));
        }
        std::string inf_labels = instance.label_text;
        if (!inf_labels.empty()) inf_labels += ',';
        inf_labels += "le=\"+Inf\"";
        append_prometheus_sample(out, std::string(family->name) + "_bucket",
                                 inf_labels, h.count());
        append_prometheus_sample(out, std::string(family->name) + "_sum",
                                 instance.label_text, h.sum());
        append_prometheus_sample(out, std::string(family->name) + "_count",
                                 instance.label_text, h.count());
      }
    }
  }
  return out;
}

// --- exposition helpers ----------------------------------------------------

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_label_text(const MetricLabels& labels) {
  std::string out;
  for (const MetricLabel& label : labels) {
    if (!out.empty()) out += ',';
    out += label.key + "=\"" + prometheus_escape(label.value) + "\"";
  }
  return out;
}

void append_prometheus_header(std::string& out, std::string_view name,
                              std::string_view help, const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += escape_help(help);
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

namespace {
void append_sample_line(std::string& out, std::string_view name,
                        const std::string& label_text,
                        const std::string& value) {
  out += name;
  if (!label_text.empty()) {
    out += '{';
    out += label_text;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}
}  // namespace

void append_prometheus_sample(std::string& out, std::string_view name,
                              const std::string& label_text,
                              std::uint64_t value) {
  append_sample_line(out, name, label_text, std::to_string(value));
}

void append_prometheus_sample(std::string& out, std::string_view name,
                              const std::string& label_text, double value) {
  append_sample_line(out, name, label_text, format_value(value));
}

}  // namespace phonoc::obs
