#include "obs/prom_http.hpp"

#include <atomic>
#include <thread>

#include "sched/transport.hpp"
#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PHONOC_HAS_SOCKETS 1
#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PHONOC_HAS_SOCKETS 0
#include "util/error.hpp"
#endif

namespace phonoc::obs {

#if PHONOC_HAS_SOCKETS

namespace {

/// Read until the end of the HTTP request head (`\r\n\r\n`) or the
/// peer stops sending. The request line/headers are not interpreted —
/// every request is a scrape — but the head must be consumed so the
/// peer's send never blocks against our response.
bool read_request_head(int fd) {
  std::string head;
  char buffer[4096];
  while (head.size() < (1u << 16)) {
    struct pollfd pfd {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 2000);
    if (ready <= 0) return false;
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    head.append(buffer, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos)
      return true;
  }
  return false;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

struct PromHttpServer::Impl {
  TcpListener listener;
  Render render;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::thread thread;

  Impl(std::uint16_t port, Render render_fn)
      : listener(port), render(std::move(render_fn)) {}

  void run() {
    while (!stop.load(std::memory_order_relaxed)) {
      const int fd = listener.accept_fd_for(0.2);
      if (fd < 0) continue;
      if (read_request_head(fd)) {
        std::string body;
        try {
          body = render();
        } catch (const std::exception& e) {
          body = std::string("# render failed: ") + e.what() + "\n";
        }
        std::string response =
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n\r\n";
        response += body;
        write_all(fd, response);
        served.fetch_add(1, std::memory_order_relaxed);
      }
      ::close(fd);
    }
  }
};

PromHttpServer::PromHttpServer(std::uint16_t port, Render render)
    : impl_(std::make_unique<Impl>(port, std::move(render))) {
  impl_->thread = std::thread([impl = impl_.get()] { impl->run(); });
  log_info("obs") << "prometheus scrape listener on 127.0.0.1:"
                  << impl_->listener.port();
}

PromHttpServer::~PromHttpServer() {
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->thread.join();
}

std::uint16_t PromHttpServer::port() const noexcept {
  return impl_->listener.port();
}

std::uint64_t PromHttpServer::requests_served() const noexcept {
  return impl_->served.load(std::memory_order_relaxed);
}

#else  // !PHONOC_HAS_SOCKETS

struct PromHttpServer::Impl {};

PromHttpServer::PromHttpServer(std::uint16_t, Render) {
  throw ExecError("PromHttpServer requires a POSIX platform (sockets)");
}
PromHttpServer::~PromHttpServer() = default;
std::uint16_t PromHttpServer::port() const noexcept { return 0; }
std::uint64_t PromHttpServer::requests_served() const noexcept { return 0; }

#endif

}  // namespace phonoc::obs
