#pragma once
/// \file prom_http.hpp
/// \brief Minimal plain-HTTP scrape listener for Prometheus.
///
/// phonocd's native surface is the framed protocol (`stats prometheus`
/// over a frame-speaking client), but a stock Prometheus server — or a
/// bare `curl localhost:N/metrics` — speaks HTTP/1.1. PromHttpServer
/// runs one background thread that accepts connections on a loopback
/// TCP port (reusing the sched transport's TcpListener socket
/// plumbing), reads one request, answers `200 OK text/plain` with the
/// body produced by the render callback, and closes. Any path serves
/// the metrics; there is nothing else to route.
///
/// Scope: a scrape endpoint, not a web server. One request per
/// connection, no keep-alive, no TLS, loopback bind only — matching the
/// threat model of the framed listener next to it.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace phonoc::obs {

class PromHttpServer {
 public:
  /// Produces the exposition body for one scrape (called per request,
  /// from the listener thread).
  using Render = std::function<std::string()>;

  /// Binds and starts serving immediately; throws ExecError when the
  /// port cannot be bound. `port` 0 picks an ephemeral port.
  PromHttpServer(std::uint16_t port, Render render);
  /// Stops the listener thread and closes the socket.
  ~PromHttpServer();
  PromHttpServer(const PromHttpServer&) = delete;
  PromHttpServer& operator=(const PromHttpServer&) = delete;

  /// The bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept;
  /// Requests answered so far.
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace phonoc::obs
