#pragma once
/// \file experiment.hpp
/// \brief Paper-experiment presets: build the exact problem instances of
/// §III (benchmark app on the smallest fitting square mesh/torus with
/// the Crux router and dimension-order routing).

#include <memory>
#include <string>

#include "core/problem.hpp"
#include "photonics/parameters.hpp"

namespace phonoc {

/// Topology family used by the case studies.
enum class TopologyKind { Mesh, Torus };

[[nodiscard]] std::string to_string(TopologyKind kind);

struct ExperimentSpec {
  std::string benchmark = "mpeg4";     ///< one of benchmark_names()
  TopologyKind topology = TopologyKind::Mesh;
  std::string router = "crux";         ///< registered router name
  OptimizationGoal goal = OptimizationGoal::Snr;
  double tile_pitch_mm = 2.5;
  PhysicalParameters parameters = PhysicalParameters::paper_defaults();
  NetworkModelOptions model_options = {};
  /// Grid side override; 0 = smallest square fitting the task count
  /// (the paper's sizing rule).
  std::uint32_t grid_side = 0;
};

/// Build the complete problem for a spec. The mesh uses XY routing, the
/// torus shortest-way dimension-order routing, as in the paper.
[[nodiscard]] MappingProblem make_experiment(const ExperimentSpec& spec);

/// Convenience: network only (no CG/objective), e.g. for scalability
/// sweeps over synthetic workloads.
[[nodiscard]] std::shared_ptr<const NetworkModel> make_network(
    TopologyKind topology, std::uint32_t side, const std::string& router,
    double tile_pitch_mm = 2.5,
    const PhysicalParameters& parameters = PhysicalParameters::paper_defaults(),
    const NetworkModelOptions& model_options = {});

}  // namespace phonoc
