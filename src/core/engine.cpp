#include "core/engine.hpp"

#include <algorithm>
#include <future>

#include "exec/thread_pool.hpp"
#include "mapping/branch_and_bound.hpp"
#include "mapping/greedy.hpp"
#include "mapping/registry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

Engine::Engine(const MappingProblem& problem,
               EvaluatorOptions evaluator_options)
    : problem_(problem), evaluator_options_(evaluator_options) {}

RunResult Engine::run(const std::string& optimizer_name,
                      const OptimizerBudget& budget,
                      std::uint64_t seed) const {
  Evaluator evaluator(problem_, evaluator_options_);
  return run_with(evaluator, optimizer_name, budget, seed);
}

RunResult Engine::run(const MappingOptimizer& optimizer,
                      const OptimizerBudget& budget,
                      std::uint64_t seed) const {
  Evaluator evaluator(problem_, evaluator_options_);
  return run_with(evaluator, optimizer, budget, seed);
}

RunResult Engine::run_with(Evaluator& evaluator,
                           const std::string& optimizer_name,
                           const OptimizerBudget& budget,
                           std::uint64_t seed) const {
  // Context-dependent strategies are constructed from the problem here;
  // everything else resolves through the registry.
  if (to_lower(optimizer_name) == "greedy") {
    const GreedyConstructive greedy(problem_.cg(),
                                    problem_.network().topology());
    return run_with(evaluator, greedy, budget, seed);
  }
  if (to_lower(optimizer_name) == "bnb") {
    const BranchAndBound bnb(problem_.cg(), problem_.network_ptr());
    return run_with(evaluator, bnb, budget, seed);
  }
  const auto optimizer = make_optimizer(optimizer_name);
  return run_with(evaluator, *optimizer, budget, seed);
}

RunResult Engine::run_with(Evaluator& evaluator,
                           const MappingOptimizer& optimizer,
                           const OptimizerBudget& budget,
                           std::uint64_t seed) const {
  require(&evaluator.problem() == &problem_,
          "Engine::run_with: the evaluator wraps a different problem");
  RunResult result;
  result.algorithm = optimizer.name();
  result.search = optimizer.optimize(evaluator, problem_.task_count(),
                                     problem_.tile_count(), budget, seed);
  result.best_evaluation = evaluator.evaluate_detailed(result.search.best);
  return result;
}

std::vector<RunResult> Engine::compare(
    const std::vector<std::string>& optimizer_names,
    const OptimizerBudget& budget, std::uint64_t seed,
    std::size_t workers) const {
  if (workers == 0) workers = optimizer_names.size();
  if (workers <= 1 || optimizer_names.size() <= 1) {
    std::vector<RunResult> results;
    results.reserve(optimizer_names.size());
    for (const auto& name : optimizer_names)
      results.push_back(run(name, budget, seed));
    return results;
  }
  std::vector<RunResult> results(optimizer_names.size());
  ThreadPool pool(std::min(workers, optimizer_names.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(optimizer_names.size());
  for (std::size_t i = 0; i < optimizer_names.size(); ++i)
    futures.push_back(pool.submit([this, &results, &optimizer_names, &budget,
                                   seed, i] {
      results[i] = run(optimizer_names[i], budget, seed);
    }));
  try {
    for (auto& future : futures) future.get();
  } catch (...) {
    pool.cancel_pending();
    throw;
  }
  return results;
}

}  // namespace phonoc
