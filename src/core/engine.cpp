#include "core/engine.hpp"

#include "mapping/branch_and_bound.hpp"
#include "mapping/greedy.hpp"
#include "mapping/registry.hpp"
#include "util/strings.hpp"

namespace phonoc {

Engine::Engine(const MappingProblem& problem) : problem_(problem) {}

RunResult Engine::run(const std::string& optimizer_name,
                      const OptimizerBudget& budget,
                      std::uint64_t seed) const {
  // Context-dependent strategies are constructed from the problem here;
  // everything else resolves through the registry.
  if (to_lower(optimizer_name) == "greedy") {
    const GreedyConstructive greedy(problem_.cg(),
                                    problem_.network().topology());
    return run(greedy, budget, seed);
  }
  if (to_lower(optimizer_name) == "bnb") {
    const BranchAndBound bnb(problem_.cg(), problem_.network_ptr());
    return run(bnb, budget, seed);
  }
  const auto optimizer = make_optimizer(optimizer_name);
  return run(*optimizer, budget, seed);
}

RunResult Engine::run(const MappingOptimizer& optimizer,
                      const OptimizerBudget& budget,
                      std::uint64_t seed) const {
  Evaluator evaluator(problem_);
  RunResult result;
  result.algorithm = optimizer.name();
  result.search = optimizer.optimize(evaluator, problem_.task_count(),
                                     problem_.tile_count(), budget, seed);
  result.best_evaluation = evaluator.evaluate_detailed(result.search.best);
  return result;
}

std::vector<RunResult> Engine::compare(
    const std::vector<std::string>& optimizer_names,
    const OptimizerBudget& budget, std::uint64_t seed) const {
  std::vector<RunResult> results;
  results.reserve(optimizer_names.size());
  for (const auto& name : optimizer_names)
    results.push_back(run(name, budget, seed));
  return results;
}

}  // namespace phonoc
