#include "core/problem.hpp"

#include "util/error.hpp"

namespace phonoc {

MappingProblem::MappingProblem(CommGraph cg,
                               std::shared_ptr<const NetworkModel> network,
                               std::shared_ptr<const Objective> objective)
    : cg_(std::move(cg)),
      network_(std::move(network)),
      objective_(std::move(objective)) {
  require(network_ != nullptr, "MappingProblem: null network model");
  require(objective_ != nullptr, "MappingProblem: null objective");
  cg_.validate();
  require(cg_.task_count() <= network_->tile_count(),
          "MappingProblem: more tasks than tiles (violates Eq. 2: "
          "size(C) <= size(T))");
}

}  // namespace phonoc
