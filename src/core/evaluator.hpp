#pragma once
/// \file evaluator.hpp
/// \brief The Mapping Evaluator (paper Fig. 1, block 4): bridges the
/// physical-layer evaluation and the optimizer's fitness interface,
/// counting evaluations along the way.

#include <cstdint>

#include "core/problem.hpp"
#include "mapping/optimizer.hpp"

namespace phonoc {

class Evaluator final : public FitnessFunction {
 public:
  explicit Evaluator(const MappingProblem& problem);

  /// Fitness (higher = better) of a mapping under the problem objective.
  [[nodiscard]] double evaluate(const Mapping& mapping) override;

  /// Full evaluation with per-edge detail (reporting; not counted
  /// against the fitness statistics).
  [[nodiscard]] EvaluationResult evaluate_detailed(
      const Mapping& mapping) const;

  /// Both worst-case metrics of a mapping (convenience for sampling
  /// experiments that record loss and SNR simultaneously, like Fig. 3).
  [[nodiscard]] EvaluationResult evaluate_raw(const Mapping& mapping) const;

  [[nodiscard]] std::uint64_t evaluation_count() const noexcept {
    return count_;
  }
  void reset_count() noexcept { count_ = 0; }

  [[nodiscard]] const MappingProblem& problem() const noexcept {
    return problem_;
  }

 private:
  const MappingProblem& problem_;
  bool needs_detail_;
  std::uint64_t count_ = 0;
};

}  // namespace phonoc
