#pragma once
/// \file evaluator.hpp
/// \brief The Mapping Evaluator (paper Fig. 1, block 4): bridges the
/// physical-layer evaluation and the optimizer's fitness interface.
///
/// The Evaluator implements both fitness paths:
///  * the whole-mapping path (`evaluate`), backed by `evaluate_mapping`
///    and an assignment-keyed LRU memo — RS and GA re-sample duplicate
///    mappings at small problem sizes, and a cache hit skips the
///    physical evaluation entirely;
///  * the transactional move path (`propose_swap` / `commit_move` /
///    `revert_move` / `apply_move`), backed by the incremental kernel
///    (model/incremental.hpp) — SA, tabu and R-PBLA score two-tile
///    swaps in O(touched edges x |E|) instead of O(|E|^2).
///
/// Counting contract: `evaluation_count` counts *logical* evaluations —
/// one per `evaluate` or `propose_swap` call, whether it was served by
/// the cache, the kernel, or a full computation. Budgets, traces and
/// the exec subsystem's bit-identical determinism protocol observe
/// logical counts only, so enabling the cache or the incremental path
/// cannot change any optimizer's trajectory. `physical_evaluation_count`
/// reports how many full `evaluate_mapping` runs actually happened.

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/problem.hpp"
#include "mapping/optimizer.hpp"
#include "model/batch_eval.hpp"
#include "model/incremental.hpp"

namespace phonoc {

/// Portable snapshot of the whole-mapping fitness memo, most-recent
/// first. The service layer (src/service/) exports a cell's memo after
/// its run and preloads the next cell of the same problem with it, so
/// repeated requests hit across Evaluator instances. Snapshot entries
/// are exact (full assignment + fitness), so seeding a fresh Evaluator
/// from one can never change a fitness value or a logical evaluation
/// count — only how many physical evaluations the run costs.
struct EvaluatorMemo {
  struct Entry {
    std::vector<TileId> assignment;
    double fitness = 0.0;
  };
  std::vector<Entry> entries;
};

struct EvaluatorOptions {
  /// Capacity (entries) of the whole-mapping fitness memo; 0 disables
  /// it. Keyed by the full assignment (hash-bucketed, equality-checked),
  /// so a hit is always exact.
  std::size_t cache_capacity = 1024;
  /// Serve the move API with the incremental kernel; when false the
  /// move API falls back to whole-mapping evaluation (A/B baseline).
  bool incremental = true;
};

class Evaluator final : public FitnessFunction {
 public:
  explicit Evaluator(const MappingProblem& problem,
                     EvaluatorOptions options = {});

  /// Fitness (higher = better) of a mapping under the problem objective.
  [[nodiscard]] double evaluate(const Mapping& mapping) override;

  /// Batched fitness through the SoA kernel (model/batch_eval.hpp):
  /// physical scoring runs one vectorized pass over the whole batch,
  /// while fitness values, logical/physical counts and the memo's
  /// contents + recency order stay exactly what a sequential loop of
  /// `evaluate` calls would produce. The memo is peeked (no mutation)
  /// to decide which rows need physical scoring, the kernel scores
  /// those in one pass, and a sequential replay then performs the real
  /// lookups/inserts in index order; a row whose peek promised a hit
  /// that was evicted before its replay turn falls back to one scalar
  /// evaluation (bit-identical by the kernel's contract).
  void evaluate_batch(std::span<const Mapping> mappings,
                      std::span<double> out) override;

  [[nodiscard]] bool supports_moves() const override {
    return options_.incremental;
  }
  [[nodiscard]] double propose_swap(const Mapping& after, TileId a,
                                    TileId b) override;
  void commit_move() override;
  void revert_move() override;
  void apply_move(const Mapping& after, TileId a, TileId b) override;

  /// Full evaluation with per-edge detail (reporting; not counted
  /// against the fitness statistics).
  [[nodiscard]] EvaluationResult evaluate_detailed(
      const Mapping& mapping) const;

  /// Both worst-case metrics of a mapping (convenience for sampling
  /// experiments that record loss and SNR simultaneously, like Fig. 3).
  /// Runs with per-edge detail whenever the problem objective needs it,
  /// so `objective().fitness(evaluate_raw(m))` is always well-formed.
  [[nodiscard]] EvaluationResult evaluate_raw(const Mapping& mapping) const;

  /// Batched `evaluate_raw` for consumers that only need the worst-case
  /// pair (Sample cells): `out[i]` holds both Fig. 3 metrics of
  /// `mappings[i]`, bitwise equal to the corresponding `evaluate_raw`
  /// fields. Uncounted, like `evaluate_raw`. Validation is hoisted to
  /// the `Mapping` invariant (its constructor enforces Eq. 5/6), so the
  /// kernel skips the per-row injectivity scan.
  void evaluate_raw_batch(std::span<const Mapping> mappings,
                          std::span<BatchPoint> out) const;

  /// Logical evaluations: one per evaluate/propose_swap call.
  [[nodiscard]] std::uint64_t evaluation_count() const noexcept {
    return count_;
  }
  /// Full evaluate_mapping runs performed by `evaluate` (cache misses).
  [[nodiscard]] std::uint64_t physical_evaluation_count() const noexcept {
    return physical_count_;
  }
  [[nodiscard]] std::uint64_t cache_hit_count() const noexcept {
    return cache_hits_;
  }
  /// `evaluate` calls the enabled memo failed to answer. The counting
  /// contract (asserted by tests/test_incremental.cpp): with the memo
  /// enabled, every `evaluate` call is exactly one hit or one miss
  /// (hits + misses == evaluate calls) and every miss is exactly one
  /// physical evaluation (misses == physical_evaluation_count()). With
  /// the memo disabled neither counter moves.
  [[nodiscard]] std::uint64_t cache_miss_count() const noexcept {
    return cache_misses_;
  }
  /// Entries dropped from the memo's LRU tail to make room (preloading
  /// never evicts and is not counted).
  [[nodiscard]] std::uint64_t cache_eviction_count() const noexcept {
    return cache_evictions_;
  }

  /// Copy the memo's current contents, most-recent first. Counters are
  /// untouched; the snapshot is independent of this instance.
  [[nodiscard]] EvaluatorMemo export_memo() const;

  /// Seed the memo from a snapshot: the snapshot's most recent
  /// `cache_capacity` entries are adopted with their recency order
  /// preserved; assignments already cached are skipped. Nothing is
  /// counted as a hit, miss, or eviction — preloading is cost shifting,
  /// not evaluation activity.
  void preload_memo(const EvaluatorMemo& memo);

  /// Full O(|E|^2) rebuilds of the incremental kernel (base changes).
  [[nodiscard]] std::uint64_t kernel_rebuild_count() const noexcept {
    return kernel_ ? kernel_->rebuild_count() : 0;
  }
  void reset_count() noexcept { count_ = 0; }

  [[nodiscard]] const MappingProblem& problem() const noexcept {
    return problem_;
  }
  [[nodiscard]] const EvaluatorOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Single evaluation backend shared by every public entry point.
  [[nodiscard]] EvaluationResult run_evaluation(const Mapping& mapping,
                                                bool detailed) const;
  /// Lazily built batched kernel (plan construction is O(tiles^2 x
  /// hops), so it only happens once a batch entry point is used).
  [[nodiscard]] BatchEvaluator& batch_kernel() const;
  /// Flatten `mappings` row-major into `batch_scratch_`.
  std::span<const TileId> flatten(std::span<const Mapping> mappings) const;
  /// True when the kernel's committed state equals `after` with the
  /// (a, b) swap undone — i.e. the kernel sits on the caller's pre-move
  /// mapping and can score the move incrementally.
  [[nodiscard]] bool kernel_matches_pre_swap(const Mapping& after, TileId a,
                                             TileId b) const;
  /// Ensure the kernel holds the pre-swap base, rebuilding if the
  /// optimizer re-based (restart, reheat, arbitrary re-assignment).
  void sync_kernel_pre_swap(const Mapping& after, TileId a, TileId b);
  [[nodiscard]] const double* cache_lookup(const Mapping& mapping,
                                           std::uint64_t hash);
  void cache_insert(std::vector<TileId> assignment, std::uint64_t hash,
                    double fitness, bool count_evictions);
  [[nodiscard]] bool cache_contains(std::span<const TileId> assignment,
                                    std::uint64_t hash) const;

  const MappingProblem& problem_;
  EvaluatorOptions options_;
  bool needs_detail_;
  std::uint64_t count_ = 0;
  std::uint64_t physical_count_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;

  // --- whole-mapping LRU memo ------------------------------------------------
  /// Each assignment key is stored exactly once (in its list node); the
  /// index buckets list iterators by `assignment_hash`, and a hit is
  /// confirmed with a full-key comparison, so collisions can never
  /// return a wrong fitness.
  struct CacheNode {
    std::uint64_t hash;
    std::vector<TileId> key;
    double fitness;
  };
  /// Most-recent-first recency list.
  std::list<CacheNode> cache_order_;
  std::unordered_map<std::uint64_t,
                     std::vector<decltype(cache_order_)::iterator>>
      cache_index_;

  // --- incremental move path -------------------------------------------------
  std::unique_ptr<IncrementalEvaluation> kernel_;  ///< lazily constructed
  std::vector<TileId> base_scratch_;

  // --- batched path ----------------------------------------------------------
  /// Mutable: the batch kernel is pure scoring plus reusable scratch,
  /// so the const `evaluate_raw_batch` may build and use it.
  mutable std::unique_ptr<BatchEvaluator> batch_;
  mutable std::vector<TileId> batch_scratch_;
};

}  // namespace phonoc
