#include "core/experiment.hpp"

#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "routing/registry.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"
#include "workloads/benchmarks.hpp"

namespace phonoc {

std::string to_string(TopologyKind kind) {
  return kind == TopologyKind::Mesh ? "mesh" : "torus";
}

std::shared_ptr<const NetworkModel> make_network(
    TopologyKind topology, std::uint32_t side, const std::string& router,
    double tile_pitch_mm, const PhysicalParameters& parameters,
    const NetworkModelOptions& model_options) {
  auto router_model =
      std::make_shared<const RouterModel>(make_router_netlist(router),
                                          parameters);
  if (topology == TopologyKind::Mesh) {
    GridOptions grid;
    grid.rows = grid.cols = side;
    grid.tile_pitch_mm = tile_pitch_mm;
    std::shared_ptr<const RoutingAlgorithm> routing = make_routing("xy");
    return std::make_shared<const NetworkModel>(
        build_mesh(grid), std::move(router_model), std::move(routing),
        model_options);
  }
  TorusOptions grid;
  grid.rows = grid.cols = side;
  grid.tile_pitch_mm = tile_pitch_mm;
  std::shared_ptr<const RoutingAlgorithm> routing = make_routing("torus_dor");
  return std::make_shared<const NetworkModel>(
      build_torus(grid), std::move(router_model), std::move(routing),
      model_options);
}

MappingProblem make_experiment(const ExperimentSpec& spec) {
  auto cg = make_benchmark(spec.benchmark);
  const auto side = spec.grid_side > 0 ? spec.grid_side
                                       : square_side_for(cg.task_count());
  auto network = make_network(spec.topology, side, spec.router,
                              spec.tile_pitch_mm, spec.parameters,
                              spec.model_options);
  std::shared_ptr<const Objective> objective = make_objective(spec.goal);
  return MappingProblem(std::move(cg), std::move(network),
                        std::move(objective));
}

}  // namespace phonoc
