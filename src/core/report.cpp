#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace phonoc {

std::string summarize_run(const RunResult& result) {
  std::ostringstream out;
  out << result.algorithm << ": worst loss "
      << format_fixed(result.best_evaluation.worst_loss_db, 2)
      << " dB, worst SNR "
      << format_fixed(result.best_evaluation.worst_snr_db, 2) << " dB ("
      << result.search.evaluations << " evaluations, "
      << format_fixed(result.search.seconds * 1e3, 1) << " ms)";
  return out.str();
}

std::string render_mapping(const Topology& topology, const CommGraph& cg,
                           const Mapping& mapping) {
  // Column width: longest task name (bounded) or 1 for the empty marker.
  std::size_t width = 1;
  for (NodeId t = 0; t < cg.task_count(); ++t)
    width = std::max(width, cg.task_name(t).size());
  width = std::min<std::size_t>(width, 12);

  std::ostringstream out;
  for (std::uint32_t r = 0; r < topology.rows(); ++r) {
    for (std::uint32_t c = 0; c < topology.cols(); ++c) {
      const auto tile = topology.tile_at(r, c);
      std::string cell = ".";
      if (tile != kInvalidTile) {
        const int task = mapping.task_at(tile);
        if (task >= 0) {
          cell = cg.task_name(static_cast<NodeId>(task));
          if (cell.size() > width) cell = cell.substr(0, width);
        }
      }
      out << cell << std::string(width + 1 - cell.size(), ' ');
    }
    out << '\n';
  }
  return out.str();
}

std::string describe_best(const MappingProblem& problem,
                          const RunResult& result) {
  std::ostringstream out;
  out << summarize_run(result) << "\n\n";
  out << render_mapping(problem.network().topology(), problem.cg(),
                        result.search.best);
  out << "\nper-communication metrics:\n";
  const auto edges = problem.cg().edges();
  for (const auto& em : result.best_evaluation.edges) {
    const auto& e = edges[em.edge];
    out << "  " << problem.cg().task_name(e.src) << " -> "
        << problem.cg().task_name(e.dst) << ": loss "
        << format_fixed(em.loss_db, 3) << " dB, SNR "
        << format_fixed(em.snr_db, 2) << " dB\n";
  }
  return out.str();
}

}  // namespace phonoc
