#pragma once
/// \file engine.hpp
/// \brief The design space exploration engine: runs optimizers against a
/// problem and packages comparable results (the machinery behind the
/// paper's Table II).

#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/problem.hpp"
#include "mapping/optimizer.hpp"

namespace phonoc {

/// Outcome of one optimizer run on one problem.
struct RunResult {
  std::string algorithm;
  OptimizerResult search;
  /// Detailed evaluation of the best mapping (both metrics + per-edge).
  EvaluationResult best_evaluation;
};

class Engine {
 public:
  /// `evaluator_options` configure the per-run Evaluators (memo capacity,
  /// incremental move path). Neither option can change a run's outcome —
  /// only its physical cost (see core/evaluator.hpp).
  explicit Engine(const MappingProblem& problem,
                  EvaluatorOptions evaluator_options = {});

  /// Run a registered optimizer by name ("greedy" is constructed from
  /// the problem's CG and topology).
  [[nodiscard]] RunResult run(const std::string& optimizer_name,
                              const OptimizerBudget& budget,
                              std::uint64_t seed) const;

  /// Run a caller-provided optimizer instance.
  [[nodiscard]] RunResult run(const MappingOptimizer& optimizer,
                              const OptimizerBudget& budget,
                              std::uint64_t seed) const;

  /// Run against a caller-owned Evaluator (which must wrap this
  /// engine's problem). The outcome is identical to run() — memo state
  /// can shift cost between cache hits and physical evaluations but
  /// never a fitness value or a logical count — while the evaluator,
  /// with its memo and counters, survives the call. This is how the
  /// mapping service (src/service/) carries one memo across requests.
  [[nodiscard]] RunResult run_with(Evaluator& evaluator,
                                   const std::string& optimizer_name,
                                   const OptimizerBudget& budget,
                                   std::uint64_t seed) const;
  [[nodiscard]] RunResult run_with(Evaluator& evaluator,
                                   const MappingOptimizer& optimizer,
                                   const OptimizerBudget& budget,
                                   std::uint64_t seed) const;

  /// Run several optimizers with identical budgets and seed (the
  /// paper's fair-comparison protocol). `workers > 1` runs them
  /// concurrently on a thread pool; each run owns its Evaluator and RNG,
  /// so for evaluation-count budgets the results are bit-identical to
  /// the sequential path (0 = one worker per optimizer).
  [[nodiscard]] std::vector<RunResult> compare(
      const std::vector<std::string>& optimizer_names,
      const OptimizerBudget& budget, std::uint64_t seed,
      std::size_t workers = 1) const;

  [[nodiscard]] const MappingProblem& problem() const noexcept {
    return problem_;
  }

 private:
  const MappingProblem& problem_;
  EvaluatorOptions evaluator_options_;
};

}  // namespace phonoc
