#pragma once
/// \file report.hpp
/// \brief Human-readable result reporting (per-run summaries and the
/// mapping grid rendering used by the examples).

#include <string>

#include "core/engine.hpp"
#include "topology/topology.hpp"

namespace phonoc {

/// One-line summary: algorithm, worst loss, worst SNR, evaluations, time.
[[nodiscard]] std::string summarize_run(const RunResult& result);

/// ASCII rendering of a mapping on its grid (task names in cells, '.'
/// for empty tiles).
[[nodiscard]] std::string render_mapping(const Topology& topology,
                                         const CommGraph& cg,
                                         const Mapping& mapping);

/// Multi-line report of the best mapping of a run: grid + per-edge
/// loss/SNR table.
[[nodiscard]] std::string describe_best(const MappingProblem& problem,
                                        const RunResult& result);

}  // namespace phonoc
