#pragma once
/// \file problem.hpp
/// \brief The mapping problem instance: application + architecture +
/// objective (paper §II-D1).

#include <memory>

#include "graph/comm_graph.hpp"
#include "mapping/objective.hpp"
#include "model/network_model.hpp"

namespace phonoc {

class MappingProblem {
 public:
  /// Validates Eq. (2): size(C) <= size(T).
  MappingProblem(CommGraph cg, std::shared_ptr<const NetworkModel> network,
                 std::shared_ptr<const Objective> objective);

  [[nodiscard]] const CommGraph& cg() const noexcept { return cg_; }
  [[nodiscard]] const NetworkModel& network() const noexcept {
    return *network_;
  }
  [[nodiscard]] std::shared_ptr<const NetworkModel> network_ptr()
      const noexcept {
    return network_;
  }
  [[nodiscard]] const Objective& objective() const noexcept {
    return *objective_;
  }
  [[nodiscard]] std::shared_ptr<const Objective> objective_ptr()
      const noexcept {
    return objective_;
  }

  [[nodiscard]] std::size_t task_count() const noexcept {
    return cg_.task_count();
  }
  [[nodiscard]] std::size_t tile_count() const noexcept {
    return network_->tile_count();
  }

 private:
  CommGraph cg_;
  std::shared_ptr<const NetworkModel> network_;
  std::shared_ptr<const Objective> objective_;
};

}  // namespace phonoc
