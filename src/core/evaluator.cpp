#include "core/evaluator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace phonoc {

Evaluator::Evaluator(const MappingProblem& problem, EvaluatorOptions options)
    : problem_(problem),
      options_(options),
      needs_detail_(problem.objective().needs_detail()) {}

EvaluationResult Evaluator::run_evaluation(const Mapping& mapping,
                                           bool detailed) const {
  return evaluate_mapping(problem_.network(), problem_.cg(),
                          mapping.assignment(), detailed);
}

const double* Evaluator::cache_lookup(const Mapping& mapping,
                                      std::uint64_t hash) {
  const auto it = cache_index_.find(hash);
  if (it == cache_index_.end()) return nullptr;
  const auto assignment = mapping.assignment();
  for (const auto& node : it->second) {
    if (!std::equal(node->key.begin(), node->key.end(), assignment.begin(),
                    assignment.end()))
      continue;
    ++cache_hits_;
    cache_order_.splice(cache_order_.begin(), cache_order_, node);
    return &node->fitness;
  }
  return nullptr;
}

void Evaluator::cache_insert(std::vector<TileId> assignment,
                             std::uint64_t hash, double fitness,
                             bool count_evictions) {
  cache_order_.emplace_front(CacheNode{hash, std::move(assignment), fitness});
  cache_index_[hash].push_back(cache_order_.begin());
  if (cache_order_.size() <= options_.cache_capacity) return;
  const auto victim = std::prev(cache_order_.end());
  auto& bucket = cache_index_[victim->hash];
  bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
  if (bucket.empty()) cache_index_.erase(victim->hash);
  cache_order_.pop_back();
  if (count_evictions) ++cache_evictions_;
}

bool Evaluator::cache_contains(std::span<const TileId> assignment,
                               std::uint64_t hash) const {
  const auto it = cache_index_.find(hash);
  if (it == cache_index_.end()) return false;
  for (const auto& node : it->second)
    if (std::equal(node->key.begin(), node->key.end(), assignment.begin(),
                   assignment.end()))
      return true;
  return false;
}

EvaluatorMemo Evaluator::export_memo() const {
  EvaluatorMemo memo;
  memo.entries.reserve(cache_order_.size());
  for (const auto& node : cache_order_)
    memo.entries.push_back(EvaluatorMemo::Entry{node.key, node.fitness});
  return memo;
}

void Evaluator::preload_memo(const EvaluatorMemo& memo) {
  if (options_.cache_capacity == 0) return;
  // Only the snapshot's most recent `capacity` entries can survive;
  // insert that subset oldest-first so the memo's recency order matches
  // the snapshot's and nothing needs evicting.
  const std::size_t take =
      std::min(memo.entries.size(), options_.cache_capacity);
  for (std::size_t i = take; i-- > 0;) {
    const auto& entry = memo.entries[i];
    const std::uint64_t hash = assignment_hash(entry.assignment);
    if (cache_contains(entry.assignment, hash)) continue;
    cache_insert(entry.assignment, hash, entry.fitness,
                 /*count_evictions=*/false);
  }
}

double Evaluator::evaluate(const Mapping& mapping) {
  ++count_;
  const bool memoize = options_.cache_capacity > 0;
  const std::uint64_t hash = memoize ? mapping.hash() : 0;
  if (memoize) {
    if (const double* cached = cache_lookup(mapping, hash)) return *cached;
    ++cache_misses_;
  }
  const auto result = run_evaluation(mapping, needs_detail_);
  ++physical_count_;
  const double fitness = problem_.objective().fitness(result);
  if (memoize) {
    const auto assignment = mapping.assignment();
    cache_insert(std::vector<TileId>(assignment.begin(), assignment.end()),
                 hash, fitness, /*count_evictions=*/true);
  }
  return fitness;
}

bool Evaluator::kernel_matches_pre_swap(const Mapping& after, TileId a,
                                        TileId b) const {
  if (!kernel_ || !kernel_->has_state() || kernel_->pending()) return false;
  const auto base = kernel_->assignment();
  const auto target = after.assignment();
  if (base.size() != target.size()) return false;
  for (std::size_t task = 0; task < target.size(); ++task) {
    TileId expected = target[task];
    if (expected == a)
      expected = b;
    else if (expected == b)
      expected = a;
    if (base[task] != expected) return false;
  }
  return true;
}

void Evaluator::sync_kernel_pre_swap(const Mapping& after, TileId a,
                                     TileId b) {
  if (!kernel_)
    kernel_ = std::make_unique<IncrementalEvaluation>(problem_.network(),
                                                      problem_.cg());
  if (kernel_matches_pre_swap(after, a, b)) return;
  // The optimizer re-based (restart, reheat, fresh start): rebuild the
  // kernel on the pre-swap assignment so revert_move can restore it.
  const auto target = after.assignment();
  base_scratch_.assign(target.begin(), target.end());
  for (auto& tile : base_scratch_) {
    if (tile == a)
      tile = b;
    else if (tile == b)
      tile = a;
  }
  kernel_->reset(base_scratch_);
}

double Evaluator::propose_swap(const Mapping& after, TileId a, TileId b) {
  if (!options_.incremental)
    return FitnessFunction::propose_swap(after, a, b);
  sync_kernel_pre_swap(after, a, b);
  kernel_->propose_swap(a, b);
  ++count_;
  return problem_.objective().fitness(kernel_->view());
}

void Evaluator::commit_move() {
  if (kernel_ && kernel_->pending()) kernel_->commit();
}

void Evaluator::revert_move() {
  if (kernel_ && kernel_->pending()) kernel_->revert();
}

void Evaluator::apply_move(const Mapping& after, TileId a, TileId b) {
  if (!options_.incremental) return;  // whole-mapping path is state-free
  if (!kernel_)
    kernel_ = std::make_unique<IncrementalEvaluation>(problem_.network(),
                                                      problem_.cg());
  if (kernel_matches_pre_swap(after, a, b)) {
    kernel_->propose_swap(a, b);
    kernel_->commit();
  } else {
    kernel_->reset(after.assignment());
  }
}

EvaluationResult Evaluator::evaluate_detailed(const Mapping& mapping) const {
  return run_evaluation(mapping, /*detailed=*/true);
}

EvaluationResult Evaluator::evaluate_raw(const Mapping& mapping) const {
  return run_evaluation(mapping, needs_detail_);
}

BatchEvaluator& Evaluator::batch_kernel() const {
  if (!batch_)
    batch_ = std::make_unique<BatchEvaluator>(problem_.network(),
                                              problem_.cg());
  return *batch_;
}

std::span<const TileId> Evaluator::flatten(
    std::span<const Mapping> mappings) const {
  const std::size_t tasks = problem_.cg().task_count();
  batch_scratch_.clear();
  batch_scratch_.reserve(mappings.size() * tasks);
  for (const auto& mapping : mappings) {
    const auto assignment = mapping.assignment();
    require(assignment.size() == tasks,
            "Evaluator: batched mapping has the wrong task count");
    batch_scratch_.insert(batch_scratch_.end(), assignment.begin(),
                          assignment.end());
  }
  return batch_scratch_;
}

void Evaluator::evaluate_raw_batch(std::span<const Mapping> mappings,
                                   std::span<BatchPoint> out) const {
  require(out.size() == mappings.size(),
          "Evaluator::evaluate_raw_batch: out size != mapping count");
  if (mappings.empty()) return;
  batch_kernel().evaluate_trusted(flatten(mappings), mappings.size(), out);
}

void Evaluator::evaluate_batch(std::span<const Mapping> mappings,
                               std::span<double> out) {
  require(out.size() == mappings.size(),
          "Evaluator::evaluate_batch: out size != mapping count");
  const std::size_t n = mappings.size();
  if (n == 0) return;
  const bool memoize = options_.cache_capacity > 0;
  const std::size_t tasks = problem_.cg().task_count();

  // Pass 1 — peek: pick the rows the kernel must score physically. A
  // row is skipped when the memo already holds it or an earlier batch
  // row carries the same assignment (the replay below will have
  // inserted it by then). Peeking never touches the LRU order or any
  // counter, so the replay's lookups see exactly the state a
  // sequential loop would.
  std::vector<std::uint64_t> hashes(n, 0);
  std::vector<std::int64_t> row_of(n, -1);
  std::vector<std::size_t> scored;
  batch_scratch_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const auto assignment = mappings[i].assignment();
    require(assignment.size() == tasks,
            "Evaluator: batched mapping has the wrong task count");
    if (memoize) {
      hashes[i] = mappings[i].hash();
      if (cache_contains(assignment, hashes[i])) continue;
      bool duplicate = false;
      for (const std::size_t j : scored) {
        if (hashes[j] != hashes[i]) continue;
        const auto earlier = mappings[j].assignment();
        if (std::equal(earlier.begin(), earlier.end(), assignment.begin(),
                       assignment.end())) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
    }
    row_of[i] = static_cast<std::int64_t>(scored.size());
    scored.push_back(i);
    batch_scratch_.insert(batch_scratch_.end(), assignment.begin(),
                          assignment.end());
  }

  // Kernel pass: one vectorized sweep over every row that needs it
  // (with per-edge detail when the objective folds over it).
  std::vector<BatchPoint> points(scored.size());
  std::vector<EdgeMetrics> detail;
  const std::size_t edge_count = problem_.cg().edges().size();
  if (!scored.empty()) {
    auto& kernel = batch_kernel();
    if (needs_detail_) {
      detail.resize(scored.size() * edge_count);
      kernel.evaluate_trusted(batch_scratch_, scored.size(), points, detail);
    } else {
      kernel.evaluate_trusted(batch_scratch_, scored.size(), points);
    }
  }

  // Pass 2 — sequential replay: real lookups, counters and inserts in
  // index order, so memo contents, recency and every counter match a
  // sequential loop of `evaluate` calls exactly.
  for (std::size_t i = 0; i < n; ++i) {
    ++count_;
    if (memoize) {
      if (const double* cached = cache_lookup(mappings[i], hashes[i])) {
        out[i] = *cached;
        continue;
      }
      ++cache_misses_;
    }
    double fitness;
    if (row_of[i] >= 0) {
      const auto r = static_cast<std::size_t>(row_of[i]);
      const std::span<const EdgeMetrics> view_edges =
          needs_detail_ ? std::span<const EdgeMetrics>(
                              detail.data() + r * edge_count, edge_count)
                        : std::span<const EdgeMetrics>{};
      fitness = problem_.objective().fitness(EvaluationView{
          points[r].worst_loss_db, points[r].worst_snr_db, view_edges});
    } else {
      // Peek promised a hit (memo entry or earlier duplicate) that was
      // evicted before this row's replay turn: one scalar evaluation,
      // bit-identical to the kernel by contract.
      fitness = problem_.objective().fitness(
          run_evaluation(mappings[i], needs_detail_));
    }
    ++physical_count_;
    if (memoize) {
      const auto assignment = mappings[i].assignment();
      cache_insert(std::vector<TileId>(assignment.begin(), assignment.end()),
                   hashes[i], fitness, /*count_evictions=*/true);
    }
    out[i] = fitness;
  }
}

}  // namespace phonoc
