#include "core/evaluator.hpp"

namespace phonoc {

Evaluator::Evaluator(const MappingProblem& problem)
    : problem_(problem), needs_detail_(problem.objective().needs_detail()) {}

double Evaluator::evaluate(const Mapping& mapping) {
  ++count_;
  const auto result = evaluate_mapping(problem_.network(), problem_.cg(),
                                       mapping.assignment(), needs_detail_);
  return problem_.objective().fitness(result);
}

EvaluationResult Evaluator::evaluate_detailed(const Mapping& mapping) const {
  return evaluate_mapping(problem_.network(), problem_.cg(),
                          mapping.assignment(), /*detailed=*/true);
}

EvaluationResult Evaluator::evaluate_raw(const Mapping& mapping) const {
  return evaluate_mapping(problem_.network(), problem_.cg(),
                          mapping.assignment(), /*detailed=*/false);
}

}  // namespace phonoc
