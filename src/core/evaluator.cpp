#include "core/evaluator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace phonoc {

Evaluator::Evaluator(const MappingProblem& problem, EvaluatorOptions options)
    : problem_(problem),
      options_(options),
      needs_detail_(problem.objective().needs_detail()) {}

EvaluationResult Evaluator::run_evaluation(const Mapping& mapping,
                                           bool detailed) const {
  return evaluate_mapping(problem_.network(), problem_.cg(),
                          mapping.assignment(), detailed);
}

const double* Evaluator::cache_lookup(const Mapping& mapping,
                                      std::uint64_t hash) {
  const auto it = cache_index_.find(hash);
  if (it == cache_index_.end()) return nullptr;
  const auto assignment = mapping.assignment();
  for (const auto& node : it->second) {
    if (!std::equal(node->key.begin(), node->key.end(), assignment.begin(),
                    assignment.end()))
      continue;
    ++cache_hits_;
    cache_order_.splice(cache_order_.begin(), cache_order_, node);
    return &node->fitness;
  }
  return nullptr;
}

void Evaluator::cache_insert(const Mapping& mapping, std::uint64_t hash,
                             double fitness) {
  const auto assignment = mapping.assignment();
  cache_order_.emplace_front(CacheNode{
      hash, std::vector<TileId>(assignment.begin(), assignment.end()),
      fitness});
  cache_index_[hash].push_back(cache_order_.begin());
  if (cache_order_.size() <= options_.cache_capacity) return;
  const auto victim = std::prev(cache_order_.end());
  auto& bucket = cache_index_[victim->hash];
  bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
  if (bucket.empty()) cache_index_.erase(victim->hash);
  cache_order_.pop_back();
}

double Evaluator::evaluate(const Mapping& mapping) {
  ++count_;
  const bool memoize = options_.cache_capacity > 0;
  const std::uint64_t hash = memoize ? mapping.hash() : 0;
  if (memoize) {
    if (const double* cached = cache_lookup(mapping, hash)) return *cached;
  }
  const auto result = run_evaluation(mapping, needs_detail_);
  ++physical_count_;
  const double fitness = problem_.objective().fitness(result);
  if (memoize) cache_insert(mapping, hash, fitness);
  return fitness;
}

bool Evaluator::kernel_matches_pre_swap(const Mapping& after, TileId a,
                                        TileId b) const {
  if (!kernel_ || !kernel_->has_state() || kernel_->pending()) return false;
  const auto base = kernel_->assignment();
  const auto target = after.assignment();
  if (base.size() != target.size()) return false;
  for (std::size_t task = 0; task < target.size(); ++task) {
    TileId expected = target[task];
    if (expected == a)
      expected = b;
    else if (expected == b)
      expected = a;
    if (base[task] != expected) return false;
  }
  return true;
}

void Evaluator::sync_kernel_pre_swap(const Mapping& after, TileId a,
                                     TileId b) {
  if (!kernel_)
    kernel_ = std::make_unique<IncrementalEvaluation>(problem_.network(),
                                                      problem_.cg());
  if (kernel_matches_pre_swap(after, a, b)) return;
  // The optimizer re-based (restart, reheat, fresh start): rebuild the
  // kernel on the pre-swap assignment so revert_move can restore it.
  const auto target = after.assignment();
  base_scratch_.assign(target.begin(), target.end());
  for (auto& tile : base_scratch_) {
    if (tile == a)
      tile = b;
    else if (tile == b)
      tile = a;
  }
  kernel_->reset(base_scratch_);
}

double Evaluator::propose_swap(const Mapping& after, TileId a, TileId b) {
  if (!options_.incremental)
    return FitnessFunction::propose_swap(after, a, b);
  sync_kernel_pre_swap(after, a, b);
  kernel_->propose_swap(a, b);
  ++count_;
  return problem_.objective().fitness(kernel_->view());
}

void Evaluator::commit_move() {
  if (kernel_ && kernel_->pending()) kernel_->commit();
}

void Evaluator::revert_move() {
  if (kernel_ && kernel_->pending()) kernel_->revert();
}

void Evaluator::apply_move(const Mapping& after, TileId a, TileId b) {
  if (!options_.incremental) return;  // whole-mapping path is state-free
  if (!kernel_)
    kernel_ = std::make_unique<IncrementalEvaluation>(problem_.network(),
                                                      problem_.cg());
  if (kernel_matches_pre_swap(after, a, b)) {
    kernel_->propose_swap(a, b);
    kernel_->commit();
  } else {
    kernel_->reset(after.assignment());
  }
}

EvaluationResult Evaluator::evaluate_detailed(const Mapping& mapping) const {
  return run_evaluation(mapping, /*detailed=*/true);
}

EvaluationResult Evaluator::evaluate_raw(const Mapping& mapping) const {
  return run_evaluation(mapping, needs_detail_);
}

}  // namespace phonoc
