#pragma once
/// \file registry.hpp
/// \brief Name-based topology factory (the architecture-description
/// extension point for new topologies).

#include <functional>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace phonoc {

/// Factory signature: rows/cols/pitch are passed through from the
/// architecture description (a factory may ignore what it doesn't need,
/// e.g. the ring uses rows*cols tiles).
using TopologyFactory = std::function<Topology(const GridOptions&)>;

void register_topology(const std::string& name, TopologyFactory factory);

/// Instantiate by name; built-ins: "mesh", "torus", "ring".
[[nodiscard]] Topology make_topology(const std::string& name,
                                     const GridOptions& options);

[[nodiscard]] std::vector<std::string> registered_topologies();

}  // namespace phonoc
