#pragma once
/// \file topology.hpp
/// \brief Topology graph X(T, L) (paper Definition 2) with floorplan.
///
/// A Topology describes how tiles connect: each tile hosts one optical
/// router (and optionally one task); each directed link joins an output
/// port of one tile's router to an input port of another's, and carries
/// a physical waveguide length used for propagation loss.
///
/// The built-in builders (mesh, torus, ring) produce both the link graph
/// and a floorplan (grid positions with a configurable tile pitch).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "router/ports.hpp"
#include "util/error.hpp"

namespace phonoc {

using TileId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr TileId kInvalidTile = ~TileId{0};
inline constexpr LinkId kInvalidLink = ~LinkId{0};

/// A directed physical link l(i,j) from one router port to another.
struct Link {
  TileId src_tile;
  PortId src_port;  ///< output port of src_tile's router
  TileId dst_tile;
  PortId dst_port;  ///< input port of dst_tile's router
  double length_cm; ///< waveguide length of the link
};

/// Grid coordinates of a tile in the floorplan (row 0 = north edge).
struct TilePosition {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
};

class Topology {
 public:
  Topology(std::string name, std::size_t router_ports);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t router_ports() const noexcept {
    return router_ports_;
  }

  TileId add_tile(TilePosition position);

  /// Add a directed link; each (tile, port) endpoint may be used by at
  /// most one link in each direction. Lengths must be positive.
  LinkId add_link(TileId src_tile, PortId src_port, TileId dst_tile,
                  PortId dst_port, double length_cm);

  [[nodiscard]] std::size_t tile_count() const noexcept {
    return positions_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] TilePosition position(TileId tile) const;

  /// Link leaving `tile` through output `port`, or kInvalidLink.
  [[nodiscard]] LinkId link_from(TileId tile, PortId port) const;
  /// Link entering `tile` through input `port`, or kInvalidLink.
  [[nodiscard]] LinkId link_into(TileId tile, PortId port) const;

  /// Tile at a grid position, or kInvalidTile (builders fill this map).
  [[nodiscard]] TileId tile_at(std::uint32_t row, std::uint32_t col) const;

  /// Grid extents derived from tile positions.
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }

  /// Structural checks: all endpoints in range, no dangling references.
  void validate() const;

 private:
  std::string name_;
  std::size_t router_ports_;
  std::vector<TilePosition> positions_;
  std::vector<Link> links_;
  /// out_links_[tile * ports + port] / in_links_ analogous
  std::vector<LinkId> out_links_;
  std::vector<LinkId> in_links_;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
};

/// Common floorplan knobs for the grid builders.
struct GridOptions {
  std::uint32_t rows = 4;
  std::uint32_t cols = 4;
  /// Center-to-center tile distance, millimetres. Default 2.5 mm
  /// (a 4x4 layout spans a 1 cm die edge).
  double tile_pitch_mm = 2.5;
};

}  // namespace phonoc
