#pragma once
/// \file torus.hpp
/// \brief 2D torus topology builder (the paper's second case study).

#include "topology/topology.hpp"

namespace phonoc {

struct TorusOptions : GridOptions {
  /// Folded-torus layout: all links (including wrap-around) have the
  /// length of two tile pitches, the standard way to equalize link
  /// lengths on a planar die. When false, neighbour links get one pitch
  /// and wrap links get (dimension - 1) pitches (naive layout).
  bool folded = true;
};

/// Build a rows x cols torus of 5-port tiles (every row and column is a
/// cycle; every tile has all four neighbours).
[[nodiscard]] Topology build_torus(const TorusOptions& options = {});

}  // namespace phonoc
