#include "topology/mesh.hpp"

#include <cmath>
#include <string>

#include "util/units.hpp"

namespace phonoc {

Topology build_mesh(const GridOptions& options) {
  require(options.rows >= 1 && options.cols >= 1,
          "build_mesh: grid must be at least 1x1");
  require(options.tile_pitch_mm > 0.0, "build_mesh: pitch must be positive");
  Topology topo("mesh" + std::to_string(options.rows) + "x" +
                    std::to_string(options.cols),
                kStandardPortCount);
  for (std::uint32_t r = 0; r < options.rows; ++r)
    for (std::uint32_t c = 0; c < options.cols; ++c)
      topo.add_tile(TilePosition{r, c});

  const double pitch_cm = mm_to_cm(options.tile_pitch_mm);
  const auto at = [&](std::uint32_t r, std::uint32_t c) {
    return static_cast<TileId>(r * options.cols + c);
  };
  for (std::uint32_t r = 0; r < options.rows; ++r) {
    for (std::uint32_t c = 0; c < options.cols; ++c) {
      if (c + 1 < options.cols) {
        // East-bound and west-bound links between horizontal neighbours.
        topo.add_link(at(r, c), kPortEast, at(r, c + 1), kPortWest, pitch_cm);
        topo.add_link(at(r, c + 1), kPortWest, at(r, c), kPortEast, pitch_cm);
      }
      if (r + 1 < options.rows) {
        // Row r is north of row r+1: south-bound then north-bound.
        topo.add_link(at(r, c), kPortSouth, at(r + 1, c), kPortNorth,
                      pitch_cm);
        topo.add_link(at(r + 1, c), kPortNorth, at(r, c), kPortSouth,
                      pitch_cm);
      }
    }
  }
  topo.validate();
  return topo;
}

std::uint32_t square_side_for(std::size_t tasks) {
  require(tasks >= 1, "square_side_for: need at least one task");
  std::uint32_t side = 1;
  while (static_cast<std::size_t>(side) * side < tasks) ++side;
  return side;
}

}  // namespace phonoc
