#include "topology/topology.hpp"

#include <algorithm>

namespace phonoc {

Topology::Topology(std::string name, std::size_t router_ports)
    : name_(std::move(name)), router_ports_(router_ports) {
  require(router_ports_ >= 1, "Topology: routers need at least one port");
}

TileId Topology::add_tile(TilePosition position) {
  positions_.push_back(position);
  out_links_.insert(out_links_.end(), router_ports_, kInvalidLink);
  in_links_.insert(in_links_.end(), router_ports_, kInvalidLink);
  rows_ = std::max(rows_, position.row + 1);
  cols_ = std::max(cols_, position.col + 1);
  return static_cast<TileId>(positions_.size() - 1);
}

LinkId Topology::add_link(TileId src_tile, PortId src_port, TileId dst_tile,
                          PortId dst_port, double length_cm) {
  require(src_tile < tile_count() && dst_tile < tile_count(),
          "Topology::add_link: tile out of range");
  require(src_port < router_ports_ && dst_port < router_ports_,
          "Topology::add_link: port out of range");
  require(length_cm > 0.0, "Topology::add_link: length must be positive");
  require(src_tile != dst_tile, "Topology::add_link: self-link");
  auto& out_slot = out_links_[src_tile * router_ports_ + src_port];
  auto& in_slot = in_links_[dst_tile * router_ports_ + dst_port];
  require(out_slot == kInvalidLink,
          "Topology::add_link: output port already linked");
  require(in_slot == kInvalidLink,
          "Topology::add_link: input port already linked");
  links_.push_back(Link{src_tile, src_port, dst_tile, dst_port, length_cm});
  const auto id = static_cast<LinkId>(links_.size() - 1);
  out_slot = id;
  in_slot = id;
  return id;
}

const Link& Topology::link(LinkId id) const {
  require(id < links_.size(), "Topology::link: id out of range");
  return links_[id];
}

TilePosition Topology::position(TileId tile) const {
  require(tile < tile_count(), "Topology::position: tile out of range");
  return positions_[tile];
}

LinkId Topology::link_from(TileId tile, PortId port) const {
  require(tile < tile_count() && port < router_ports_,
          "Topology::link_from: out of range");
  return out_links_[tile * router_ports_ + port];
}

LinkId Topology::link_into(TileId tile, PortId port) const {
  require(tile < tile_count() && port < router_ports_,
          "Topology::link_into: out of range");
  return in_links_[tile * router_ports_ + port];
}

TileId Topology::tile_at(std::uint32_t row, std::uint32_t col) const {
  for (TileId t = 0; t < positions_.size(); ++t)
    if (positions_[t].row == row && positions_[t].col == col) return t;
  return kInvalidTile;
}

void Topology::validate() const {
  require(tile_count() >= 1, "Topology: at least one tile required");
  for (const auto& l : links_) {
    require(l.src_tile < tile_count() && l.dst_tile < tile_count(),
            "Topology: link endpoint out of range");
    require(l.length_cm > 0.0, "Topology: non-positive link length");
  }
}

}  // namespace phonoc
