#pragma once
/// \file mesh.hpp
/// \brief 2D mesh topology builder (the paper's primary case study).

#include "topology/topology.hpp"

namespace phonoc {

/// Build a rows x cols mesh of 5-port tiles. Adjacent tiles are joined
/// by a pair of directed links of length = tile pitch. Tile ids are
/// row-major, row 0 at the north edge.
[[nodiscard]] Topology build_mesh(const GridOptions& options = {});

/// Smallest square grid that fits `tasks` tiles (paper sizing rule:
/// e.g. 8 tasks -> 3x3, 16 -> 4x4, 22 -> 5x5, 32 -> 6x6).
[[nodiscard]] std::uint32_t square_side_for(std::size_t tasks);

}  // namespace phonoc
