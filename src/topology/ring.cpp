#include "topology/ring.hpp"

#include <string>

#include "util/units.hpp"

namespace phonoc {

Topology build_ring(const RingOptions& options) {
  require(options.tiles >= 3, "build_ring: at least three tiles");
  require(options.tile_pitch_mm > 0.0, "build_ring: pitch must be positive");
  Topology topo("ring" + std::to_string(options.tiles), kStandardPortCount);
  for (std::uint32_t i = 0; i < options.tiles; ++i)
    topo.add_tile(TilePosition{0, i});

  const double pitch_cm = mm_to_cm(options.tile_pitch_mm);
  for (std::uint32_t i = 0; i < options.tiles; ++i) {
    const auto next = static_cast<TileId>((i + 1) % options.tiles);
    const bool wrap = i + 1 == options.tiles;
    const double len = wrap ? pitch_cm * (options.tiles - 1) : pitch_cm;
    topo.add_link(i, kPortEast, next, kPortWest, len);
    topo.add_link(next, kPortWest, i, kPortEast, len);
  }
  topo.validate();
  return topo;
}

}  // namespace phonoc
