#pragma once
/// \file ring.hpp
/// \brief Unidirectional-pair ring topology (extensibility demonstrator:
/// a non-grid topology exercising the table-routing path).

#include "topology/topology.hpp"

namespace phonoc {

struct RingOptions {
  std::uint32_t tiles = 8;
  double tile_pitch_mm = 2.5;
};

/// Tiles on a cycle; each consecutive pair is joined by an East-bound
/// and a West-bound link (clockwise/counter-clockwise). Tiles are laid
/// out on a single row for floorplan purposes; the closing link has
/// length (tiles - 1) pitches.
[[nodiscard]] Topology build_ring(const RingOptions& options = {});

}  // namespace phonoc
