#include "topology/torus.hpp"

#include <string>

#include "util/units.hpp"

namespace phonoc {

Topology build_torus(const TorusOptions& options) {
  require(options.rows >= 2 && options.cols >= 2,
          "build_torus: grid must be at least 2x2");
  require(options.tile_pitch_mm > 0.0, "build_torus: pitch must be positive");
  Topology topo("torus" + std::to_string(options.rows) + "x" +
                    std::to_string(options.cols),
                kStandardPortCount);
  for (std::uint32_t r = 0; r < options.rows; ++r)
    for (std::uint32_t c = 0; c < options.cols; ++c)
      topo.add_tile(TilePosition{r, c});

  const double pitch_cm = mm_to_cm(options.tile_pitch_mm);
  const auto at = [&](std::uint32_t r, std::uint32_t c) {
    return static_cast<TileId>((r % options.rows) * options.cols +
                               (c % options.cols));
  };
  const auto east_len = [&](std::uint32_t c) {
    if (options.folded) return 2.0 * pitch_cm;
    const bool wrap = c + 1 == options.cols;
    return wrap ? pitch_cm * (options.cols - 1) : pitch_cm;
  };
  const auto south_len = [&](std::uint32_t r) {
    if (options.folded) return 2.0 * pitch_cm;
    const bool wrap = r + 1 == options.rows;
    return wrap ? pitch_cm * (options.rows - 1) : pitch_cm;
  };

  for (std::uint32_t r = 0; r < options.rows; ++r) {
    for (std::uint32_t c = 0; c < options.cols; ++c) {
      topo.add_link(at(r, c), kPortEast, at(r, c + 1), kPortWest, east_len(c));
      topo.add_link(at(r, c + 1), kPortWest, at(r, c), kPortEast, east_len(c));
      topo.add_link(at(r, c), kPortSouth, at(r + 1, c), kPortNorth,
                    south_len(r));
      topo.add_link(at(r + 1, c), kPortNorth, at(r, c), kPortSouth,
                    south_len(r));
    }
  }
  topo.validate();
  return topo;
}

}  // namespace phonoc
