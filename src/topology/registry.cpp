#include "topology/registry.hpp"

#include <map>

#include "topology/mesh.hpp"
#include "topology/ring.hpp"
#include "topology/torus.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

namespace {

std::map<std::string, TopologyFactory>& registry() {
  static std::map<std::string, TopologyFactory> instance = [] {
    std::map<std::string, TopologyFactory> m;
    m["mesh"] = [](const GridOptions& o) { return build_mesh(o); };
    m["torus"] = [](const GridOptions& o) {
      TorusOptions to;
      to.rows = o.rows;
      to.cols = o.cols;
      to.tile_pitch_mm = o.tile_pitch_mm;
      return build_torus(to);
    };
    m["ring"] = [](const GridOptions& o) {
      RingOptions ro;
      ro.tiles = o.rows * o.cols;
      ro.tile_pitch_mm = o.tile_pitch_mm;
      return build_ring(ro);
    };
    return m;
  }();
  return instance;
}

}  // namespace

void register_topology(const std::string& name, TopologyFactory factory) {
  require(!name.empty(), "register_topology: empty name");
  require(factory != nullptr, "register_topology: null factory");
  registry()[to_lower(name)] = std::move(factory);
}

Topology make_topology(const std::string& name, const GridOptions& options) {
  const auto it = registry().find(to_lower(name));
  if (it == registry().end()) {
    std::string known;
    for (const auto& [key, unused] : registry()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw InvalidArgument("unknown topology '" + name + "' (registered: " +
                          known + ")");
  }
  return it->second(options);
}

std::vector<std::string> registered_topologies() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, unused] : registry()) names.push_back(key);
  return names;
}

}  // namespace phonoc
