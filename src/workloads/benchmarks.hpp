#pragma once
/// \file benchmarks.hpp
/// \brief The eight multimedia benchmark applications of the paper's
/// case studies (§III), as built-in Communication Graphs.
///
/// Task counts match the paper exactly: 263dec_mp3dec (14),
/// 263enc_mp3enc (12), DVOPD (32), MPEG-4 (12 tasks / 26 edges),
/// MWD (12 tasks / 12 edges), PIP (8), VOPD (16), Wavelet (22).
/// Structures follow the standard NoC-mapping literature lineage
/// (Bertozzi / Hu-Marculescu benchmark graphs); where the exact figure
/// is not in the paper the structure is a documented reconstruction
/// (DESIGN.md §6). Bandwidth annotations (MB/s) are best-effort
/// literature values — the paper's IL/SNR objectives are
/// structure-only, so they do not influence the reproduced results.

#include <string>
#include <vector>

#include "graph/comm_graph.hpp"

namespace phonoc {

/// Names of the built-in benchmarks, in the paper's Table II order:
/// "263dec_mp3dec", "263enc_mp3enc", "dvopd", "mpeg4", "mwd", "pip",
/// "vopd", "wavelet".
[[nodiscard]] std::vector<std::string> benchmark_names();

/// Build a benchmark CG by name (case-insensitive); throws
/// InvalidArgument for unknown names.
[[nodiscard]] CommGraph make_benchmark(const std::string& name);

/// All eight benchmarks in Table II order.
[[nodiscard]] std::vector<CommGraph> all_benchmarks();

}  // namespace phonoc
