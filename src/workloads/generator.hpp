#pragma once
/// \file generator.hpp
/// \brief Synthetic Communication Graph generators (random / pipeline /
/// tree / hotspot), used by the scalability bench, the property tests,
/// and as TGFF-style stand-ins for applications beyond the built-ins.

#include <cstdint>

#include "graph/comm_graph.hpp"

namespace phonoc {

struct RandomCgOptions {
  std::size_t tasks = 16;
  /// Expected number of outgoing edges per task (graph stays simple:
  /// no self-loops, no duplicate (src, dst) pairs).
  double avg_out_degree = 1.5;
  double min_bandwidth = 8.0;
  double max_bandwidth = 512.0;
  std::uint64_t seed = 1;
  /// Restrict to forward edges (src id < dst id): a DAG resembling a
  /// streaming application; false allows feedback edges.
  bool acyclic = true;
};

/// Uniform random communication graph.
[[nodiscard]] CommGraph random_cg(const RandomCgOptions& options = {});

/// Linear pipeline t0 -> t1 -> ... -> t(n-1).
[[nodiscard]] CommGraph pipeline_cg(std::size_t tasks,
                                    double bandwidth = 64.0);

/// Complete `fanout`-ary out-tree with `tasks` nodes (root = t0).
[[nodiscard]] CommGraph tree_cg(std::size_t tasks, std::size_t fanout = 2,
                                double bandwidth = 64.0);

/// Hotspot/hub graph: every other task sends to t0 and receives from it
/// (memory-controller pattern, the crosstalk-heaviest structure).
[[nodiscard]] CommGraph hotspot_cg(std::size_t tasks,
                                   double bandwidth = 64.0);

}  // namespace phonoc
