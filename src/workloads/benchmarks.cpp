#include "workloads/benchmarks.hpp"

#include <initializer_list>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace phonoc {

namespace {

struct EdgeSpec {
  const char* src;
  const char* dst;
  double bandwidth;
};

CommGraph build(const std::string& name,
                std::initializer_list<const char*> tasks,
                std::initializer_list<EdgeSpec> edges) {
  CommGraph cg(name);
  for (const auto* task : tasks) cg.add_task(task);
  for (const auto& e : edges) cg.add_communication(e.src, e.dst, e.bandwidth);
  cg.validate();
  return cg;
}

/// PIP — picture-in-picture, 8 tasks: two decode chains merging at the
/// display output.
CommGraph make_pip() {
  return build(
      "pip",
      {"inp_mem", "hs", "vs", "jug1", "jug2", "mem1", "mem2", "op_disp"},
      {
          {"inp_mem", "hs", 128},
          {"hs", "vs", 64},
          {"vs", "jug1", 64},
          {"jug1", "mem1", 64},
          {"mem1", "op_disp", 64},
          {"inp_mem", "jug2", 64},
          {"jug2", "mem2", 64},
          {"mem2", "op_disp", 64},
      });
}

/// MWD — multi-window display, 12 tasks / 12 edges (paper §III).
CommGraph make_mwd() {
  return build(
      "mwd",
      {"in", "nr", "hs", "vs", "mem1", "hvs", "jug1", "mem2", "jug2", "se",
       "mem3", "blend"},
      {
          {"in", "nr", 128},
          {"nr", "hs", 64},
          {"hs", "vs", 64},
          {"vs", "mem1", 64},
          {"mem1", "hvs", 64},
          {"hvs", "jug1", 64},
          {"jug1", "mem2", 64},
          {"mem2", "jug2", 64},
          {"jug2", "se", 64},
          {"se", "mem3", 64},
          {"mem3", "blend", 64},
          {"hvs", "blend", 96},
      });
}

/// VOPD — video object plane decoder, 16 tasks (Hu-Marculescu lineage:
/// main decode pipeline, stripe-memory feedback, ARM control loop,
/// scan/DCT scratch memories, display sink).
CommGraph make_vopd() {
  return build(
      "vopd",
      {"vld", "run_le_dec", "inv_scan", "acdc_pred", "stripe_mem", "iquan",
       "idct", "upsamp", "vop_rec", "pad", "vop_mem", "arm", "scan_mem",
       "dct_mem", "mem_ctrl", "disp"},
      {
          {"vld", "run_le_dec", 70},
          {"run_le_dec", "inv_scan", 362},
          {"inv_scan", "acdc_pred", 362},
          {"acdc_pred", "stripe_mem", 49},
          {"stripe_mem", "acdc_pred", 27},
          {"acdc_pred", "iquan", 357},
          {"iquan", "idct", 353},
          {"idct", "upsamp", 300},
          {"upsamp", "vop_rec", 313},
          {"vop_rec", "pad", 313},
          {"pad", "vop_mem", 313},
          {"vop_mem", "pad", 94},
          {"vop_mem", "vop_rec", 500},
          {"arm", "idct", 16},
          {"idct", "arm", 16},
          {"run_le_dec", "scan_mem", 27},
          {"scan_mem", "inv_scan", 27},
          {"idct", "dct_mem", 16},
          {"dct_mem", "upsamp", 16},
          {"mem_ctrl", "vop_mem", 16},
          {"vop_mem", "disp", 94},
      });
}

/// DVOPD — dual video object plane decoder, 32 tasks: two VOPD planes
/// decoding two streams, coordinated through their ARM controllers.
CommGraph make_dvopd() {
  CommGraph cg("dvopd");
  for (int plane = 0; plane < 2; ++plane) {
    const auto vopd = make_vopd();
    const std::string suffix = "_" + std::to_string(plane);
    for (NodeId t = 0; t < vopd.task_count(); ++t)
      cg.add_task(vopd.task_name(t) + suffix);
    for (const auto& e : vopd.edges())
      cg.add_communication(vopd.task_name(e.src) + suffix,
                           vopd.task_name(e.dst) + suffix, e.bandwidth_mbps);
  }
  cg.add_communication("arm_0", "arm_1", 16);
  cg.add_communication("arm_1", "arm_0", 16);
  cg.validate();
  return cg;
}

/// MPEG-4 — decoder, 12 tasks / 26 edges: the SDRAM hub with
/// bidirectional links to most units plus the SRAM-side periphery.
CommGraph make_mpeg4() {
  return build(
      "mpeg4",
      {"vu", "au", "med_cpu", "idct_etc", "rast", "sdram", "sram1", "sram2",
       "upsamp", "bab", "risc", "adsp"},
      {
          // SDRAM hub (8 units x 2 directions = 16 edges).
          {"vu", "sdram", 190},
          {"sdram", "vu", 190},
          {"au", "sdram", 1},
          {"sdram", "au", 1},
          {"med_cpu", "sdram", 600},
          {"sdram", "med_cpu", 600},
          {"rast", "sdram", 32},
          {"sdram", "rast", 32},
          {"idct_etc", "sdram", 250},
          {"sdram", "idct_etc", 250},
          {"upsamp", "sdram", 910},
          {"sdram", "upsamp", 910},
          {"bab", "sdram", 60},
          {"sdram", "bab", 60},
          {"risc", "sdram", 500},
          {"sdram", "risc", 500},
          // SRAM periphery and control (10 edges).
          {"med_cpu", "sram1", 40},
          {"sram1", "med_cpu", 40},
          {"med_cpu", "sram2", 40},
          {"sram2", "med_cpu", 40},
          {"risc", "sram2", 670},
          {"sram2", "risc", 670},
          {"adsp", "sram2", 173},
          {"sram2", "adsp", 173},
          {"risc", "med_cpu", 32},
          {"upsamp", "rast", 500},
      });
}

/// 263dec_mp3dec — H.263 video decoder (8 tasks) and MP3 audio decoder
/// (6 tasks) running side by side; 14 tasks total.
CommGraph make_263dec_mp3dec() {
  return build(
      "263dec_mp3dec",
      {"stream_in", "vld", "iq", "idct", "mc", "frame_mem", "recon",
       "disp263", "mp3_in", "huff_dec", "dequant", "stereo", "imdct",
       "pcm_out"},
      {
          {"stream_in", "vld", 33},
          {"vld", "iq", 31},
          {"iq", "idct", 31},
          {"idct", "recon", 31},
          {"mc", "recon", 31},
          {"frame_mem", "mc", 94},
          {"recon", "frame_mem", 94},
          {"recon", "disp263", 500},
          {"mp3_in", "huff_dec", 13},
          {"huff_dec", "dequant", 13},
          {"dequant", "stereo", 13},
          {"stereo", "imdct", 13},
          {"imdct", "pcm_out", 38},
      });
}

/// 263enc_mp3enc — H.263 video encoder (7 tasks) and MP3 audio encoder
/// (5 tasks); 12 tasks / 12 edges (paper §III).
CommGraph make_263enc_mp3enc() {
  return build(
      "263enc_mp3enc",
      {"cam_in", "me", "mc_enc", "dct", "q", "vlc", "buf_out", "pcm_in",
       "subband", "mdct_e", "quant_e", "bitstream"},
      {
          {"cam_in", "me", 119},
          {"me", "mc_enc", 16},
          {"mc_enc", "dct", 16},
          {"dct", "q", 16},
          {"q", "vlc", 16},
          {"vlc", "buf_out", 16},
          {"q", "me", 16},
          {"pcm_in", "subband", 38},
          {"subband", "mdct_e", 38},
          {"mdct_e", "quant_e", 38},
          {"quant_e", "bitstream", 13},
          {"bitstream", "buf_out", 13},
      });
}

/// Wavelet — 22-task two-level 2D discrete wavelet transform codec:
/// row/column filter banks per level, sub-band quantizers, entropy
/// coder with rate-control feedback.
CommGraph make_wavelet() {
  return build(
      "wavelet",
      {"src",     "rf_l",     "rf_h",     "cf_ll",    "cf_lh",   "cf_hl",
       "cf_hh",   "mem_l1",   "rf2_l",    "rf2_h",    "cf2_ll",  "cf2_lh",
       "cf2_hl",  "cf2_hh",   "mem_l2",   "quant_lh", "quant_hl",
       "quant_hh", "quant_l2", "entropy",  "rate_ctrl", "out_buf"},
      {
          {"src", "rf_l", 256},
          {"src", "rf_h", 256},
          {"rf_l", "cf_ll", 128},
          {"rf_l", "cf_lh", 128},
          {"rf_h", "cf_hl", 128},
          {"rf_h", "cf_hh", 128},
          {"cf_ll", "mem_l1", 128},
          {"mem_l1", "rf2_l", 64},
          {"mem_l1", "rf2_h", 64},
          {"rf2_l", "cf2_ll", 32},
          {"rf2_l", "cf2_lh", 32},
          {"rf2_h", "cf2_hl", 32},
          {"rf2_h", "cf2_hh", 32},
          {"cf2_ll", "mem_l2", 32},
          {"cf_lh", "quant_lh", 64},
          {"cf_hl", "quant_hl", 64},
          {"cf_hh", "quant_hh", 64},
          {"mem_l2", "quant_l2", 32},
          {"cf2_lh", "entropy", 16},
          {"cf2_hl", "entropy", 16},
          {"cf2_hh", "entropy", 16},
          {"quant_lh", "entropy", 64},
          {"quant_hl", "entropy", 64},
          {"quant_hh", "entropy", 64},
          {"quant_l2", "entropy", 32},
          {"entropy", "rate_ctrl", 16},
          {"rate_ctrl", "entropy", 8},
          {"entropy", "out_buf", 64},
      });
}

}  // namespace

std::vector<std::string> benchmark_names() {
  return {"263dec_mp3dec", "263enc_mp3enc", "dvopd", "mpeg4",
          "mwd",           "pip",           "vopd",  "wavelet"};
}

CommGraph make_benchmark(const std::string& name) {
  const auto lowered = to_lower(name);
  if (lowered == "263dec_mp3dec") return make_263dec_mp3dec();
  if (lowered == "263enc_mp3enc") return make_263enc_mp3enc();
  if (lowered == "dvopd") return make_dvopd();
  if (lowered == "mpeg4" || lowered == "mpeg-4") return make_mpeg4();
  if (lowered == "mwd") return make_mwd();
  if (lowered == "pip") return make_pip();
  if (lowered == "vopd") return make_vopd();
  if (lowered == "wavelet") return make_wavelet();
  throw InvalidArgument("unknown benchmark '" + name +
                        "' (known: 263dec_mp3dec, 263enc_mp3enc, dvopd, "
                        "mpeg4, mwd, pip, vopd, wavelet)");
}

std::vector<CommGraph> all_benchmarks() {
  std::vector<CommGraph> out;
  for (const auto& name : benchmark_names())
    out.push_back(make_benchmark(name));
  return out;
}

}  // namespace phonoc
