#include "workloads/generator.hpp"

#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace phonoc {

namespace {

CommGraph with_tasks(const std::string& name, std::size_t tasks) {
  require(tasks >= 2, "generator: at least two tasks required");
  CommGraph cg(name);
  for (std::size_t i = 0; i < tasks; ++i)
    cg.add_task("t" + std::to_string(i));
  return cg;
}

}  // namespace

CommGraph random_cg(const RandomCgOptions& options) {
  require(options.avg_out_degree > 0.0,
          "random_cg: avg_out_degree must be positive");
  require(options.max_bandwidth >= options.min_bandwidth &&
              options.min_bandwidth > 0.0,
          "random_cg: invalid bandwidth range");
  auto cg = with_tasks("random" + std::to_string(options.tasks),
                       options.tasks);
  Rng rng(options.seed);
  const auto n = options.tasks;
  // Edge probability chosen so the expected out-degree matches.
  const double candidates_per_task =
      options.acyclic ? static_cast<double>(n - 1) / 2.0
                      : static_cast<double>(n - 1);
  const double p = std::min(1.0, options.avg_out_degree / candidates_per_task);
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      if (options.acyclic && dst < src) continue;
      if (!rng.next_bool(p)) continue;
      const double bw = options.min_bandwidth +
                        rng.next_double() *
                            (options.max_bandwidth - options.min_bandwidth);
      cg.add_communication(src, dst, bw);
    }
  }
  // Guarantee at least one communication so the objectives are defined.
  if (cg.communication_count() == 0) cg.add_communication(0u, 1u, 64.0);
  return cg;
}

CommGraph pipeline_cg(std::size_t tasks, double bandwidth) {
  auto cg = with_tasks("pipeline" + std::to_string(tasks), tasks);
  for (NodeId i = 0; i + 1 < tasks; ++i)
    cg.add_communication(i, i + 1, bandwidth);
  return cg;
}

CommGraph tree_cg(std::size_t tasks, std::size_t fanout, double bandwidth) {
  require(fanout >= 1, "tree_cg: fanout must be >= 1");
  auto cg = with_tasks("tree" + std::to_string(tasks), tasks);
  for (NodeId child = 1; child < tasks; ++child) {
    const auto parent = static_cast<NodeId>((child - 1) / fanout);
    cg.add_communication(parent, child, bandwidth);
  }
  return cg;
}

CommGraph hotspot_cg(std::size_t tasks, double bandwidth) {
  auto cg = with_tasks("hotspot" + std::to_string(tasks), tasks);
  for (NodeId i = 1; i < tasks; ++i) {
    cg.add_communication(i, 0u, bandwidth);
    cg.add_communication(0u, i, bandwidth);
  }
  return cg;
}

}  // namespace phonoc
