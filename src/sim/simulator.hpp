#pragma once
/// \file simulator.hpp
/// \brief Event-driven circuit-switched photonic NoC simulator.
///
/// The paper's analysis is static worst case: every communication is
/// assumed simultaneously active. This simulator validates that bound
/// dynamically: transmissions arrive per CG edge as Poisson processes
/// (rates proportional to the edge bandwidths), each transmission
/// circuit-switches its precomputed path — waiting whenever a required
/// router connection conflicts with an in-flight transmission or a link
/// is held — and the crosstalk experienced by each transmission is
/// evaluated against the transmissions *actually* co-active during its
/// flight, using the same derived router pair matrices as the static
/// analysis.
///
/// Outputs: latency statistics (setup wait + serialization), delivered
/// throughput, link utilization, and the distribution of per-
/// transmission SNR — whose minimum is, by construction, bounded from
/// below by the static worst-case SNR of the mapping (a property the
/// test suite asserts).

#include <cstdint>
#include <vector>

#include "graph/comm_graph.hpp"
#include "mapping/mapping.hpp"
#include "model/network_model.hpp"
#include "util/stats.hpp"

namespace phonoc {

struct SimulationOptions {
  /// Simulated duration in nanoseconds.
  double duration_ns = 100000.0;
  /// Mean offered load per CG edge, transmissions per microsecond,
  /// scaled per edge by bandwidth / mean bandwidth.
  double arrivals_per_us = 2.0;
  /// Payload size per transmission, bits.
  double payload_bits = 4096.0;
  /// Optical line rate, Gbit/s (serialization time = payload / rate).
  double line_rate_gbps = 10.0;
  /// Path setup overhead per transmission, ns (electronic control).
  double setup_ns = 10.0;
  /// RNG seed (arrival times are the only randomness).
  std::uint64_t seed = 1;
  /// Warmup: transmissions arriving before this instant are excluded
  /// from the statistics (they still occupy resources).
  double warmup_ns = 0.0;
};

struct SimulationResult {
  std::uint64_t offered = 0;    ///< transmissions generated
  std::uint64_t delivered = 0;  ///< transmissions completed in-horizon
  RunningStats latency_ns;      ///< arrival -> delivery, measured set
  RunningStats wait_ns;         ///< time blocked waiting for the circuit
  RunningStats snr_db;          ///< per-transmission SNR, measured set
  double worst_snr_db = 0.0;    ///< min observed SNR
  double delivered_gbps = 0.0;  ///< aggregate goodput
  double mean_link_utilization = 0.0;  ///< busy fraction over used links
};

/// Run the simulation of `cg` mapped by `mapping` onto `net`.
/// The mapping must be valid for the network (checked).
[[nodiscard]] SimulationResult simulate(const NetworkModel& net,
                                        const CommGraph& cg,
                                        const Mapping& mapping,
                                        const SimulationOptions& options = {});

}  // namespace phonoc
