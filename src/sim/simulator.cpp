#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "model/evaluation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace phonoc {

namespace {

struct Transmission {
  EdgeId edge;
  double arrival_ns;
  double start_ns = 0.0;  ///< circuit established
  double end_ns = 0.0;    ///< circuit released
};

/// Two in-flight transmissions are compatible when no router they share
/// carries conflicting connections. Shared links imply a shared output
/// (and input) port at the link's endpoints, so link exclusivity is
/// subsumed by the router port-conflict rule.
bool compatible(const NetworkModel& net, const PathData& a,
                const PathData& b) {
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    const int j = b.hop_index_at(a.hops[i].tile);
    if (j < 0) continue;
    if (net.router().conflicts(a.conn[i],
                               b.conn[static_cast<std::size_t>(j)]))
      return false;
  }
  return true;
}

}  // namespace

SimulationResult simulate(const NetworkModel& net, const CommGraph& cg,
                          const Mapping& mapping,
                          const SimulationOptions& options) {
  require(mapping.task_count() == cg.task_count(),
          "simulate: mapping does not cover the CG");
  require(options.duration_ns > 0.0 && options.arrivals_per_us > 0.0 &&
              options.payload_bits > 0.0 && options.line_rate_gbps > 0.0,
          "simulate: options must be positive");
  require(options.warmup_ns >= 0.0 && options.warmup_ns < options.duration_ns,
          "simulate: warmup must fall inside the horizon");

  SimulationResult result;
  const auto edges = cg.edges();
  if (edges.empty()) {
    result.worst_snr_db = net.options().snr_ceiling_db;
    return result;
  }

  // Resolve paths once (also validates the mapping against the network).
  std::vector<const PathData*> paths;
  paths.reserve(edges.size());
  for (const auto& e : edges)
    paths.push_back(
        &net.path(mapping.tile_of(e.src), mapping.tile_of(e.dst)));

  // --- generate Poisson arrivals per edge ---------------------------------
  double mean_bw = 0.0;
  for (const auto& e : edges) mean_bw += e.bandwidth_mbps;
  mean_bw /= static_cast<double>(edges.size());
  if (mean_bw <= 0.0) mean_bw = 1.0;

  Rng rng(options.seed);
  std::vector<Transmission> transmissions;
  for (EdgeId e = 0; e < edges.size(); ++e) {
    // Rate in 1/ns, proportional to the edge's bandwidth demand.
    const double weight =
        edges[e].bandwidth_mbps > 0.0 ? edges[e].bandwidth_mbps / mean_bw
                                      : 1.0;
    const double rate = options.arrivals_per_us * weight / 1000.0;
    double t = 0.0;
    Rng edge_rng = rng.fork();
    while (true) {
      t += -std::log(1.0 - edge_rng.next_double()) / rate;
      if (t >= options.duration_ns) break;
      transmissions.push_back(Transmission{e, t});
    }
  }
  std::sort(transmissions.begin(), transmissions.end(),
            [](const Transmission& a, const Transmission& b) {
              return a.arrival_ns < b.arrival_ns;
            });
  result.offered = transmissions.size();

  const double serialization_ns =
      options.payload_bits / options.line_rate_gbps;  // bits / (bit/ns)
  const double hold_ns = options.setup_ns + serialization_ns;

  // --- greedy arrival-order circuit scheduling -----------------------------
  // `scheduled` holds committed transmissions sorted by arrival; for each
  // new one we push its start past every incompatible overlapping circuit.
  std::vector<std::size_t> active;  // indices into transmissions
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    auto& tx = transmissions[i];
    double start = tx.arrival_ns;
    bool moved = true;
    while (moved) {
      moved = false;
      for (const auto j : active) {
        const auto& other = transmissions[j];
        if (other.end_ns <= start || other.start_ns >= start + hold_ns)
          continue;  // no temporal overlap
        if (compatible(net, *paths[tx.edge], *paths[other.edge])) continue;
        start = other.end_ns;  // wait for the conflicting circuit
        moved = true;
      }
    }
    tx.start_ns = start;
    tx.end_ns = start + hold_ns;
    // Keep the active list tight: drop circuits that ended before any
    // future arrival can overlap them.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t j) {
                                  return transmissions[j].end_ns <=
                                         tx.arrival_ns;
                                }),
                 active.end());
    active.push_back(i);
  }

  // --- measurements ----------------------------------------------------------
  result.worst_snr_db = net.options().snr_ceiling_db;
  double total_busy_ns = 0.0;
  std::size_t used_links = 0;
  std::vector<double> busy_per_edge(edges.size(), 0.0);

  // Sort by start for overlap scans.
  std::vector<std::size_t> by_start(transmissions.size());
  for (std::size_t i = 0; i < by_start.size(); ++i) by_start[i] = i;
  std::sort(by_start.begin(), by_start.end(), [&](std::size_t a,
                                                  std::size_t b) {
    return transmissions[a].start_ns < transmissions[b].start_ns;
  });

  for (std::size_t idx = 0; idx < by_start.size(); ++idx) {
    const auto& tx = transmissions[by_start[idx]];
    const bool measured =
        tx.arrival_ns >= options.warmup_ns && tx.end_ns <= options.duration_ns;
    busy_per_edge[tx.edge] +=
        std::min(tx.end_ns, options.duration_ns) - tx.start_ns;
    if (!measured) continue;
    ++result.delivered;
    result.latency_ns.add(tx.end_ns - tx.arrival_ns);
    result.wait_ns.add(tx.start_ns - tx.arrival_ns);

    // Noise from temporally overlapping circuits (all compatible by
    // construction of the schedule). SNR is an instantaneous quantity:
    // two serialized back-to-back circuits of the same attacker edge
    // are never lit at the same instant, so each distinct attacker edge
    // contributes at most once — a tight upper bound on the worst
    // instantaneous co-activation during the victim's flight, and by
    // the subset argument still below the static all-edges bound.
    double noise = 0.0;
    std::vector<bool> edge_counted(edges.size(), false);
    const auto add_attacker = [&](const Transmission& other) {
      if (edge_counted[other.edge]) return;
      edge_counted[other.edge] = true;
      noise += noise_contribution(net, *paths[tx.edge], *paths[other.edge]);
    };
    // Scan neighbours in start order around idx; overlap window is hold_ns.
    for (std::size_t k = idx; k-- > 0;) {
      const auto& other = transmissions[by_start[k]];
      if (other.end_ns <= tx.start_ns) {
        // Starts are ordered and hold times uniform, so ends are ordered
        // too: once one neighbour ends before us, earlier ones do as well.
        break;
      }
      add_attacker(other);
    }
    for (std::size_t k = idx + 1; k < by_start.size(); ++k) {
      const auto& other = transmissions[by_start[k]];
      if (other.start_ns >= tx.end_ns) break;
      add_attacker(other);
    }
    const double snr = std::min(snr_db(paths[tx.edge]->total_gain, noise),
                                net.options().snr_ceiling_db);
    result.snr_db.add(snr);
    result.worst_snr_db = std::min(result.worst_snr_db, snr);
  }

  // Link utilization: each transmission holds every link of its path for
  // its full flight; average the busy fraction over links that carried
  // at least one circuit.
  for (EdgeId e = 0; e < edges.size(); ++e) {
    if (busy_per_edge[e] <= 0.0) continue;
    const auto links_on_path = paths[e]->hops.size() - 1;
    total_busy_ns += busy_per_edge[e] * static_cast<double>(links_on_path);
    used_links += links_on_path;
  }
  result.mean_link_utilization =
      used_links > 0
          ? total_busy_ns /
                (static_cast<double>(used_links) * options.duration_ns)
          : 0.0;
  result.delivered_gbps = static_cast<double>(result.delivered) *
                          options.payload_bits / options.duration_ns;
  return result;
}

}  // namespace phonoc
