/// \file bench_parallel_sweep.cpp
/// \brief P2 — batch-exploration throughput: wall-clock speedup of the
/// BatchEngine parallel path over the sequential protocol on a
/// Table II-style grid, plus a bit-identity check between the two.
///
/// The grid (8 apps x 2 topologies x 2 objectives x 2 algorithms x 2
/// seeds = 128 cells by default) is executed twice: once on a single
/// worker (the sequential reference) and once on the full pool. The
/// acceptance bar for the subsystem is >= 2x speedup on >= 4 workers at
/// >= 100 cells, with every RunResult bit-identical between the runs.
///
/// --evals=N cell budget (default 1500; PHONOC_SWEEP_EVALS overrides),
/// --workers=N pool size for the parallel pass (default all threads),
/// --fork=1 adds a fork/exec worker-process pass (spawn + wire-protocol
/// overhead, bit-identity across the process boundary),
/// --remote=N adds a distributed-scheduler pass over N loopback workers
/// (framing + scheduling overhead, bit-identity through src/sched/),
/// --workerd-threads=A,B,... adds one remote pass per value: a single
/// loopback worker whose internal exec pool is pinned to that width
/// (the worker-side scaling axis of serve_connection; bit-identity is
/// re-checked at every width since frames leave in settle order),
/// --csv=FILE dump the aggregated report,
/// --json=FILE dump the headline numbers as a snapshot for the in-repo
/// perf trajectory (bench/BENCH_parallel_sweep.json; regenerate with
/// bench/update_snapshots.sh).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/fork_exec.hpp"
#include "exec/sweep.hpp"
#include "sched/scheduler.hpp"
#include "sched/service.hpp"
#include "sched/transport.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace phonoc;

/// Bit-identity of two runs: same incumbent, same fitness, same
/// evaluation count, same trace length (timing fields excluded).
bool identical(const CellResult& a, const CellResult& b) {
  return a.run.search.best == b.run.search.best &&
         a.run.search.best_fitness == b.run.search.best_fitness &&
         a.run.search.evaluations == b.run.search.evaluations &&
         a.run.search.trace.size() == b.run.search.trace.size() &&
         a.run.best_evaluation.worst_loss_db ==
             b.run.best_evaluation.worst_loss_db &&
         a.run.best_evaluation.worst_snr_db ==
             b.run.best_evaluation.worst_snr_db;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  const auto evals = static_cast<std::uint64_t>(
      cli.get_int("evals", env_int("PHONOC_SWEEP_EVALS", 1500)));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));

  SweepSpec spec;
  spec.add_all_benchmarks()
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus)
      .add_goal(OptimizationGoal::Snr)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(evals)
      .add_seed_range(1, 2);

  const BatchEngine sequential({.workers = 1});
  const BatchEngine parallel({.workers = workers});
  std::cout << "# P2: parallel batch-exploration speedup, " << cell_count(spec)
            << " cells x " << evals << " evaluations, pool of "
            << parallel.worker_count() << " worker(s)\n\n";

  Timer timer;
  const auto sequential_results = sequential.run(spec);
  const double sequential_seconds = timer.elapsed_seconds();
  timer.restart();
  const auto parallel_results = parallel.run(spec);
  const double parallel_seconds = timer.elapsed_seconds();

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < sequential_results.size(); ++i)
    if (!identical(sequential_results[i], parallel_results[i])) ++mismatches;

  // Optional third pass: the crash-isolated fork/exec worker backend.
  // Measures the process-spawn + serialization overhead against the
  // in-process pool and re-checks bit-identity across the wire.
  if (cli.get_bool("fork", false)) {
    const BatchEngine forked({.workers = workers,
                              .backend = BatchBackend::ForkExec,
                              .worker_path = worker_path_near(argv[0])});
    timer.restart();
    const auto forked_results = forked.run(spec);
    const double forked_seconds = timer.elapsed_seconds();
    std::size_t fork_mismatches = 0;
    for (std::size_t i = 0; i < sequential_results.size(); ++i)
      if (forked_results[i].status != CellStatus::Ok ||
          !identical(sequential_results[i], forked_results[i]))
        ++fork_mismatches;
    std::cout << "# fork/exec (" << forked.worker_count()
              << " processes): " << format_fixed(forked_seconds, 2) << " s, "
              << fork_mismatches << " mismatched cells"
              << (fork_mismatches == 0 ? " (bit-identical across the wire)"
                                       : " (BUG)")
              << '\n';
    mismatches += fork_mismatches;
  }

  // Optional fourth pass: the distributed scheduler over an in-process
  // loopback fleet. Measures the framing + scheduling overhead of
  // src/sched/ and re-checks bit-identity through the full remote path
  // (frames, retry bookkeeping, per-host merge).
  if (const auto remote_hosts =
          static_cast<std::size_t>(cli.get_int("remote", 0));
      remote_hosts > 0) {
    BatchOptions remote_options{.backend = BatchBackend::Remote};
    remote_options.remote_hosts.assign(remote_hosts, "loopback");
    const BatchEngine remote(remote_options);
    timer.restart();
    const auto remote_results = remote.run(spec);
    const double remote_seconds = timer.elapsed_seconds();
    std::size_t remote_mismatches = 0;
    for (std::size_t i = 0; i < sequential_results.size(); ++i)
      if (remote_results[i].status != CellStatus::Ok ||
          !identical(sequential_results[i], remote_results[i]))
        ++remote_mismatches;
    std::cout << "# remote scheduler (" << remote_hosts
              << " loopback workers): " << format_fixed(remote_seconds, 2)
              << " s, " << remote_mismatches << " mismatched cells"
              << (remote_mismatches == 0
                      ? " (bit-identical through the scheduler)"
                      : " (BUG)")
              << '\n';
    mismatches += remote_mismatches;
  }

  // Optional worker-side scaling axis: one loopback worker per pass,
  // its internal exec pool pinned to each requested width. Cells leave
  // in settle order at every width, so this doubles as a determinism
  // stress of the scheduler's index-matching dedup.
  struct WorkerdPoint {
    std::size_t threads = 0;
    double seconds = 0.0;
  };
  std::vector<WorkerdPoint> workerd_axis;
  for (const auto& field : split(cli.get_or("workerd-threads", ""), ',')) {
    const auto text = trim(field);
    if (text.empty()) continue;
    const auto threads =
        static_cast<std::size_t>(std::max<long>(parse_long(text), 1));
    const auto transport =
        std::make_shared<LoopbackTransport>([threads](Connection& conn) {
          ServiceOptions service;
          service.exec_threads = threads;
          service.advertised_capacity = threads;
          return serve_connection(conn, service);
        });
    SchedulerOptions sched;
    sched.hosts = {"loopback"};
    sched.transport = transport;
    sched.cells_per_shard = std::max<std::size_t>(16, 2 * threads);
    timer.restart();
    const auto outcome = Scheduler(std::move(sched)).run(spec);
    const double seconds = timer.elapsed_seconds();
    std::size_t pool_mismatches = 0;
    for (std::size_t i = 0; i < sequential_results.size(); ++i)
      if (outcome.results[i].status != CellStatus::Ok ||
          !identical(sequential_results[i], outcome.results[i]))
        ++pool_mismatches;
    std::cout << "# workerd pool (" << threads
              << " exec thread(s)): " << format_fixed(seconds, 2) << " s, "
              << pool_mismatches << " mismatched cells"
              << (pool_mismatches == 0 ? " (bit-identical at this width)"
                                       : " (BUG)")
              << '\n';
    mismatches += pool_mismatches;
    workerd_axis.push_back({threads, seconds});
  }

  const auto report = SweepReport::build(spec, parallel_results,
                                         parallel_seconds);
  std::cout << report.to_ascii() << '\n';

  const double speedup =
      parallel_seconds > 0.0 ? sequential_seconds / parallel_seconds : 0.0;
  std::cout << "# sequential (1 worker): "
            << format_fixed(sequential_seconds, 2) << " s\n"
            << "# parallel  (" << parallel.worker_count()
            << " workers): " << format_fixed(parallel_seconds, 2) << " s\n"
            << "# speedup: " << format_fixed(speedup, 2) << "x  ("
            << (speedup >= 2.0 ? "PASS" : "below")
            << " the >=2x acceptance bar)\n"
            << "# determinism: " << mismatches << " mismatched cells of "
            << sequential_results.size()
            << (mismatches == 0 ? " (bit-identical)" : " (BUG)") << '\n';

  if (const auto csv_path = cli.get("csv")) {
    std::ofstream out(*csv_path);
    if (!out) {
      std::cerr << "error: cannot open " << *csv_path << " for writing\n";
      return 1;
    }
    report.write_csv(out);
    std::cout << "# aggregated report written to " << *csv_path << '\n';
  }

  if (const auto json_path = cli.get("json")) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "error: cannot open " << *json_path << " for writing\n";
      return 1;
    }
    const double cells_per_second =
        parallel_seconds > 0.0 ? sequential_results.size() / parallel_seconds
                               : 0.0;
    out << "{\n"
        << "  \"benchmark\": \"parallel_sweep\",\n"
        << "  \"cells\": " << sequential_results.size() << ",\n"
        << "  \"evaluations_per_cell\": " << evals << ",\n"
        << "  \"workers\": " << parallel.worker_count() << ",\n"
        << "  \"sequential_seconds\": " << format_fixed(sequential_seconds, 4)
        << ",\n"
        << "  \"parallel_seconds\": " << format_fixed(parallel_seconds, 4)
        << ",\n"
        << "  \"speedup\": " << format_fixed(speedup, 3) << ",\n"
        << "  \"parallel_cells_per_second\": "
        << format_fixed(cells_per_second, 2) << ",\n"
        << "  \"mismatched_cells\": " << mismatches;
    if (!workerd_axis.empty()) {
      out << ",\n  \"workerd_threads_axis\": [";
      for (std::size_t i = 0; i < workerd_axis.size(); ++i) {
        const auto& point = workerd_axis[i];
        const double rate = point.seconds > 0.0
                                ? sequential_results.size() / point.seconds
                                : 0.0;
        out << (i == 0 ? "\n" : ",\n")
            << "    {\"threads\": " << point.threads
            << ", \"seconds\": " << format_fixed(point.seconds, 4)
            << ", \"cells_per_second\": " << format_fixed(rate, 2) << "}";
      }
      out << "\n  ]";
    }
    out << "\n}\n";
    std::cout << "# snapshot written to " << *json_path << '\n';
  }
  return mismatches == 0 ? 0 : 1;
}
