/// \file bench_model_ablation.cpp
/// \brief Ablation A2 — crosstalk model fidelity and conflict policy.
///
/// The paper simplifies the analytical model of [6] by dropping
/// intra-router attenuation of the noise (Ki*Li = Ki) and by summing
/// noise over communications without spelling out co-activation
/// feasibility. This harness quantifies both choices: it evaluates the
/// same optimized mappings under (Simplified | Full) fidelity and
/// (Exclude | Ignore) conflict policy and reports the worst-case SNR
/// deltas, i.e. how much accuracy the paper's simplifications trade for
/// model economy.

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "model/evaluation.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_ABLATION_EVALS", full_scale_requested() ? 20000 : 3000)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  Timer timer;

  std::cout << "# A2: crosstalk model ablation. Mappings optimized under "
               "the paper model\n# (simplified fidelity, conflict-aware) "
               "re-evaluated under the three variants.\n\n";

  TableWriter table({"application", "paper SNR dB", "full-fidelity SNR dB",
                     "ignore-conflicts SNR dB", "full+ignore SNR dB"});

  for (const auto& app : benchmark_names()) {
    ExperimentSpec spec;
    spec.benchmark = app;
    spec.goal = OptimizationGoal::Snr;
    const auto problem = make_experiment(spec);
    const auto run = Engine(problem).run("rpbla", budget, seed);
    const auto& mapping = run.search.best;

    const auto evaluate_variant = [&](ModelFidelity fidelity,
                                      ConflictPolicy policy) {
      ExperimentSpec variant = spec;
      variant.model_options.fidelity = fidelity;
      variant.model_options.conflict_policy = policy;
      const auto variant_problem = make_experiment(variant);
      return evaluate_mapping(variant_problem.network(),
                              variant_problem.cg(), mapping.assignment())
          .worst_snr_db;
    };

    table.add_row(
        {app, format_fixed(run.best_evaluation.worst_snr_db, 2),
         format_fixed(evaluate_variant(ModelFidelity::Full,
                                       ConflictPolicy::Exclude),
                      2),
         format_fixed(evaluate_variant(ModelFidelity::Simplified,
                                       ConflictPolicy::Ignore),
                      2),
         format_fixed(
             evaluate_variant(ModelFidelity::Full, ConflictPolicy::Ignore),
             2)});
  }
  std::cout << table.to_ascii();
  std::cout << "\n# reading: full fidelity keeps the intra-router terms the "
               "paper drops (slightly less\n# noise -> equal or higher "
               "SNR); ignoring conflicts adds physically impossible "
               "attacker\n# pairs (more noise -> lower SNR). The paper's "
               "model is the conservative middle.\n";
  std::cout << "# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s\n";
  return 0;
}
