/// \file bench_fig3_distributions.cpp
/// \brief Experiment E1/E2 — paper Fig. 3 (a) and (b).
///
/// For each of the eight multimedia applications, evaluate a large
/// number of random mapping solutions on the smallest fitting square
/// mesh with the Crux router (the paper uses 100 000 per application)
/// and record the probability distribution of the worst-case SNR and
/// the worst-case power loss.
///
/// The sampling runs through BatchEngine's SweepTaskKind::Sample path:
/// each application's sample budget is split into `--subcells`
/// sub-cells (one per seed, seeds `--seed` .. `--seed + subcells - 1`),
/// every sub-cell evaluates its share with a deterministic per-cell
/// RNG, and the constant-size DistributionResult payloads (Histogram +
/// RunningStats per metric) merge in grid order. The merged
/// distributions are bit-identical whatever the worker count or
/// backend — `--verify` asserts exactly that against a fresh
/// in-process run, which is what CI's fork and two-daemon TCP smokes
/// lean on.
///
/// Memory: no raw per-sample vectors are kept (at paper scale those
/// were 2 x 100k doubles per app); quantiles come from the merged
/// histograms (linear interpolation inside the crossing bin). Pass
/// `--exact-quantiles` on small runs to replay the sample streams
/// in-process and report exact quartiles instead.
///
/// Output: a per-application summary table (min / mean / max / stddev /
/// quartiles) followed by the histogram series in CSV form — the same
/// data the paper plots as Fig. 3.
///
/// Scale knobs: PHONOC_FIG3_SAMPLES overrides the per-app sample count;
/// PHONOC_FULL=1 selects the paper's 100 000.
///
///     bench_fig3_distributions [--samples=N] [--subcells=K] [--seed=S]
///                              [--workers=N]
///                              [--backend=thread|fork|remote]
///                              [--worker=PATH] [--hosts=EP1,EP2,...]
///                              [--verify] [--exact-quantiles]

#include <iostream>
#include <vector>

#include "core/evaluator.hpp"
#include "exec/batch_engine.hpp"
#include "exec/fork_exec.hpp"
#include "exec/sweep.hpp"
#include "io/csv.hpp"
#include "io/table_writer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace phonoc;

/// Replay one app's sample streams in-process to collect raw metric
/// values (the opt-in exact-quantile path; costs a full re-evaluation,
/// so only sensible at small sample counts).
void replay_exact(const SweepSpec& spec, std::size_t workload,
                  std::vector<double>& snr_values,
                  std::vector<double>& loss_values) {
  const auto problem =
      make_problem(spec, SweepCell{.workload = workload});
  const Evaluator evaluator(problem);
  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    Rng rng(spec.seeds[s]);
    for (std::uint64_t i = 0; i < spec.sampling.samples_per_cell; ++i) {
      const auto mapping =
          Mapping::random(problem.task_count(), problem.tile_count(), rng);
      const auto result = evaluator.evaluate_raw(mapping);
      snr_values.push_back(result.worst_snr_db);
      loss_values.push_back(result.worst_loss_db);
    }
  }
}

/// One app's sub-cells merged in grid (seed) order — the canonical
/// fold of the bit-identity contract (merge_cell_distributions).
DistributionResult merge_app(const std::vector<CellResult>& results,
                             std::size_t workload, std::size_t subcells) {
  return merge_cell_distributions(results, workload * subcells, subcells);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  const auto samples = static_cast<std::uint64_t>(cli.get_int(
      "samples",
      env_int("PHONOC_FIG3_SAMPLES", full_scale_requested() ? 100000 : 20000)));
  const auto subcells =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int(
          "subcells", 8)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  const auto backend_name = cli.get_or("backend", "thread");
  if (backend_name != "thread" && backend_name != "fork" &&
      backend_name != "remote") {
    std::cerr << "error: --backend must be 'thread', 'fork' or 'remote'\n";
    return 1;
  }
  const auto per_cell =
      std::max<std::uint64_t>(1, (samples + subcells - 1) / subcells);

  SweepSpec spec;
  spec.add_all_benchmarks()
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_seed_range(seed, subcells)
      .use_sampling({.samples_per_cell = per_cell});

  BatchOptions options{.workers = workers};
  if (backend_name == "fork") {
    options.backend = BatchBackend::ForkExec;
    options.worker_path = cli.get_or("worker", worker_path_near(argv[0]));
  } else if (backend_name == "remote") {
    options.backend = BatchBackend::Remote;
    for (const auto& endpoint :
         split(cli.get_or("hosts", "loopback,loopback"), ','))
      if (!trim(endpoint).empty())
        options.remote_hosts.emplace_back(trim(endpoint));
  }
  const BatchEngine engine(options);

  std::cout << "# Fig. 3 reproduction: distribution of worst-case SNR and "
               "power loss over\n# "
            << per_cell * subcells << " random mappings per application ("
            << subcells << " sub-cells x " << per_cell
            << " samples, mesh + Crux router, backend " << backend_name
            << ")\n\n";

  Timer timer;
  const auto results = engine.run(spec);
  std::size_t failed = 0;
  for (const auto& result : results)
    if (result.status == CellStatus::Failed) {
      std::cerr << "error: cell " << result.cell.index << " ("
                << cell_label(spec, result.cell) << ") failed: "
                << result.error << '\n';
      ++failed;
    }
  if (failed > 0) return 1;

  TableWriter summary({"app", "tasks", "edges", "grid", "metric", "min",
                       "mean", "max", "stddev", "p25", "p50", "p75"});
  std::vector<std::string> csv_lines;
  CsvWriter csv(std::cout);

  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    const auto& name = spec.workloads[w].name;
    const auto merged = merge_app(results, w, subcells);

    std::vector<double> exact_snr, exact_loss;
    if (cli.has("exact-quantiles"))
      replay_exact(spec, w, exact_snr, exact_loss);

    const auto side = resolved_side(spec, w, 0);
    const auto grid = std::to_string(side) + "x" + std::to_string(side);
    const auto add_summary = [&](const char* metric,
                                 std::vector<double>& exact_values) {
      const auto* dist = merged.find(metric);
      const auto q = [&](double p) {
        return exact_values.empty() ? dist->histogram.quantile(p)
                                    : quantile(exact_values, p);
      };
      summary.add_row({name, std::to_string(spec.workloads[w].cg.task_count()),
                       std::to_string(
                           spec.workloads[w].cg.communication_count()),
                       grid, metric, format_fixed(dist->stats.min(), 2),
                       format_fixed(dist->stats.mean(), 2),
                       format_fixed(dist->stats.max(), 2),
                       format_fixed(dist->stats.stddev(), 2),
                       format_fixed(q(0.25), 2), format_fixed(q(0.50), 2),
                       format_fixed(q(0.75), 2)});
      for (std::size_t b = 0; b < dist->histogram.bins(); ++b) {
        if (dist->histogram.count(b) == 0) continue;
        csv_lines.push_back(name + std::string(",") + metric + "," +
                            format_fixed(dist->histogram.bin_low(b), 3) + "," +
                            format_fixed(dist->histogram.bin_high(b), 3) +
                            "," +
                            format_fixed(dist->histogram.probability(b), 6));
      }
    };
    add_summary("snr_db", exact_snr);
    add_summary("loss_db", exact_loss);
  }

  std::cout << summary.to_ascii() << '\n';
  std::cout << "# Fig. 3 series (probability mass per bin):\n";
  csv.header({"app", "metric", "bin_low", "bin_high", "probability"});
  for (const auto& line : csv_lines) std::cout << line << '\n';
  std::cout << "\n# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s for " << per_cell * subcells << " samples x "
            << spec.workloads.size() << " apps\n";

  if (cli.has("verify")) {
    std::cout << "# verifying bit-identity against the in-process backend..."
              << std::endl;
    const auto reference = BatchEngine({.workers = workers}).run(spec);
    std::size_t mismatches = 0;
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
      if (identical_distributions(merge_app(results, w, subcells),
                                  merge_app(reference, w, subcells)))
        continue;
      std::cerr << "error: merged distribution for app '"
                << spec.workloads[w].name
                << "' differs from the in-process backend\n";
      ++mismatches;
    }
    if (mismatches > 0) return 1;
    std::cout << "# determinism check passed: " << spec.workloads.size()
              << " merged app distributions bit-identical across backends."
              << std::endl;
  }
  return 0;
}
