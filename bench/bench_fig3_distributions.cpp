/// \file bench_fig3_distributions.cpp
/// \brief Experiment E1/E2 — paper Fig. 3 (a) and (b).
///
/// For each of the eight multimedia applications, generate a large
/// number of random mapping solutions on the smallest fitting square
/// mesh with the Crux router (the paper uses 100 000 per application)
/// and record the probability distribution of the worst-case SNR and
/// the worst-case power loss.
///
/// Output: a per-application summary table (min / mean / max / stddev /
/// quartiles) followed by the histogram series in CSV form — the same
/// data the paper plots as Fig. 3.
///
/// Scale knobs: PHONOC_FIG3_SAMPLES overrides the sample count;
/// PHONOC_FULL=1 selects the paper's 100 000.

#include <cstdio>
#include <iostream>

#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "io/csv.hpp"
#include "io/table_writer.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"

namespace {

constexpr double kSnrLo = 0.0;
constexpr double kSnrHi = 45.0;
constexpr double kLossLo = -4.5;
constexpr double kLossHi = 0.0;
constexpr std::size_t kBins = 30;

}  // namespace

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  const auto samples = static_cast<std::uint64_t>(cli.get_int(
      "samples",
      env_int("PHONOC_FIG3_SAMPLES", full_scale_requested() ? 100000 : 20000)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::cout << "# Fig. 3 reproduction: distribution of worst-case SNR and "
               "power loss over\n# "
            << samples
            << " random mappings per application (mesh + Crux router)\n\n";

  TableWriter summary({"app", "tasks", "edges", "grid", "metric", "min",
                       "mean", "max", "stddev", "p25", "p50", "p75"});
  std::vector<std::string> csv_lines;
  CsvWriter csv(std::cout);
  Timer timer;

  for (const auto& name : benchmark_names()) {
    ExperimentSpec spec;
    spec.benchmark = name;
    const auto problem = make_experiment(spec);
    const Evaluator evaluator(problem);

    Histogram snr_hist(kSnrLo, kSnrHi, kBins);
    Histogram loss_hist(kLossLo, kLossHi, kBins);
    RunningStats snr_stats;
    RunningStats loss_stats;
    std::vector<double> snr_values;
    std::vector<double> loss_values;
    snr_values.reserve(samples);
    loss_values.reserve(samples);

    Rng rng(seed);
    for (std::uint64_t i = 0; i < samples; ++i) {
      const auto mapping =
          Mapping::random(problem.task_count(), problem.tile_count(), rng);
      const auto result = evaluator.evaluate_raw(mapping);
      snr_hist.add(result.worst_snr_db);
      loss_hist.add(result.worst_loss_db);
      snr_stats.add(result.worst_snr_db);
      loss_stats.add(result.worst_loss_db);
      snr_values.push_back(result.worst_snr_db);
      loss_values.push_back(result.worst_loss_db);
    }

    const auto grid = std::to_string(problem.network().topology().rows()) +
                      "x" + std::to_string(problem.network().topology().cols());
    const auto add_summary = [&](const char* metric,
                                 const RunningStats& stats,
                                 std::vector<double>& values) {
      summary.add_row({name, std::to_string(problem.task_count()),
                       std::to_string(problem.cg().communication_count()),
                       grid, metric, format_fixed(stats.min(), 2),
                       format_fixed(stats.mean(), 2),
                       format_fixed(stats.max(), 2),
                       format_fixed(stats.stddev(), 2),
                       format_fixed(quantile(values, 0.25), 2),
                       format_fixed(quantile(values, 0.50), 2),
                       format_fixed(quantile(values, 0.75), 2)});
    };
    add_summary("snr_db", snr_stats, snr_values);
    add_summary("loss_db", loss_stats, loss_values);

    const auto emit_hist = [&](const char* metric, const Histogram& hist) {
      for (std::size_t b = 0; b < hist.bins(); ++b) {
        if (hist.count(b) == 0) continue;
        csv_lines.push_back(name + std::string(",") + metric + "," +
                            format_fixed(hist.bin_low(b), 3) + "," +
                            format_fixed(hist.bin_high(b), 3) + "," +
                            format_fixed(hist.probability(b), 6));
      }
    };
    emit_hist("snr_db", snr_hist);
    emit_hist("loss_db", loss_hist);
  }

  std::cout << summary.to_ascii() << '\n';
  std::cout << "# Fig. 3 series (probability mass per bin):\n";
  csv.header({"app", "metric", "bin_low", "bin_high", "probability"});
  for (const auto& line : csv_lines) std::cout << line << '\n';
  std::cout << "\n# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s for " << samples << " samples x 8 apps\n";
  return 0;
}
