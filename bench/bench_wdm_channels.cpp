/// \file bench_wdm_channels.cpp
/// \brief Extension study — WDM channel count vs worst-case SNR.
///
/// The paper's §I flags multiwavelength operation as a power-budget
/// aggravator; this study shows the other side of the coin: after
/// mapping optimization, assigning mutually-interfering communications
/// to different wavelength channels (greedy interference-graph
/// coloring, model/wavelength.hpp) recovers SNR that no mapping could —
/// at the price of per-channel laser power (reported alongside via the
/// power-budget model).

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "model/power_budget.hpp"
#include "model/wavelength.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_ABLATION_EVALS", full_scale_requested() ? 20000 : 3000)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  WdmOptions base;
  base.inter_channel_isolation_db =
      cli.get_double("isolation", -30.0);
  Timer timer;

  std::cout << "# WDM extension: worst-case SNR vs channel count "
               "(isolation "
            << base.inter_channel_isolation_db
            << " dB, mappings pre-optimized with R-PBLA)\n\n";

  TableWriter table({"application", "1 ch SNR dB", "2 ch", "4 ch", "8 ch",
                     "per-ch power slack dB @8ch"});
  for (const auto& app : benchmark_names()) {
    ExperimentSpec spec;
    spec.benchmark = app;
    spec.goal = OptimizationGoal::Snr;
    const auto problem = make_experiment(spec);
    const auto run = Engine(problem).run("rpbla", budget, seed);
    const auto& mapping = run.search.best;

    std::vector<std::string> row{app};
    double worst_loss = 0.0;
    for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
      WdmOptions options = base;
      options.channels = channels;
      const auto wdm =
          assign_wavelengths(problem.network(), problem.cg(),
                             mapping.assignment(), options);
      const auto result =
          evaluate_mapping_wdm(problem.network(), problem.cg(),
                               mapping.assignment(), wdm, options);
      row.push_back(format_fixed(result.worst_snr_db, 2));
      worst_loss = result.worst_loss_db;
    }
    PowerBudgetOptions pb;
    pb.wavelength_channels = 8;
    row.push_back(format_fixed(compute_power_budget(worst_loss, pb).slack_db,
                               2));
    table.add_row(std::move(row));
  }
  std::cout << table.to_ascii();
  std::cout << "\n# reading: channels buy SNR where mapping alone has "
               "exhausted its freedom (dense apps),\n# while the "
               "per-channel power ceiling (paper §I) tightens — the "
               "trade-off the tool exposes.\n";
  std::cout << "# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s\n";
  return 0;
}
