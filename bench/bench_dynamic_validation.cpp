/// \file bench_dynamic_validation.cpp
/// \brief Ablation A4 — static worst case vs dynamic reality.
///
/// The paper's objectives are static worst-case bounds (every CG edge
/// simultaneously lit). This harness runs the event-driven circuit-
/// switched simulator on each benchmark, for a random and an optimized
/// mapping, and reports how the dynamically observed per-transmission
/// SNR distribution sits relative to the static bound — quantifying the
/// bound's conservatism — together with latency/throughput, showing that
/// SNR-optimized mappings do not wreck network performance.

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "model/evaluation.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_ABLATION_EVALS", full_scale_requested() ? 20000 : 3000)));
  SimulationOptions sim;
  sim.duration_ns = cli.get_double(
      "duration-ns", full_scale_requested() ? 500000.0 : 100000.0);
  sim.arrivals_per_us = cli.get_double("load", 2.0);
  sim.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto seed = sim.seed;
  Timer timer;

  std::cout << "# A4: static worst-case bound vs dynamic circuit-switched "
               "simulation\n# (load "
            << sim.arrivals_per_us << " tx/us/edge, "
            << sim.duration_ns / 1000.0 << " us horizon)\n\n";

  TableWriter table({"application", "mapping", "static SNR_wc dB",
                     "sim worst dB", "sim mean dB", "wait ns (mean)",
                     "goodput Gbit/s", "link util %"});

  for (const auto& app : benchmark_names()) {
    ExperimentSpec spec;
    spec.benchmark = app;
    spec.goal = OptimizationGoal::Snr;
    const auto problem = make_experiment(spec);
    const Engine engine(problem);

    OptimizerBudget one;
    one.max_evaluations = 1;
    const auto random_run = engine.run("rs", one, seed);
    const auto optimized_run = engine.run("rpbla", budget, seed);

    const auto report = [&](const char* label, const Mapping& mapping) {
      const auto static_eval = evaluate_mapping(
          problem.network(), problem.cg(), mapping.assignment());
      const auto dynamic =
          simulate(problem.network(), problem.cg(), mapping, sim);
      table.add_row(
          {app, label, format_fixed(static_eval.worst_snr_db, 2),
           format_fixed(dynamic.worst_snr_db, 2),
           format_fixed(dynamic.snr_db.mean(), 2),
           format_fixed(dynamic.wait_ns.mean(), 1),
           format_fixed(dynamic.delivered_gbps, 2),
           format_fixed(dynamic.mean_link_utilization * 100.0, 1)});
    };
    report("random", random_run.search.best);
    report("optimized", optimized_run.search.best);
  }
  std::cout << table.to_ascii();
  std::cout << "\n# invariant (asserted by the test suite): sim worst >= "
               "static SNR_wc — the paper's\n# bound is safe; the gap "
               "measures its conservatism under realistic co-activation.\n";
  std::cout << "# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s\n";
  return 0;
}
