/// \file bench_scalability.cpp
/// \brief Experiment E5 — the paper's scalability statements (§I, §III):
/// worst-case loss and crosstalk grow with network size, edge-dense
/// applications fare worse than sparse ones of the same size, and
/// mapping optimization extends the feasible network size under the
/// laser power budget.
///
/// Part 1: per-benchmark optimized metrics vs grid size / edge count
/// (explains the DVOPD-worst / MPEG-4-worse-than-sparse observations).
/// Part 2: mesh-side sweep with full-occupancy synthetic workloads,
/// comparing random vs optimized mappings and reporting the laser-power
/// feasibility verdict for each size.

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "model/power_budget.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_SCALE_EVALS", full_scale_requested() ? 40000 : 4000)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto max_side = static_cast<std::uint32_t>(cli.get_int(
      "max-side", full_scale_requested() ? 8 : 7));
  Timer timer;

  std::cout << "# E5 part 1: optimized worst-case metrics vs application "
               "size/density (mesh + Crux, R-PBLA)\n\n";
  TableWriter apps({"application", "tasks", "edges", "grid", "best loss dB",
                    "best SNR dB"});
  for (const auto& name : benchmark_names()) {
    ExperimentSpec loss_spec;
    loss_spec.benchmark = name;
    loss_spec.goal = OptimizationGoal::InsertionLoss;
    const auto loss_problem = make_experiment(loss_spec);
    const auto loss_run = Engine(loss_problem).run("rpbla", budget, seed);
    ExperimentSpec snr_spec = loss_spec;
    snr_spec.goal = OptimizationGoal::Snr;
    const auto snr_problem = make_experiment(snr_spec);
    const auto snr_run = Engine(snr_problem).run("rpbla", budget, seed);
    const auto& topo = loss_problem.network().topology();
    apps.add_row({name, std::to_string(loss_problem.task_count()),
                  std::to_string(loss_problem.cg().communication_count()),
                  std::to_string(topo.rows()) + "x" +
                      std::to_string(topo.cols()),
                  format_fixed(loss_run.best_evaluation.worst_loss_db, 2),
                  format_fixed(snr_run.best_evaluation.worst_snr_db, 2)});
  }
  std::cout << apps.to_ascii() << '\n';
  std::cout << "# paper shape: worst values on DVOPD (6x6); edge-dense "
               "MPEG-4 (26 edges) worse than the sparse 12-task apps.\n\n";

  std::cout << "# E5 part 2: mesh-side sweep, full-occupancy random "
               "workload; random vs optimized mapping and laser budget "
               "(detector -20 dBm, ceiling 10 dBm, margin 1 dB)\n\n";
  TableWriter sweep({"mesh", "tasks", "random loss dB", "optimized loss dB",
                     "laser random dBm", "laser optimized dBm",
                     "feasible(random)", "feasible(optimized)"});
  for (std::uint32_t side = 3; side <= max_side; ++side) {
    auto cg = random_cg({.tasks = static_cast<std::size_t>(side) * side,
                         .avg_out_degree = 1.6,
                         .min_bandwidth = 16,
                         .max_bandwidth = 256,
                         .seed = 42,
                         .acyclic = true});
    auto network = make_network(TopologyKind::Mesh, side, "crux");
    MappingProblem problem(std::move(cg), network,
                           make_objective(OptimizationGoal::InsertionLoss));
    const Engine engine(problem);
    // Random mapping baseline = a single-sample "search".
    OptimizerBudget one;
    one.max_evaluations = 1;
    const auto random_run = engine.run("rs", one, seed);
    const auto optimized_run = engine.run("rpbla", budget, seed);
    const double random_loss = random_run.best_evaluation.worst_loss_db;
    const double optimized_loss =
        optimized_run.best_evaluation.worst_loss_db;
    const auto random_budget = compute_power_budget(random_loss, {});
    const auto optimized_budget = compute_power_budget(optimized_loss, {});
    sweep.add_row(
        {std::to_string(side) + "x" + std::to_string(side),
         std::to_string(side * side), format_fixed(random_loss, 2),
         format_fixed(optimized_loss, 2),
         format_fixed(random_budget.required_power_dbm, 2),
         format_fixed(optimized_budget.required_power_dbm, 2),
         random_budget.feasible ? "yes" : "no",
         optimized_budget.feasible ? "yes" : "no"});
  }
  std::cout << sweep.to_ascii();
  std::cout << "\n# mapping optimization lowers the worst-case loss, hence "
               "the required laser power,\n# enabling larger feasible "
               "networks (the paper's scalability claim).\n";
  std::cout << "# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s\n";
  return 0;
}
