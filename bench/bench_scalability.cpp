/// \file bench_scalability.cpp
/// \brief Experiment E5 — the paper's scalability statements (§I, §III):
/// worst-case loss and crosstalk grow with network size, edge-dense
/// applications fare worse than sparse ones of the same size, and
/// mapping optimization extends the feasible network size under the
/// laser power budget.
///
/// Part 1: per-benchmark optimized metrics vs grid size / edge count
/// (explains the DVOPD-worst / MPEG-4-worse-than-sparse observations).
/// Part 2: mesh-side sweep with full-occupancy synthetic workloads,
/// comparing random vs optimized mappings and reporting the laser-power
/// feasibility verdict for each size.
///
/// Both parts run as BatchEngine sweeps (--workers=N, default all
/// hardware threads; 1 reproduces the sequential protocol cell for
/// cell). Part 2 exploits the auto-sizing rule: a side*side-task random
/// workload on an auto-sized mesh occupies every tile.

#include <iostream>

#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "io/table_writer.hpp"
#include "mapping/mapping.hpp"
#include "model/incremental.hpp"
#include "model/power_budget.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace {

/// Part 0: the evaluation-layer scaling claim behind every sweep below —
/// per-move cost of full re-evaluation vs the incremental kernel on
/// dense full-occupancy workloads, after asserting bitwise agreement.
void report_eval_scaling(std::uint32_t max_side) {
  using namespace phonoc;
  std::cout << "# E5 part 0: full vs delta evaluation cost per swap move "
               "(mesh + Crux, dense random CG, bitwise agreement asserted)"
               "\n\n";
  TableWriter table({"grid", "edges", "full us/move", "delta us/move",
                     "speedup"});
  for (std::uint32_t side = 4; side <= max_side; side += 2) {
    auto cg = random_cg({.tasks = static_cast<std::size_t>(side) * side,
                         .avg_out_degree = 3.0,
                         .min_bandwidth = 8,
                         .max_bandwidth = 256,
                         .seed = 23,
                         .acyclic = false});
    const auto edges = cg.communication_count();
    MappingProblem problem(std::move(cg),
                           make_network(TopologyKind::Mesh, side, "crux"),
                           make_objective(OptimizationGoal::Snr));
    const auto tiles = problem.tile_count();
    Rng rng(5);
    Mapping current = Mapping::random(problem.task_count(), tiles, rng);
    IncrementalEvaluation kernel(problem.network(), problem.cg());
    kernel.reset(current.assignment());

    const int moves = 120;
    double full_us = 0.0;
    double delta_us = 0.0;
    for (int step = 0; step < moves; ++step) {
      const auto a = static_cast<TileId>(rng.next_below(tiles));
      const auto b = static_cast<TileId>(rng.next_below(tiles));
      current.swap_tiles(a, b);
      Timer delta_timer;
      kernel.propose_swap(a, b);
      kernel.commit();
      delta_us += delta_timer.elapsed_seconds() * 1e6;
      Timer full_timer;
      const auto full = evaluate_mapping(problem.network(), problem.cg(),
                                         current.assignment());
      full_us += full_timer.elapsed_seconds() * 1e6;
      require(full.worst_snr_db == kernel.view().worst_snr_db &&
                  full.worst_loss_db == kernel.view().worst_loss_db,
              "bench_scalability: full and delta evaluation disagree");
    }
    table.add_row({std::to_string(side) + "x" + std::to_string(side),
                   std::to_string(edges), format_fixed(full_us / moves, 1),
                   format_fixed(delta_us / moves, 1),
                   format_fixed(full_us / delta_us, 1) + "x"});
  }
  std::cout << table.to_ascii()
            << "\n# the gap widens with |E|: full is O(|E|^2) noise pairs "
               "per move, delta O(touched x |E|).\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_SCALE_EVALS", full_scale_requested() ? 40000 : 4000)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto max_side = static_cast<std::uint32_t>(cli.get_int(
      "max-side", full_scale_requested() ? 8 : 7));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  const BatchEngine engine({.workers = workers});
  Timer timer;

  report_eval_scaling(max_side);

  std::cout << "# E5 part 1: optimized worst-case metrics vs application "
               "size/density (mesh + Crux, R-PBLA, "
            << engine.worker_count() << " workers)\n\n";
  SweepSpec apps_spec;
  apps_spec.add_all_benchmarks()
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizer("rpbla")
      .add_seed(seed);
  apps_spec.budgets.push_back(budget);
  const auto apps_results = engine.run(apps_spec);

  TableWriter apps({"application", "tasks", "edges", "grid", "best loss dB",
                    "best SNR dB"});
  for (std::size_t w = 0; w < apps_spec.workloads.size(); ++w) {
    const auto& workload = apps_spec.workloads[w];
    const auto& loss_run =
        apps_results[grid_index(apps_spec, w, 0, 0, 0, 0, 0)].run;
    const auto& snr_run =
        apps_results[grid_index(apps_spec, w, 0, 1, 0, 0, 0)].run;
    const auto side = resolved_side(apps_spec, w, 0);
    apps.add_row({workload.name, std::to_string(workload.cg.task_count()),
                  std::to_string(workload.cg.communication_count()),
                  std::to_string(side) + "x" + std::to_string(side),
                  format_fixed(loss_run.best_evaluation.worst_loss_db, 2),
                  format_fixed(snr_run.best_evaluation.worst_snr_db, 2)});
  }
  std::cout << apps.to_ascii() << '\n';
  std::cout << "# paper shape: worst values on DVOPD (6x6); edge-dense "
               "MPEG-4 (26 edges) worse than the sparse 12-task apps.\n\n";

  std::cout << "# E5 part 2: mesh-side sweep, full-occupancy random "
               "workload; random vs optimized mapping and laser budget "
               "(detector -20 dBm, ceiling 10 dBm, margin 1 dB)\n\n";
  // One workload per side; the auto-sized mesh (side 0) fits each
  // side*side-task workload exactly, giving the full-occupancy diagonal
  // of the (workload x topology) grid without wasted cells.
  const auto make_sweep_spec = [&](std::uint64_t evals) {
    SweepSpec spec;
    for (std::uint32_t side = 3; side <= max_side; ++side)
      spec.add_workload(
          std::to_string(side) + "x" + std::to_string(side),
          random_cg({.tasks = static_cast<std::size_t>(side) * side,
                     .avg_out_degree = 1.6,
                     .min_bandwidth = 16,
                     .max_bandwidth = 256,
                     .seed = 42,
                     .acyclic = true}));
    spec.add_topology(TopologyKind::Mesh)
        .add_goal(OptimizationGoal::InsertionLoss)
        .add_seed(seed);
    spec.add_budget(evals);
    return spec;
  };
  // Random mapping baseline = a single-sample "search".
  auto random_spec = make_sweep_spec(1);
  random_spec.add_optimizer("rs");
  auto optimized_spec = make_sweep_spec(budget.max_evaluations);
  optimized_spec.add_optimizer("rpbla");
  const auto random_results = engine.run(random_spec);
  const auto optimized_results = engine.run(optimized_spec);

  TableWriter sweep({"mesh", "tasks", "random loss dB", "optimized loss dB",
                     "laser random dBm", "laser optimized dBm",
                     "feasible(random)", "feasible(optimized)"});
  for (std::size_t w = 0; w < random_spec.workloads.size(); ++w) {
    const auto side = resolved_side(random_spec, w, 0);
    const double random_loss =
        random_results[w].run.best_evaluation.worst_loss_db;
    const double optimized_loss =
        optimized_results[w].run.best_evaluation.worst_loss_db;
    const auto random_budget = compute_power_budget(random_loss, {});
    const auto optimized_budget = compute_power_budget(optimized_loss, {});
    sweep.add_row(
        {std::to_string(side) + "x" + std::to_string(side),
         std::to_string(side * side), format_fixed(random_loss, 2),
         format_fixed(optimized_loss, 2),
         format_fixed(random_budget.required_power_dbm, 2),
         format_fixed(optimized_budget.required_power_dbm, 2),
         random_budget.feasible ? "yes" : "no",
         optimized_budget.feasible ? "yes" : "no"});
  }
  std::cout << sweep.to_ascii();
  std::cout << "\n# mapping optimization lowers the worst-case loss, hence "
               "the required laser power,\n# enabling larger feasible "
               "networks (the paper's scalability claim).\n";
  std::cout << "# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s\n";
  return 0;
}
