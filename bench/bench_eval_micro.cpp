/// \file bench_eval_micro.cpp
/// \brief P1 — google-benchmark microbenchmarks of the hot paths: the
/// mapping evaluator (which the DSE calls tens of thousands of times),
/// full vs delta (incremental) per-swap evaluation, router-model
/// derivation, and network-model construction.
///
/// Before the benchmarks run, main() verifies that the full and the
/// incremental evaluation paths agree bitwise over a random swap
/// sequence on the large workload, then reports ns/step and the
/// full/delta speedup measured with a plain timer. A second report
/// section does the same for the SoA batched kernel: bitwise agreement
/// against per-mapping evaluation, then per-mapping throughput
/// (mappings/sec) across batch sizes {1, 8, 64, 512} and CG sizes.
/// --json=FILE dumps the batched section's headline numbers
/// (bench/BENCH_batch_eval.json; regenerate with
/// bench/update_snapshots.sh).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "model/batch_eval.hpp"
#include "model/evaluation.hpp"
#include "model/incremental.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace phonoc;

/// The large delta-vs-full workload: a dense random CG filling an
/// 8x8 torus (64 tasks, ~190 edges — well past the >=64-edge bar).
MappingProblem make_large_problem() {
  auto cg = random_cg({.tasks = 64,
                       .avg_out_degree = 3.0,
                       .min_bandwidth = 8,
                       .max_bandwidth = 256,
                       .seed = 7,
                       .acyclic = false});
  return MappingProblem(std::move(cg),
                        make_network(TopologyKind::Torus, 8, "crux"),
                        make_objective(OptimizationGoal::Snr));
}

void BM_EvaluateMapping(benchmark::State& state,
                        const std::string& benchmark_name) {
  ExperimentSpec spec;
  spec.benchmark = benchmark_name;
  const auto problem = make_experiment(spec);
  const Evaluator evaluator(problem);
  Rng rng(7);
  std::vector<Mapping> mappings;
  for (int i = 0; i < 64; ++i)
    mappings.push_back(
        Mapping::random(problem.task_count(), problem.tile_count(), rng));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result = evaluator.evaluate_raw(mappings[i++ % 64]);
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_EvaluatePip(benchmark::State& state) {
  BM_EvaluateMapping(state, "pip");
}
void BM_EvaluateMpeg4(benchmark::State& state) {
  BM_EvaluateMapping(state, "mpeg4");
}
void BM_EvaluateVopd(benchmark::State& state) {
  BM_EvaluateMapping(state, "vopd");
}
void BM_EvaluateDvopd(benchmark::State& state) {
  BM_EvaluateMapping(state, "dvopd");
}
BENCHMARK(BM_EvaluatePip);
BENCHMARK(BM_EvaluateMpeg4);
BENCHMARK(BM_EvaluateVopd);
BENCHMARK(BM_EvaluateDvopd);

void BM_RouterModelBuild(benchmark::State& state) {
  const auto netlist = make_router_netlist("crux");
  for (auto _ : state) {
    const RouterModel model(netlist, PhysicalParameters::paper_defaults());
    benchmark::DoNotOptimize(model.connection_count());
  }
}
BENCHMARK(BM_RouterModelBuild);

void BM_NetworkModelBuild(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto net = make_network(TopologyKind::Mesh, side, "crux");
    benchmark::DoNotOptimize(net->tile_count());
  }
}
BENCHMARK(BM_NetworkModelBuild)->Arg(4)->Arg(6)->Arg(8);

void BM_PathLookup(benchmark::State& state) {
  const auto net = make_network(TopologyKind::Mesh, 6, "crux");
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<TileId>(rng.next_below(36));
    auto d = static_cast<TileId>(rng.next_below(36));
    if (d == s) d = (d + 1) % 36;
    benchmark::DoNotOptimize(net->path(s, d).total_gain);
  }
}
BENCHMARK(BM_PathLookup);

void BM_NoiseContribution(benchmark::State& state) {
  const auto net = make_network(TopologyKind::Mesh, 6, "crux");
  const auto& a = net->path(0, 35);
  const auto& b = net->path(30, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(noise_contribution(*net, a, b));
}
BENCHMARK(BM_NoiseContribution);

// --- batched (SoA) vs scalar bulk evaluation --------------------------------

/// A smaller CG on a 4x4 mesh for the CG-size axis of the batched
/// section (the large problem above is the 8x8-torus reference).
MappingProblem make_small_problem() {
  auto cg = random_cg({.tasks = 12,
                       .avg_out_degree = 2.0,
                       .min_bandwidth = 8,
                       .max_bandwidth = 256,
                       .seed = 5,
                       .acyclic = false});
  return MappingProblem(std::move(cg),
                        make_network(TopologyKind::Mesh, 4, "crux"),
                        make_objective(OptimizationGoal::Snr));
}

void BM_BatchedEvaluate(benchmark::State& state) {
  const auto problem = make_large_problem();
  const Evaluator evaluator(problem);
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<Mapping> mappings;
  for (std::size_t i = 0; i < batch; ++i)
    mappings.push_back(
        Mapping::random(problem.task_count(), problem.tile_count(), rng));
  std::vector<BatchPoint> points(batch);
  for (auto _ : state) {
    evaluator.evaluate_raw_batch(mappings, points);
    benchmark::DoNotOptimize(points.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_BatchedEvaluate)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

struct BatchedHeadline {
  std::size_t edges = 0;
  double scalar_mps = 0.0;  ///< scalar loop, mappings/sec
  double batched_mps[4] = {0.0, 0.0, 0.0, 0.0};  ///< B = 1, 8, 64, 512
};

constexpr std::size_t kBatchSizes[4] = {1, 8, 64, 512};

/// Assert batched/scalar agreement (bitwise) on `problem`, then time
/// the scalar per-mapping loop against the batched kernel at each
/// batch size, single-threaded. Returns the headline numbers.
BatchedHeadline report_batched_for(const char* label,
                                   const MappingProblem& problem) {
  BatchedHeadline head;
  head.edges = problem.cg().communication_count();
  const Evaluator evaluator(problem);
  std::fprintf(stderr, "# batched vs scalar, %s: %zu tasks, %zu edges\n",
               label, problem.task_count(), head.edges);

  // Agreement: one odd-sized batch, every mapping checked bitwise
  // against evaluate_mapping.
  {
    Rng rng(23);
    const std::size_t n = 101;
    std::vector<Mapping> mappings;
    for (std::size_t i = 0; i < n; ++i)
      mappings.push_back(
          Mapping::random(problem.task_count(), problem.tile_count(), rng));
    std::vector<BatchPoint> points(n);
    evaluator.evaluate_raw_batch(mappings, points);
    for (std::size_t i = 0; i < n; ++i) {
      const auto full = evaluate_mapping(problem.network(), problem.cg(),
                                         mappings[i].assignment());
      if (full.worst_loss_db != points[i].worst_loss_db ||
          full.worst_snr_db != points[i].worst_snr_db) {
        std::fprintf(stderr,
                     "FATAL: batched and scalar evaluation disagree on %s "
                     "at mapping %zu\n",
                     label, i);
        std::exit(1);
      }
    }
    std::fprintf(stderr,
                 "# agreement: %zu random mappings, batched == scalar "
                 "bitwise\n",
                 n);
  }

  // Throughput: the same total mapping count through each path.
  const std::size_t total = head.edges >= 100 ? 2048 : 8192;
  Rng rng(31);
  std::vector<Mapping> mappings;
  mappings.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    mappings.push_back(
        Mapping::random(problem.task_count(), problem.tile_count(), rng));

  Timer scalar_timer;
  for (const auto& mapping : mappings) {
    const auto result = evaluator.evaluate_raw(mapping);
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  head.scalar_mps = total / scalar_timer.elapsed_seconds();
  std::fprintf(stderr, "# scalar loop:   %12.0f mappings/sec\n",
               head.scalar_mps);

  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t batch = kBatchSizes[s];
    std::vector<BatchPoint> points(batch);
    Timer timer;
    for (std::size_t start = 0; start < total; start += batch) {
      const std::size_t n = std::min(batch, total - start);
      evaluator.evaluate_raw_batch(
          std::span<const Mapping>(mappings.data() + start, n),
          std::span<BatchPoint>(points.data(), n));
      benchmark::DoNotOptimize(points.data());
    }
    head.batched_mps[s] = total / timer.elapsed_seconds();
    std::fprintf(stderr,
                 "# batched B=%-3zu: %12.0f mappings/sec  (%.1fx)\n", batch,
                 head.batched_mps[s], head.batched_mps[s] / head.scalar_mps);
  }
  std::fprintf(stderr, "\n");
  return head;
}

void report_batched_vs_scalar(const std::optional<std::string>& json_path) {
  const auto small = make_small_problem();
  report_batched_for("small CG on 4x4 mesh", small);
  const auto large = make_large_problem();
  const auto head = report_batched_for("reference CG on 8x8 torus", large);

  const double speedup_64 = head.batched_mps[2] / head.scalar_mps;
  const double speedup_512 = head.batched_mps[3] / head.scalar_mps;
  std::fprintf(stderr, "# reference-CG speedup: B=64 %.1fx, B=512 %.1fx (%s "
               "the >=2x acceptance bar)\n\n",
               speedup_64, speedup_512,
               std::min(speedup_64, speedup_512) >= 2.0 ? "PASS" : "below");

  if (!json_path) return;
  std::ofstream out(*json_path);
  if (!out) {
    std::cerr << "error: cannot open " << *json_path << " for writing\n";
    std::exit(1);
  }
  out << "{\n"
      << "  \"benchmark\": \"batch_eval\",\n"
      << "  \"reference_edges\": " << head.edges << ",\n"
      << "  \"scalar_mappings_per_sec\": " << format_fixed(head.scalar_mps, 0)
      << ",\n";
  for (std::size_t s = 0; s < 4; ++s)
    out << "  \"batched_b" << kBatchSizes[s]
        << "_mappings_per_sec\": " << format_fixed(head.batched_mps[s], 0)
        << ",\n";
  out << "  \"speedup_b64\": " << format_fixed(speedup_64, 2) << ",\n"
      << "  \"speedup_b512\": " << format_fixed(speedup_512, 2) << "\n"
      << "}\n";
  std::cout << "# snapshot written to " << *json_path << '\n';
}

// --- full vs delta evaluation per optimizer step ----------------------------

void BM_FullEvalPerSwap(benchmark::State& state) {
  const auto problem = make_large_problem();
  Rng rng(3);
  Mapping current =
      Mapping::random(problem.task_count(), problem.tile_count(), rng);
  for (auto _ : state) {
    const auto a = static_cast<TileId>(rng.next_below(problem.tile_count()));
    const auto b = static_cast<TileId>(rng.next_below(problem.tile_count()));
    current.swap_tiles(a, b);
    const auto result = evaluate_mapping(problem.network(), problem.cg(),
                                         current.assignment());
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullEvalPerSwap)->Unit(benchmark::kMicrosecond);

void BM_DeltaEvalPerSwap(benchmark::State& state) {
  const auto problem = make_large_problem();
  Rng rng(3);
  const Mapping start =
      Mapping::random(problem.task_count(), problem.tile_count(), rng);
  IncrementalEvaluation kernel(problem.network(), problem.cg());
  kernel.reset(start.assignment());
  for (auto _ : state) {
    const auto a = static_cast<TileId>(rng.next_below(problem.tile_count()));
    const auto b = static_cast<TileId>(rng.next_below(problem.tile_count()));
    kernel.propose_swap(a, b);
    kernel.commit();
    benchmark::DoNotOptimize(kernel.view().worst_snr_db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DeltaEvalPerSwap)->Unit(benchmark::kMicrosecond);

/// Assert full/delta agreement (bitwise) over a random committed swap
/// walk, then report ns/step and the measured speedup. Writes to stderr
/// so machine-readable benchmark output (--benchmark_format=json) on
/// stdout stays parseable.
void report_full_vs_delta() {
  const auto problem = make_large_problem();
  const auto tiles = problem.tile_count();
  std::fprintf(stderr,
               "# full vs delta evaluation, dense CG on 8x8 torus: %zu "
               "tasks, %zu edges\n",
               problem.task_count(), problem.cg().communication_count());

  Rng rng(11);
  Mapping current = Mapping::random(problem.task_count(), tiles, rng);
  IncrementalEvaluation kernel(problem.network(), problem.cg());
  kernel.reset(current.assignment());
  for (int step = 0; step < 200; ++step) {
    const auto a = static_cast<TileId>(rng.next_below(tiles));
    const auto b = static_cast<TileId>(rng.next_below(tiles));
    current.swap_tiles(a, b);
    kernel.propose_swap(a, b);
    kernel.commit();
    const auto full =
        evaluate_mapping(problem.network(), problem.cg(),
                         current.assignment());
    const auto delta = kernel.result(false);
    if (full.worst_loss_db != delta.worst_loss_db ||
        full.worst_snr_db != delta.worst_snr_db) {
      std::fprintf(stderr,
                   "FATAL: full and delta evaluation disagree at step %d\n",
                   step);
      std::exit(1);
    }
  }
  std::fprintf(stderr,
               "# agreement: 200 random swaps, full == delta bitwise\n");

  // Time both paths over the SAME swap sequence (identical RNG stream
  // from identical start state) so the speedup compares like for like.
  const int moves = 400;
  Rng delta_rng = rng;
  const Mapping timing_start = current;
  Timer full_timer;
  for (int step = 0; step < moves; ++step) {
    const auto a = static_cast<TileId>(rng.next_below(tiles));
    const auto b = static_cast<TileId>(rng.next_below(tiles));
    current.swap_tiles(a, b);
    const auto result = evaluate_mapping(problem.network(), problem.cg(),
                                         current.assignment());
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  const double full_ns = full_timer.elapsed_seconds() * 1e9 / moves;
  kernel.reset(timing_start.assignment());
  Timer delta_timer;
  for (int step = 0; step < moves; ++step) {
    const auto a = static_cast<TileId>(delta_rng.next_below(tiles));
    const auto b = static_cast<TileId>(delta_rng.next_below(tiles));
    kernel.propose_swap(a, b);
    kernel.commit();
    benchmark::DoNotOptimize(kernel.view().worst_snr_db);
  }
  const double delta_ns = delta_timer.elapsed_seconds() * 1e9 / moves;
  std::fprintf(stderr,
               "# full:  %12.0f ns/step\n# delta: %12.0f ns/step\n"
               "# speedup: %.1fx\n\n",
               full_ns, delta_ns, full_ns / delta_ns);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json=FILE (ours) before google-benchmark sees the argv.
  std::optional<std::string> json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = std::string(argv[i] + 7);
    else
      argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  report_full_vs_delta();
  report_batched_vs_scalar(json_path);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
