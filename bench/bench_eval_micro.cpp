/// \file bench_eval_micro.cpp
/// \brief P1 — google-benchmark microbenchmarks of the hot paths: the
/// mapping evaluator (which the DSE calls tens of thousands of times),
/// full vs delta (incremental) per-swap evaluation, router-model
/// derivation, and network-model construction.
///
/// Before the benchmarks run, main() verifies that the full and the
/// incremental evaluation paths agree bitwise over a random swap
/// sequence on the large workload, then reports ns/step and the
/// full/delta speedup measured with a plain timer.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "model/evaluation.hpp"
#include "model/incremental.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace phonoc;

/// The large delta-vs-full workload: a dense random CG filling an
/// 8x8 torus (64 tasks, ~190 edges — well past the >=64-edge bar).
MappingProblem make_large_problem() {
  auto cg = random_cg({.tasks = 64,
                       .avg_out_degree = 3.0,
                       .min_bandwidth = 8,
                       .max_bandwidth = 256,
                       .seed = 7,
                       .acyclic = false});
  return MappingProblem(std::move(cg),
                        make_network(TopologyKind::Torus, 8, "crux"),
                        make_objective(OptimizationGoal::Snr));
}

void BM_EvaluateMapping(benchmark::State& state,
                        const std::string& benchmark_name) {
  ExperimentSpec spec;
  spec.benchmark = benchmark_name;
  const auto problem = make_experiment(spec);
  const Evaluator evaluator(problem);
  Rng rng(7);
  std::vector<Mapping> mappings;
  for (int i = 0; i < 64; ++i)
    mappings.push_back(
        Mapping::random(problem.task_count(), problem.tile_count(), rng));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result = evaluator.evaluate_raw(mappings[i++ % 64]);
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_EvaluatePip(benchmark::State& state) {
  BM_EvaluateMapping(state, "pip");
}
void BM_EvaluateMpeg4(benchmark::State& state) {
  BM_EvaluateMapping(state, "mpeg4");
}
void BM_EvaluateVopd(benchmark::State& state) {
  BM_EvaluateMapping(state, "vopd");
}
void BM_EvaluateDvopd(benchmark::State& state) {
  BM_EvaluateMapping(state, "dvopd");
}
BENCHMARK(BM_EvaluatePip);
BENCHMARK(BM_EvaluateMpeg4);
BENCHMARK(BM_EvaluateVopd);
BENCHMARK(BM_EvaluateDvopd);

void BM_RouterModelBuild(benchmark::State& state) {
  const auto netlist = make_router_netlist("crux");
  for (auto _ : state) {
    const RouterModel model(netlist, PhysicalParameters::paper_defaults());
    benchmark::DoNotOptimize(model.connection_count());
  }
}
BENCHMARK(BM_RouterModelBuild);

void BM_NetworkModelBuild(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto net = make_network(TopologyKind::Mesh, side, "crux");
    benchmark::DoNotOptimize(net->tile_count());
  }
}
BENCHMARK(BM_NetworkModelBuild)->Arg(4)->Arg(6)->Arg(8);

void BM_PathLookup(benchmark::State& state) {
  const auto net = make_network(TopologyKind::Mesh, 6, "crux");
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<TileId>(rng.next_below(36));
    auto d = static_cast<TileId>(rng.next_below(36));
    if (d == s) d = (d + 1) % 36;
    benchmark::DoNotOptimize(net->path(s, d).total_gain);
  }
}
BENCHMARK(BM_PathLookup);

void BM_NoiseContribution(benchmark::State& state) {
  const auto net = make_network(TopologyKind::Mesh, 6, "crux");
  const auto& a = net->path(0, 35);
  const auto& b = net->path(30, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(noise_contribution(*net, a, b));
}
BENCHMARK(BM_NoiseContribution);

// --- full vs delta evaluation per optimizer step ----------------------------

void BM_FullEvalPerSwap(benchmark::State& state) {
  const auto problem = make_large_problem();
  Rng rng(3);
  Mapping current =
      Mapping::random(problem.task_count(), problem.tile_count(), rng);
  for (auto _ : state) {
    const auto a = static_cast<TileId>(rng.next_below(problem.tile_count()));
    const auto b = static_cast<TileId>(rng.next_below(problem.tile_count()));
    current.swap_tiles(a, b);
    const auto result = evaluate_mapping(problem.network(), problem.cg(),
                                         current.assignment());
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullEvalPerSwap)->Unit(benchmark::kMicrosecond);

void BM_DeltaEvalPerSwap(benchmark::State& state) {
  const auto problem = make_large_problem();
  Rng rng(3);
  const Mapping start =
      Mapping::random(problem.task_count(), problem.tile_count(), rng);
  IncrementalEvaluation kernel(problem.network(), problem.cg());
  kernel.reset(start.assignment());
  for (auto _ : state) {
    const auto a = static_cast<TileId>(rng.next_below(problem.tile_count()));
    const auto b = static_cast<TileId>(rng.next_below(problem.tile_count()));
    kernel.propose_swap(a, b);
    kernel.commit();
    benchmark::DoNotOptimize(kernel.view().worst_snr_db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DeltaEvalPerSwap)->Unit(benchmark::kMicrosecond);

/// Assert full/delta agreement (bitwise) over a random committed swap
/// walk, then report ns/step and the measured speedup. Writes to stderr
/// so machine-readable benchmark output (--benchmark_format=json) on
/// stdout stays parseable.
void report_full_vs_delta() {
  const auto problem = make_large_problem();
  const auto tiles = problem.tile_count();
  std::fprintf(stderr,
               "# full vs delta evaluation, dense CG on 8x8 torus: %zu "
               "tasks, %zu edges\n",
               problem.task_count(), problem.cg().communication_count());

  Rng rng(11);
  Mapping current = Mapping::random(problem.task_count(), tiles, rng);
  IncrementalEvaluation kernel(problem.network(), problem.cg());
  kernel.reset(current.assignment());
  for (int step = 0; step < 200; ++step) {
    const auto a = static_cast<TileId>(rng.next_below(tiles));
    const auto b = static_cast<TileId>(rng.next_below(tiles));
    current.swap_tiles(a, b);
    kernel.propose_swap(a, b);
    kernel.commit();
    const auto full =
        evaluate_mapping(problem.network(), problem.cg(),
                         current.assignment());
    const auto delta = kernel.result(false);
    if (full.worst_loss_db != delta.worst_loss_db ||
        full.worst_snr_db != delta.worst_snr_db) {
      std::fprintf(stderr,
                   "FATAL: full and delta evaluation disagree at step %d\n",
                   step);
      std::exit(1);
    }
  }
  std::fprintf(stderr,
               "# agreement: 200 random swaps, full == delta bitwise\n");

  // Time both paths over the SAME swap sequence (identical RNG stream
  // from identical start state) so the speedup compares like for like.
  const int moves = 400;
  Rng delta_rng = rng;
  const Mapping timing_start = current;
  Timer full_timer;
  for (int step = 0; step < moves; ++step) {
    const auto a = static_cast<TileId>(rng.next_below(tiles));
    const auto b = static_cast<TileId>(rng.next_below(tiles));
    current.swap_tiles(a, b);
    const auto result = evaluate_mapping(problem.network(), problem.cg(),
                                         current.assignment());
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  const double full_ns = full_timer.elapsed_seconds() * 1e9 / moves;
  kernel.reset(timing_start.assignment());
  Timer delta_timer;
  for (int step = 0; step < moves; ++step) {
    const auto a = static_cast<TileId>(delta_rng.next_below(tiles));
    const auto b = static_cast<TileId>(delta_rng.next_below(tiles));
    kernel.propose_swap(a, b);
    kernel.commit();
    benchmark::DoNotOptimize(kernel.view().worst_snr_db);
  }
  const double delta_ns = delta_timer.elapsed_seconds() * 1e9 / moves;
  std::fprintf(stderr,
               "# full:  %12.0f ns/step\n# delta: %12.0f ns/step\n"
               "# speedup: %.1fx\n\n",
               full_ns, delta_ns, full_ns / delta_ns);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  report_full_vs_delta();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
