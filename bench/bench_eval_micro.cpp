/// \file bench_eval_micro.cpp
/// \brief P1 — google-benchmark microbenchmarks of the hot paths: the
/// mapping evaluator (which the DSE calls tens of thousands of times),
/// router-model derivation, and network-model construction.

#include <benchmark/benchmark.h>

#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "model/evaluation.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "util/rng.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace phonoc;

void BM_EvaluateMapping(benchmark::State& state,
                        const std::string& benchmark_name) {
  ExperimentSpec spec;
  spec.benchmark = benchmark_name;
  const auto problem = make_experiment(spec);
  const Evaluator evaluator(problem);
  Rng rng(7);
  std::vector<Mapping> mappings;
  for (int i = 0; i < 64; ++i)
    mappings.push_back(
        Mapping::random(problem.task_count(), problem.tile_count(), rng));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result = evaluator.evaluate_raw(mappings[i++ % 64]);
    benchmark::DoNotOptimize(result.worst_snr_db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_EvaluatePip(benchmark::State& state) {
  BM_EvaluateMapping(state, "pip");
}
void BM_EvaluateMpeg4(benchmark::State& state) {
  BM_EvaluateMapping(state, "mpeg4");
}
void BM_EvaluateVopd(benchmark::State& state) {
  BM_EvaluateMapping(state, "vopd");
}
void BM_EvaluateDvopd(benchmark::State& state) {
  BM_EvaluateMapping(state, "dvopd");
}
BENCHMARK(BM_EvaluatePip);
BENCHMARK(BM_EvaluateMpeg4);
BENCHMARK(BM_EvaluateVopd);
BENCHMARK(BM_EvaluateDvopd);

void BM_RouterModelBuild(benchmark::State& state) {
  const auto netlist = make_router_netlist("crux");
  for (auto _ : state) {
    const RouterModel model(netlist, PhysicalParameters::paper_defaults());
    benchmark::DoNotOptimize(model.connection_count());
  }
}
BENCHMARK(BM_RouterModelBuild);

void BM_NetworkModelBuild(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto net = make_network(TopologyKind::Mesh, side, "crux");
    benchmark::DoNotOptimize(net->tile_count());
  }
}
BENCHMARK(BM_NetworkModelBuild)->Arg(4)->Arg(6)->Arg(8);

void BM_PathLookup(benchmark::State& state) {
  const auto net = make_network(TopologyKind::Mesh, 6, "crux");
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<TileId>(rng.next_below(36));
    auto d = static_cast<TileId>(rng.next_below(36));
    if (d == s) d = (d + 1) % 36;
    benchmark::DoNotOptimize(net->path(s, d).total_gain);
  }
}
BENCHMARK(BM_PathLookup);

void BM_NoiseContribution(benchmark::State& state) {
  const auto net = make_network(TopologyKind::Mesh, 6, "crux");
  const auto& a = net->path(0, 35);
  const auto& b = net->path(30, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(noise_contribution(*net, a, b));
}
BENCHMARK(BM_NoiseContribution);

}  // namespace

BENCHMARK_MAIN();
