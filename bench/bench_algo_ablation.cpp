/// \file bench_algo_ablation.cpp
/// \brief Ablation A3 — optimizer design choices.
///
/// Three sweeps on a fixed problem (VOPD, 4x4 mesh, SNR objective,
/// equal budgets):
///   1. GA hyper-parameters: population size, crossover operator,
///      mutation rate.
///   2. R-PBLA restart policy: with/without the empty-pair pruning.
///   3. The extension strategies (SA, tabu, greedy) against the paper's
///      trio, showing where the paper's R-PBLA sits in a wider field.

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "mapping/genetic.hpp"
#include "mapping/rpbla.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_ABLATION_EVALS", full_scale_requested() ? 30000 : 5000)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto app = cli.get_or("benchmark", "vopd");
  Timer timer;

  ExperimentSpec spec;
  spec.benchmark = app;
  spec.goal = OptimizationGoal::Snr;
  const auto problem = make_experiment(spec);
  const Engine engine(problem);

  std::cout << "# A3: optimizer ablations on " << app << " (mesh, SNR, "
            << budget.max_evaluations << " evaluations each)\n\n";

  std::cout << "## GA hyper-parameters\n";
  TableWriter ga_table({"population", "crossover", "mutation", "SNR dB",
                        "generations"});
  for (const std::size_t population : {16u, 64u, 128u}) {
    for (const auto crossover : {GeneticOptions::Crossover::Pmx,
                                 GeneticOptions::Crossover::Ox}) {
      GeneticOptions options;
      options.population = population;
      options.crossover = crossover;
      const GeneticAlgorithm ga(options);
      const auto run = engine.run(ga, budget, seed);
      ga_table.add_row(
          {std::to_string(population),
           crossover == GeneticOptions::Crossover::Pmx ? "PMX" : "OX",
           format_fixed(options.mutation_rate, 2),
           format_fixed(run.best_evaluation.worst_snr_db, 2),
           std::to_string(run.search.iterations)});
    }
  }
  for (const double mutation : {0.05, 0.6}) {
    GeneticOptions options;
    options.mutation_rate = mutation;
    const GeneticAlgorithm ga(options);
    const auto run = engine.run(ga, budget, seed);
    ga_table.add_row({std::to_string(options.population), "PMX",
                      format_fixed(mutation, 2),
                      format_fixed(run.best_evaluation.worst_snr_db, 2),
                      std::to_string(run.search.iterations)});
  }
  std::cout << ga_table.to_ascii() << '\n';

  std::cout << "## R-PBLA move-list pruning\n";
  TableWriter pbla_table({"skip empty pairs", "SNR dB", "restarts"});
  for (const bool skip : {true, false}) {
    RpblaOptions options;
    options.skip_empty_pairs = skip;
    const Rpbla rpbla(options);
    const auto run = engine.run(rpbla, budget, seed);
    pbla_table.add_row({skip ? "yes" : "no",
                        format_fixed(run.best_evaluation.worst_snr_db, 2),
                        std::to_string(run.search.iterations)});
  }
  std::cout << pbla_table.to_ascii() << '\n';

  std::cout << "## Strategy field (equal budgets)\n";
  TableWriter field({"strategy", "SNR dB", "loss dB of that mapping",
                     "improvements"});
  for (const auto* name : {"rs", "ga", "rpbla", "sa", "tabu", "greedy"}) {
    const auto run = engine.run(name, budget, seed);
    field.add_row({name, format_fixed(run.best_evaluation.worst_snr_db, 2),
                   format_fixed(run.best_evaluation.worst_loss_db, 2),
                   std::to_string(run.search.trace.size())});
  }
  std::cout << field.to_ascii();
  std::cout << "\n# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s\n";
  return 0;
}
