#!/usr/bin/env sh
# Regenerate the in-repo perf-trajectory snapshots (ROADMAP: commit
# BENCH_*.json so perf changes are visible in review):
#
#   bench/BENCH_eval_micro.json     google-benchmark JSON of the hot-path
#                                   microbenchmarks (evaluator, delta
#                                   evaluation, batched SoA kernel,
#                                   router/network models)
#   bench/BENCH_batch_eval.json     headline numbers of the batched-vs-
#                                   scalar section (mappings/sec per
#                                   batch size + speedups)
#   bench/BENCH_parallel_sweep.json headline numbers of the batch
#                                   speedup + bit-identity bench
#   bench/BENCH_trace_overhead.json flight-recorder overhead on the
#                                   reference-CG evaluation hot path
#                                   (tracing disabled must be <1%)
#   bench/BENCH_service_throughput.json  interactive latency under a
#                                   mixed service workload: FIFO
#                                   baseline vs the weighted-fair
#                                   broker at concurrency 1/2/4
#                                   (interactive p99 must improve >=2x)
#
# Usage: bench/update_snapshots.sh [build-dir]   (default: ./build)
#
# Numbers are machine-dependent; snapshots track the trajectory on the
# reference machine, they are not asserted by CI.
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

if [ ! -x "$build/bench_eval_micro" ] || [ ! -x "$build/bench_parallel_sweep" ]; then
  echo "error: bench binaries not found under '$build'" >&2
  echo "build them first: cmake -B $build -S . && cmake --build $build -j" >&2
  exit 1
fi

"$build/bench_eval_micro" \
  --json=bench/BENCH_batch_eval.json \
  --benchmark_out=bench/BENCH_eval_micro.json \
  --benchmark_out_format=json

# A budget small enough to finish in seconds but large enough that the
# pool actually spreads load (the full 128-cell Table II-style grid at
# 800 evaluations per cell). --workerd-threads sweeps the worker-side
# exec-pool width through the remote scheduler — the serve_connection
# internal-pool scaling axis, bit-identity re-checked at every width.
PHONOC_SWEEP_EVALS=800 "$build/bench_parallel_sweep" \
  --workerd-threads=1,2,4 \
  --json=bench/BENCH_parallel_sweep.json >/dev/null

"$build/bench_trace_overhead" --json=bench/BENCH_trace_overhead.json

# Mixed service workload (a few heavy sweeps + an interactive burst
# from several clients) through a paused broker, one pass per
# scheduling policy. The FIFO pass is the pre-pool baseline; the drr
# passes sweep the broker worker pool through 1/2/4.
"$build/bench_service_throughput" \
  --concurrency=1,2,4 \
  --json=bench/BENCH_service_throughput.json

echo "snapshots updated:"
ls -l bench/BENCH_eval_micro.json bench/BENCH_batch_eval.json \
  bench/BENCH_parallel_sweep.json bench/BENCH_trace_overhead.json \
  bench/BENCH_service_throughput.json
