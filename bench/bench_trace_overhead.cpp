/// \file bench_trace_overhead.cpp
/// \brief The flight recorder's overhead contract, measured on the
/// hot path that matters: mapping evaluation on the 175-edge reference
/// CG (the same 64-task seed-7 random CG on an 8x8 torus the other
/// snapshots use).
///
/// Three timed loops over the same random mapping stream:
///   plain     — evaluate_raw alone (what an uninstrumented build runs)
///   disabled  — evaluate_raw behind a TraceSpan + trace_instant with
///               tracing off (what every instrumented seam costs in the
///               default configuration: one relaxed load and a branch)
///   enabled   — the same with the recorder armed (what --trace costs)
///
/// The acceptance bar is disabled-vs-plain overhead < 1%: tracing that
/// nobody turned on must be free. Each loop is repeated and the best
/// (least noisy) time kept. --json=FILE dumps the headline numbers
/// (bench/BENCH_trace_overhead.json; regenerate with
/// bench/update_snapshots.sh).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "model/evaluation.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace phonoc;

void do_not_optimize(double value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// The 175-edge reference problem (identical to bench_eval_micro's
/// make_large_problem, so the numbers line up across snapshots).
MappingProblem make_reference_problem() {
  auto cg = random_cg({.tasks = 64,
                       .avg_out_degree = 3.0,
                       .min_bandwidth = 8,
                       .max_bandwidth = 256,
                       .seed = 7,
                       .acyclic = false});
  return MappingProblem(std::move(cg),
                        make_network(TopologyKind::Torus, 8, "crux"),
                        make_objective(OptimizationGoal::Snr));
}

enum class Mode { Plain, Instrumented };

double best_seconds(const Evaluator& evaluator,
                    const std::vector<Mapping>& mappings, Mode mode,
                    std::size_t repeats) {
  double best = 1e300;
  for (std::size_t r = 0; r < repeats; ++r) {
    Timer timer;
    if (mode == Mode::Plain) {
      for (const auto& mapping : mappings) {
        const auto result = evaluator.evaluate_raw(mapping);
        do_not_optimize(result.worst_snr_db);
      }
    } else {
      for (const auto& mapping : mappings) {
        obs::TraceSpan span("bench", "evaluate");
        obs::trace_instant("bench", "tick");
        const auto result = evaluator.evaluate_raw(mapping);
        span.arg({"snr", result.worst_snr_db});
        do_not_optimize(result.worst_snr_db);
      }
    }
    best = std::min(best, timer.elapsed_seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;

  const auto problem = make_reference_problem();
  const Evaluator evaluator(problem);
  std::fprintf(stderr, "# reference CG: %zu tasks, %zu edges on 8x8 torus\n",
               problem.task_count(), problem.cg().edges().size());

  constexpr std::size_t kMappings = 4096;
  constexpr std::size_t kRepeats = 7;
  Rng rng(31);
  std::vector<Mapping> mappings;
  mappings.reserve(kMappings);
  for (std::size_t i = 0; i < kMappings; ++i)
    mappings.push_back(
        Mapping::random(problem.task_count(), problem.tile_count(), rng));

  // Warm the caches once through each path before timing anything.
  obs::stop_tracing();
  (void)best_seconds(evaluator, mappings, Mode::Plain, 1);

  const double plain =
      best_seconds(evaluator, mappings, Mode::Plain, kRepeats);
  const double disabled =
      best_seconds(evaluator, mappings, Mode::Instrumented, kRepeats);
  // A big enough ring that the enabled loop never pays drop bookkeeping.
  obs::set_trace_buffer_capacity(2 * kMappings * kRepeats + 1024);
  obs::start_tracing();
  const double enabled =
      best_seconds(evaluator, mappings, Mode::Instrumented, kRepeats);
  obs::stop_tracing();

  const double disabled_overhead = (disabled - plain) / plain * 100.0;
  const double enabled_overhead = (enabled - plain) / plain * 100.0;
  std::fprintf(stderr, "# plain:             %10.0f evals/sec\n",
               kMappings / plain);
  std::fprintf(stderr,
               "# tracing disabled:  %10.0f evals/sec  (%+.2f%% vs plain)\n",
               kMappings / disabled, disabled_overhead);
  std::fprintf(stderr,
               "# tracing enabled:   %10.0f evals/sec  (%+.2f%% vs plain)\n",
               kMappings / enabled, enabled_overhead);
  std::fprintf(stderr, "# disabled-tracing overhead %s the <1%% bar\n",
               disabled_overhead < 1.0 ? "PASSES" : "EXCEEDS");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot open " << json_path << " for writing\n";
      return 1;
    }
    out << "{\n"
        << "  \"benchmark\": \"trace_overhead\",\n"
        << "  \"reference_edges\": " << problem.cg().edges().size() << ",\n"
        << "  \"plain_evals_per_sec\": " << format_fixed(kMappings / plain, 0)
        << ",\n"
        << "  \"disabled_evals_per_sec\": "
        << format_fixed(kMappings / disabled, 0) << ",\n"
        << "  \"enabled_evals_per_sec\": "
        << format_fixed(kMappings / enabled, 0) << ",\n"
        << "  \"disabled_overhead_percent\": "
        << format_fixed(disabled_overhead, 2) << ",\n"
        << "  \"enabled_overhead_percent\": "
        << format_fixed(enabled_overhead, 2) << ",\n"
        << "  \"overhead_bar_percent\": 1.0\n"
        << "}\n";
    std::cout << "JSON written to " << json_path << '\n';
  }
  return disabled_overhead < 1.0 ? 0 : 2;
}
