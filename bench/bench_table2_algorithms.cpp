/// \file bench_table2_algorithms.cpp
/// \brief Experiment E3/E4 — paper Table II and the §III improvement
/// statements.
///
/// For every application, topology (mesh / torus with the Crux router)
/// and objective (worst-case SNR / worst-case loss), run the three
/// mapping strategies — random search (RS), genetic algorithm (GA) and
/// the paper's R-PBLA — under identical budgets, and print the Table II
/// grid plus the relative-improvement summary the paper quotes
/// (GA over RS, R-PBLA over GA).
///
/// The whole 96-cell grid (8 apps x 2 topologies x 2 objectives x 3
/// algorithms) is declared as one SweepSpec and executed by BatchEngine,
/// which parallelizes across cells with bit-identical results to the
/// sequential protocol (--workers=1 to verify).
///
/// Budgets are evaluation counts by default (deterministic,
/// machine-independent); pass --seconds to reproduce the paper's equal
/// wall-clock protocol instead. PHONOC_TABLE2_EVALS overrides the
/// budget; PHONOC_FULL=1 selects a 10x deeper search.

#include <iostream>
#include <map>

#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "io/table_writer.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_TABLE2_EVALS", full_scale_requested() ? 60000 : 12000)));
  if (cli.has("seconds")) {
    budget.max_evaluations = 0;
    budget.max_seconds = cli.get_double("seconds", 1.0);
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  // The paper's equal wall-clock protocol gives each run the whole
  // machine; concurrent cells would share cores and skew the comparison.
  if (budget.max_seconds > 0.0 && !cli.has("workers")) workers = 1;

  SweepSpec spec;
  spec.add_all_benchmarks()
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus)
      .add_goal(OptimizationGoal::Snr)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "ga", "rpbla"})
      .add_seed(seed);
  spec.budgets.push_back(budget);

  const BatchEngine engine({.workers = workers});
  if (budget.max_seconds > 0.0 && engine.worker_count() != 1)
    std::cout << "# WARNING: --seconds with " << engine.worker_count()
              << " workers oversubscribes cores; runs no longer get equal "
                 "compute.\n";
  std::cout << "# Table II reproduction: best worst-case SNR (dB) and best "
               "worst-case loss (dB)\n# found by RS / GA / R-PBLA under "
               "identical budgets (";
  if (budget.max_seconds > 0.0)
    std::cout << budget.max_seconds << " s wall-clock";
  else
    std::cout << budget.max_evaluations << " evaluations";
  std::cout << " per run), Crux router.\n# " << cell_count(spec)
            << " cells on " << engine.worker_count() << " worker(s).\n\n";

  Timer timer;
  const auto results = engine.run(spec);

  // Grid coordinates: goals[0] = SNR runs, goals[1] = loss runs.
  const auto metric = [&](std::size_t w, std::size_t t, std::size_t o,
                          std::size_t g) {
    const auto& best =
        results[grid_index(spec, w, t, g, o, 0, 0)].run.best_evaluation;
    return g == 0 ? best.worst_snr_db : best.worst_loss_db;
  };

  TableWriter table({"application", "topology", "RS SNR", "RS Loss",
                     "GA SNR", "GA Loss", "R-PBLA SNR", "R-PBLA Loss"});

  // value[topology][algorithm][goal] -> per-app list, for the summary.
  std::map<std::string, std::map<std::string, std::map<std::string,
           std::vector<double>>>> collected;

  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t t = 0; t < spec.topologies.size(); ++t) {
      std::map<std::string, double> snr;
      std::map<std::string, double> loss;
      for (std::size_t o = 0; o < spec.optimizers.size(); ++o) {
        const auto& algorithm = spec.optimizers[o];
        snr[algorithm] = metric(w, t, o, 0);   // SNR objective run (Eq. 4)
        loss[algorithm] = metric(w, t, o, 1);  // loss objective run (Eq. 3)
        const auto topo_name = to_string(spec.topologies[t].kind);
        collected[topo_name][algorithm]["snr"].push_back(snr[algorithm]);
        collected[topo_name][algorithm]["loss"].push_back(loss[algorithm]);
      }
      table.add_row({spec.workloads[w].name,
                     to_string(spec.topologies[t].kind),
                     format_fixed(snr["rs"], 2), format_fixed(loss["rs"], 2),
                     format_fixed(snr["ga"], 2), format_fixed(loss["ga"], 2),
                     format_fixed(snr["rpbla"], 2),
                     format_fixed(loss["rpbla"], 2)});
    }
  }
  std::cout << table.to_ascii() << '\n';

  // E4: the paper's improvement summary. SNR improvements are relative
  // dB gains; loss improvements compare magnitudes (closer to 0 wins).
  std::cout << "# Improvement summary (mean over the eight applications):\n";
  const auto mean_gain = [&](const std::string& topo, const std::string& a,
                             const std::string& b, const std::string& goal) {
    const auto& va = collected[topo][a][goal];
    const auto& vb = collected[topo][b][goal];
    RunningStats gain;
    for (std::size_t i = 0; i < va.size(); ++i) {
      if (goal == "snr")
        gain.add((va[i] - vb[i]) / std::max(1e-9, std::abs(vb[i])) * 100.0);
      else
        gain.add((std::abs(vb[i]) - std::abs(va[i])) /
                 std::max(1e-9, std::abs(vb[i])) * 100.0);
    }
    return gain.mean();
  };
  TableWriter improvements(
      {"topology", "comparison", "SNR gain %", "Loss gain %"});
  for (const auto* topo : {"mesh", "torus"}) {
    improvements.add_row({topo, "GA vs RS",
                          format_fixed(mean_gain(topo, "ga", "rs", "snr"), 1),
                          format_fixed(mean_gain(topo, "ga", "rs", "loss"),
                                       1)});
    improvements.add_row(
        {topo, "R-PBLA vs GA",
         format_fixed(mean_gain(topo, "rpbla", "ga", "snr"), 1),
         format_fixed(mean_gain(topo, "rpbla", "ga", "loss"), 1)});
  }
  std::cout << improvements.to_ascii();
  std::cout << "\n# paper reference: GA over RS up to 50-60% (SNR) / ~17% "
               "(loss); R-PBLA over GA ~2% (mesh) and ~12% (torus) for SNR, "
               "9-10% for loss.\n";
  const auto report = SweepReport::build(spec, results,
                                         timer.elapsed_seconds());
  std::cout << "# total time: " << format_fixed(report.wall_seconds, 1)
            << " s wall (" << format_fixed(report.cpu_seconds, 1)
            << " s of per-cell work on " << engine.worker_count()
            << " workers)\n";
  return 0;
}
