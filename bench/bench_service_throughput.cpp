/// \file bench_service_throughput.cpp
/// \brief Service scheduling bench: interactive latency under a mixed
/// workload, FIFO baseline vs the weighted-fair broker at request
/// concurrency {1,2,4}.
///
/// The workload models a shared daemon: a few heavy bulk sweeps queued
/// first, then a burst of one-cell interactive requests from several
/// clients. Every pass queues the identical workload into a paused
/// RequestBroker, resumes it, and measures each request's
/// resume -> done latency, so passes differ only in scheduling policy:
///
///  * `fifo`  — the pre-pool behavior, emulated exactly: concurrency 1,
///    interactive threshold 0 (everything rides the bulk lane), one
///    shared client identity (DRR over one sub-queue is FIFO).
///    Interactive requests head-of-line-block behind every bulk sweep.
///  * `drr`   — lanes + per-client DRR at each requested concurrency.
///
/// The acceptance bar for the subsystem is interactive p99 at
/// concurrency 4 at least 2x better than the FIFO baseline. The lane
/// win does not need extra CPUs — interactive picks overtake *queued*
/// bulk work — so the bar holds even on a 1-CPU container; extra
/// workers then shorten the bulk tail. (On shared CI hardware the
/// absolute numbers are noisy; the snapshot tracks the reference
/// machine.)
///
/// --bulk-requests=N --bulk-seeds=N --bulk-evals=N  heavy sweep shape
/// --interactive-requests=N --interactive-evals=N   burst shape
/// --clients=N            interactive clients the burst is spread over
/// --concurrency=A,B,...  drr passes to run (default 1,2,4)
/// --json=FILE            snapshot for the in-repo perf trajectory
///                        (bench/BENCH_service_throughput.json;
///                        regenerate with bench/update_snapshots.sh)

#include <algorithm>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/broker.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace phonoc;

struct PassResult {
  std::string mode;  ///< "fifo" or "drr"
  std::size_t concurrency = 1;
  double interactive_p50 = 0.0;
  double interactive_p99 = 0.0;
  double bulk_p99 = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t overtakes = 0;
};

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

SweepSpec make_spec(std::uint64_t evals, std::size_t seeds) {
  SweepSpec spec;
  spec.add_benchmark("pip")
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizer("rs")
      .add_budget(evals)
      .add_seed_range(1, seeds);
  return spec;
}

/// Queue the mixed workload into a paused broker, resume, and collect
/// resume -> done latencies per class.
PassResult run_pass(const std::string& mode, std::size_t concurrency,
                    std::size_t interactive_threshold, bool fan_out_clients,
                    std::size_t bulk_requests, const SweepSpec& bulk_spec,
                    std::size_t interactive_requests,
                    const SweepSpec& interactive_spec, std::size_t clients) {
  BrokerOptions options;
  options.batch.workers = 1;  // serial cells: the broker pool is the axis
  options.request_concurrency = concurrency;
  options.interactive_cell_threshold = interactive_threshold;
  options.max_queue_depth = 4096;
  options.max_outstanding_cells = 0;
  options.start_paused = true;
  RequestBroker broker(options);

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::vector<double> interactive_latency;
  std::vector<double> bulk_latency;
  Timer clock;  // restarted right before resume()
  const auto submit = [&](const std::string& id, const SweepSpec& spec,
                          const std::string& client, bool interactive) {
    ServiceRequest request;
    request.id = id;
    request.spec = spec;
    JobEvents events;
    events.on_done = [&, interactive](std::size_t, std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      (interactive ? interactive_latency : bulk_latency)
          .push_back(clock.elapsed_seconds());
      ++done;
      done_cv.notify_all();
    };
    events.on_reject = [&](RejectKind, const std::string& reason) {
      std::cerr << "bench_service_throughput: unexpected rejection: "
                << reason << "\n";
      const std::lock_guard<std::mutex> lock(mutex);
      ++done;
      done_cv.notify_all();
    };
    const auto outcome = broker.submit(request, events, client);
    if (!outcome.accepted)
      throw std::runtime_error("submission shed: " + outcome.reason);
  };

  // Bulk sweeps first — the queue state an interactive burst meets.
  for (std::size_t i = 0; i < bulk_requests; ++i)
    submit("bulk-" + std::to_string(i), bulk_spec,
           fan_out_clients ? "heavy" : "only", false);
  for (std::size_t i = 0; i < interactive_requests; ++i)
    submit("inter-" + std::to_string(i), interactive_spec,
           fan_out_clients ? "c" + std::to_string(i % clients) : "only",
           true);

  clock.restart();
  broker.resume();
  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] {
      return done == bulk_requests + interactive_requests;
    });
  }

  PassResult result;
  result.mode = mode;
  result.concurrency = broker.worker_count();
  result.wall_seconds = clock.elapsed_seconds();
  result.interactive_p50 = quantile(interactive_latency, 0.5);
  result.interactive_p99 = quantile(interactive_latency, 0.99);
  result.bulk_p99 = quantile(bulk_latency, 0.99);
  result.overtakes = broker.metrics().interactive_overtakes;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  const auto bulk_requests =
      static_cast<std::size_t>(cli.get_int("bulk-requests", 3));
  const auto bulk_spec = make_spec(
      static_cast<std::uint64_t>(
          cli.get_int("bulk-evals", env_int("PHONOC_SWEEP_EVALS", 1200))),
      static_cast<std::size_t>(cli.get_int("bulk-seeds", 8)));
  const auto interactive_requests =
      static_cast<std::size_t>(cli.get_int("interactive-requests", 24));
  const auto interactive_spec = make_spec(
      static_cast<std::uint64_t>(cli.get_int("interactive-evals", 150)), 1);
  const auto clients =
      static_cast<std::size_t>(std::max<std::int64_t>(
          1, cli.get_int("clients", 6)));

  std::cout << "# service throughput: " << bulk_requests << " bulk x "
            << cell_count(bulk_spec) << " cells vs " << interactive_requests
            << " interactive x " << cell_count(interactive_spec)
            << " cell(s) over " << clients << " client(s)\n";

  std::vector<PassResult> passes;
  // Baseline first: the pre-pool FIFO behavior, emulated by
  // construction (see the file comment).
  passes.push_back(run_pass("fifo", 1, 0, false, bulk_requests, bulk_spec,
                            interactive_requests, interactive_spec, clients));
  for (const auto& field : split(cli.get_or("concurrency", "1,2,4"), ',')) {
    const auto text = trim(field);
    if (text.empty()) continue;
    const auto concurrency =
        static_cast<std::size_t>(std::max<long>(parse_long(text), 1));
    passes.push_back(run_pass("drr", concurrency, 4, true, bulk_requests,
                              bulk_spec, interactive_requests,
                              interactive_spec, clients));
  }

  const double fifo_p99 = passes.front().interactive_p99;
  double best_drr_p99 = 0.0;
  for (const auto& pass : passes) {
    if (pass.mode == "drr") best_drr_p99 = pass.interactive_p99;
    std::cout << "# " << pass.mode << " concurrency=" << pass.concurrency
              << ": interactive p50 " << format_fixed(pass.interactive_p50, 3)
              << "s p99 " << format_fixed(pass.interactive_p99, 3)
              << "s, bulk p99 " << format_fixed(pass.bulk_p99, 3)
              << "s, wall " << format_fixed(pass.wall_seconds, 3) << "s, "
              << pass.overtakes << " overtake(s)\n";
  }
  const double improvement =
      best_drr_p99 > 0.0 ? fifo_p99 / best_drr_p99 : 0.0;
  std::cout << "# interactive p99 improvement (fifo -> drr at highest "
               "concurrency): "
            << format_fixed(improvement, 2) << "x  ("
            << (improvement >= 2.0 ? "PASS" : "below")
            << " the >=2x acceptance bar)\n";

  if (const auto json_path = cli.get("json")) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "error: cannot open " << *json_path << " for writing\n";
      return 1;
    }
    out << "{\n"
        << "  \"benchmark\": \"service_throughput\",\n"
        << "  \"bulk_requests\": " << bulk_requests << ",\n"
        << "  \"bulk_cells_per_request\": " << cell_count(bulk_spec) << ",\n"
        << "  \"interactive_requests\": " << interactive_requests << ",\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"interactive_p99_improvement\": "
        << format_fixed(improvement, 3) << ",\n"
        << "  \"passes\": [";
    for (std::size_t i = 0; i < passes.size(); ++i) {
      const auto& pass = passes[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"mode\": \"" << pass.mode
          << "\", \"concurrency\": " << pass.concurrency
          << ", \"interactive_p50_seconds\": "
          << format_fixed(pass.interactive_p50, 4)
          << ", \"interactive_p99_seconds\": "
          << format_fixed(pass.interactive_p99, 4)
          << ", \"bulk_p99_seconds\": " << format_fixed(pass.bulk_p99, 4)
          << ", \"wall_seconds\": " << format_fixed(pass.wall_seconds, 4)
          << ", \"interactive_overtakes\": " << pass.overtakes << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "# snapshot written to " << *json_path << '\n';
  }
  return 0;
}
