/// \file bench_router_ablation.cpp
/// \brief Ablation A1 — router microarchitecture choice.
///
/// The paper's methodology treats the optical router as a swappable
/// library component. This harness quantifies what that choice costs:
/// for each built-in router (Crux reconstruction, full matrix crossbar,
/// XY-restricted crossbar, PPSE-based parallel router) it reports the
/// structural inventory, the per-connection loss envelope, the
/// network-level worst path loss, and the optimized mapping quality on
/// a representative application (VOPD, 4x4 mesh).

#include <iostream>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "io/table_writer.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workloads/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace phonoc;
  const CliOptions cli(argc, argv);
  OptimizerBudget budget;
  budget.max_evaluations = static_cast<std::uint64_t>(cli.get_int(
      "evals",
      env_int("PHONOC_ABLATION_EVALS", full_scale_requested() ? 30000 : 4000)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto app = cli.get_or("benchmark", "vopd");
  Timer timer;

  std::cout << "# A1: router microarchitecture ablation (" << app
            << ", mesh, R-PBLA, " << budget.max_evaluations
            << " evaluations per objective)\n\n";

  TableWriter structure({"router", "rings", "crossings", "connections",
                         "best conn dB", "worst conn dB"});
  TableWriter quality({"router", "network worst path dB", "best loss dB",
                       "best SNR dB"});

  for (const auto* router_name : {"crux", "xy_crossbar", "crossbar",
                                  "parallel"}) {
    const RouterModel model(make_router_netlist(router_name),
                            PhysicalParameters::paper_defaults());
    double best_conn = -1e9;
    for (std::size_t c = 0; c < model.connection_count(); ++c)
      best_conn = std::max(best_conn, model.connection_loss_db(c));
    structure.add_row({router_name,
                       std::to_string(model.netlist().ring_count()),
                       std::to_string(model.netlist().crossing_count()),
                       std::to_string(model.connection_count()),
                       format_fixed(best_conn, 3),
                       format_fixed(model.worst_connection_loss_db(), 3)});

    ExperimentSpec loss_spec;
    loss_spec.benchmark = app;
    loss_spec.router = router_name;
    loss_spec.goal = OptimizationGoal::InsertionLoss;
    const auto loss_problem = make_experiment(loss_spec);
    const auto loss_run = Engine(loss_problem).run("rpbla", budget, seed);
    ExperimentSpec snr_spec = loss_spec;
    snr_spec.goal = OptimizationGoal::Snr;
    const auto snr_problem = make_experiment(snr_spec);
    const auto snr_run = Engine(snr_problem).run("rpbla", budget, seed);
    quality.add_row(
        {router_name,
         format_fixed(loss_problem.network().worst_case_path_loss_db(), 2),
         format_fixed(loss_run.best_evaluation.worst_loss_db, 2),
         format_fixed(snr_run.best_evaluation.worst_snr_db, 2)});
  }

  std::cout << structure.to_ascii() << '\n' << quality.to_ascii();
  std::cout << "\n# expected shape: Crux (12 rings, ring-free straights) "
               "beats the matrix crossbars on loss;\n# the crossbar's "
               "disjoint rows/columns trade loss for fewer in-router "
               "interactions.\n";
  std::cout << "# total time: " << format_fixed(timer.elapsed_seconds(), 1)
            << " s\n";
  return 0;
}
