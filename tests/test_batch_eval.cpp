// Bit-identity oracle for the SoA batched evaluation kernel: across
// mesh/ring/torus topologies, random CGs and random batches (odd sizes,
// B=1, B > |E|, duplicate assignments), every BatchPoint and every
// EdgeMetrics row must equal a fresh per-mapping `evaluate_mapping`
// bitwise (tolerance 0). Also covers the Evaluator's batched entry
// points (memo/counting contracts vs a sequential loop, including the
// peek-then-evicted fallback), GA batch-vs-sequential trajectory
// equivalence, and the batched Sample-cell body.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "mapping/genetic.hpp"
#include "mapping/mapping.hpp"
#include "mapping/objective.hpp"
#include "model/batch_eval.hpp"
#include "model/evaluation.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "routing/table_routing.hpp"
#include "topology/ring.hpp"
#include "util/rng.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

std::shared_ptr<const NetworkModel> make_net(const std::string& topology,
                                             std::uint32_t side) {
  if (topology == "ring") {
    auto router = std::make_shared<const RouterModel>(
        make_router_netlist("crux"), PhysicalParameters::paper_defaults());
    const auto topo = build_ring(RingOptions{side * side, 2.5});
    auto routing = std::make_shared<const TableRouting>(
        TableRouting::shortest_paths(topo));
    return std::make_shared<const NetworkModel>(topo, std::move(router),
                                                std::move(routing),
                                                NetworkModelOptions{});
  }
  const auto kind =
      topology == "torus" ? TopologyKind::Torus : TopologyKind::Mesh;
  return make_network(kind, side, "crux");
}

CommGraph make_cg(std::size_t tasks, std::uint64_t seed) {
  return random_cg({.tasks = static_cast<std::uint32_t>(tasks),
                    .avg_out_degree = 2.5,
                    .min_bandwidth = 8,
                    .max_bandwidth = 256,
                    .seed = seed,
                    .acyclic = false});
}

/// Flatten `batch` random mappings (with deliberate duplicates) into
/// the row-major layout BatchEvaluator consumes.
std::vector<TileId> random_batch(std::size_t batch, std::size_t tasks,
                                 std::size_t tiles, Rng& rng) {
  std::vector<TileId> flat;
  flat.reserve(batch * tasks);
  std::vector<TileId> previous;
  for (std::size_t b = 0; b < batch; ++b) {
    if (b > 0 && b % 3 == 2) {
      // Every third row duplicates the previous one: batches from real
      // consumers (GA populations) contain repeats.
      flat.insert(flat.end(), previous.begin(), previous.end());
      continue;
    }
    const Mapping m = Mapping::random(tasks, tiles, rng);
    previous.assign(m.assignment().begin(), m.assignment().end());
    flat.insert(flat.end(), previous.begin(), previous.end());
  }
  return flat;
}

void expect_bitwise(double actual, double expected, const char* what,
                    std::size_t row) {
  EXPECT_EQ(std::memcmp(&actual, &expected, sizeof(double)), 0)
      << what << " diverges at batch row " << row << ": " << actual
      << " vs " << expected;
}

class BatchBitIdentity
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(BatchBitIdentity, MatchesEvaluateMappingBitwise) {
  const auto& [topology, batch] = GetParam();
  const auto net = make_net(topology, 4);
  const auto cg = make_cg(12, 101 + batch);
  BatchEvaluator batched(*net, cg);
  const std::size_t tasks = cg.task_count();
  ASSERT_EQ(batched.plan().edge_count(), cg.edges().size());

  Rng rng(0x9e3779b9u + batch);
  const auto flat = random_batch(batch, tasks, net->tile_count(), rng);
  std::vector<BatchPoint> points(batch);
  std::vector<EdgeMetrics> detail(batch * cg.edges().size());
  batched.evaluate_detailed(flat, batch, points, detail);

  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const TileId> row{flat.data() + b * tasks, tasks};
    const auto full = evaluate_mapping(*net, cg, row, /*detailed=*/true);
    expect_bitwise(points[b].worst_loss_db, full.worst_loss_db,
                   "worst_loss_db", b);
    expect_bitwise(points[b].worst_snr_db, full.worst_snr_db, "worst_snr_db",
                   b);
    ASSERT_EQ(full.edges.size(), cg.edges().size());
    for (std::size_t e = 0; e < full.edges.size(); ++e) {
      const auto& got = detail[b * cg.edges().size() + e];
      const auto& want = full.edges[e];
      EXPECT_EQ(got.edge, want.edge);
      EXPECT_EQ(got.src_tile, want.src_tile);
      EXPECT_EQ(got.dst_tile, want.dst_tile);
      expect_bitwise(got.loss_db, want.loss_db, "edge loss_db", b);
      expect_bitwise(got.signal_gain, want.signal_gain, "edge signal_gain",
                     b);
      expect_bitwise(got.noise_gain, want.noise_gain, "edge noise_gain", b);
      expect_bitwise(got.snr_db, want.snr_db, "edge snr_db", b);
    }
  }

  // The trusted (validation-hoisted) entry must agree with the checked
  // one — it skips the injectivity scan, not any arithmetic.
  std::vector<BatchPoint> trusted(batch);
  batched.evaluate_trusted(flat, batch, trusted);
  for (std::size_t b = 0; b < batch; ++b) {
    expect_bitwise(trusted[b].worst_loss_db, points[b].worst_loss_db,
                   "trusted worst_loss_db", b);
    expect_bitwise(trusted[b].worst_snr_db, points[b].worst_snr_db,
                   "trusted worst_snr_db", b);
  }
}

// Odd batch sizes on purpose: B=1 (degenerate), B=7 (< |E|), B=61
// (> |E| for the 12-task CG). Torus side 4 exercises wraparound routes.
INSTANTIATE_TEST_SUITE_P(
    Topologies, BatchBitIdentity,
    ::testing::Combine(::testing::Values("mesh", "ring", "torus"),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{61})));

TEST(BatchEval, ZeroEdgeCgYieldsCeiling) {
  const auto net = make_net("mesh", 2);
  CommGraph cg("edgeless");
  for (int t = 0; t < 3; ++t) cg.add_task("t" + std::to_string(t));
  BatchEvaluator batched(*net, cg);
  Rng rng(5);
  const auto flat = random_batch(4, 3, net->tile_count(), rng);
  std::vector<BatchPoint> points(4);
  batched.evaluate(flat, 4, points);
  for (std::size_t b = 0; b < 4; ++b) {
    const std::span<const TileId> row{flat.data() + b * 3, std::size_t{3}};
    const auto full = evaluate_mapping(*net, cg, row);
    expect_bitwise(points[b].worst_loss_db, full.worst_loss_db,
                   "worst_loss_db", b);
    expect_bitwise(points[b].worst_snr_db, full.worst_snr_db, "worst_snr_db",
                   b);
  }
}

TEST(BatchEval, ValidatedEntryRejectsBadAssignments) {
  const auto net = make_net("mesh", 2);
  const auto cg = make_cg(4, 7);
  BatchEvaluator batched(*net, cg);
  std::vector<BatchPoint> out(1);

  std::vector<TileId> duplicate_tile{0, 1, 1, 2};
  EXPECT_THROW(batched.evaluate(duplicate_tile, 1, out), InvalidArgument);
  std::vector<TileId> out_of_range{0, 1, 2, 99};
  EXPECT_THROW(batched.evaluate(out_of_range, 1, out), InvalidArgument);
  std::vector<TileId> wrong_size{0, 1, 2};
  EXPECT_THROW(batched.evaluate(wrong_size, 1, out), InvalidArgument);
}

MappingProblem make_problem(const std::string& topology, std::uint64_t seed) {
  auto cg = make_cg(10, seed);
  auto obj = std::make_shared<WorstSnrObjective>();
  return MappingProblem(std::move(cg), make_net(topology, 4), std::move(obj));
}

std::vector<Mapping> make_mapping_batch(const MappingProblem& problem,
                                        std::size_t count, Rng& rng,
                                        std::size_t duplicate_every = 3) {
  std::vector<Mapping> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0 && duplicate_every > 0 && i % duplicate_every == 2)
      batch.push_back(batch[i - 1]);
    else
      batch.push_back(Mapping::random(problem.task_count(),
                                      problem.tile_count(), rng));
  }
  return batch;
}

void expect_same_counters(const Evaluator& got, const Evaluator& want) {
  EXPECT_EQ(got.evaluation_count(), want.evaluation_count());
  EXPECT_EQ(got.physical_evaluation_count(),
            want.physical_evaluation_count());
  EXPECT_EQ(got.cache_hit_count(), want.cache_hit_count());
  EXPECT_EQ(got.cache_miss_count(), want.cache_miss_count());
  EXPECT_EQ(got.cache_eviction_count(), want.cache_eviction_count());
}

/// evaluate_batch must be indistinguishable from a sequential loop of
/// evaluate calls: fitness values, all five counters, and the memo's
/// contents + recency order (observed via export_memo).
TEST(EvaluatorBatch, MatchesSequentialLoopIncludingMemoState) {
  for (const std::size_t capacity : {std::size_t{0}, std::size_t{4},
                                     std::size_t{1024}}) {
    const auto problem = make_problem("mesh", 41);
    Evaluator batched(problem, {.cache_capacity = capacity});
    Evaluator sequential(problem, {.cache_capacity = capacity});

    Rng rng(99);
    for (int round = 0; round < 4; ++round) {
      Rng copy = rng;
      const auto batch = make_mapping_batch(problem, 13, rng);
      const auto batch2 = make_mapping_batch(problem, 13, copy);
      std::vector<double> got(batch.size());
      batched.evaluate_batch(batch, got);
      for (std::size_t i = 0; i < batch2.size(); ++i) {
        const double want = sequential.evaluate(batch2[i]);
        EXPECT_EQ(std::memcmp(&got[i], &want, sizeof(double)), 0)
            << "fitness diverges at capacity " << capacity << " round "
            << round << " row " << i;
      }
      expect_same_counters(batched, sequential);
      const auto memo_got = batched.export_memo();
      const auto memo_want = sequential.export_memo();
      ASSERT_EQ(memo_got.entries.size(), memo_want.entries.size());
      for (std::size_t i = 0; i < memo_got.entries.size(); ++i) {
        EXPECT_EQ(memo_got.entries[i].assignment,
                  memo_want.entries[i].assignment)
            << "memo recency order diverges at entry " << i;
        EXPECT_EQ(memo_got.entries[i].fitness, memo_want.entries[i].fitness);
      }
    }
  }
}

/// The eviction-fallback path: the peek pass promises row m1 a cache
/// hit, but the two inserts before its replay turn evict it from the
/// capacity-2 memo — the row must fall back to a scalar evaluation
/// with the exact sequential counters.
TEST(EvaluatorBatch, PeekHitEvictedBeforeReplayFallsBack) {
  const auto problem = make_problem("mesh", 43);
  Evaluator batched(problem, {.cache_capacity = 2});
  Evaluator sequential(problem, {.cache_capacity = 2});

  Rng rng(7);
  const Mapping m1 = Mapping::random(problem.task_count(),
                                     problem.tile_count(), rng);
  const Mapping m2 = Mapping::random(problem.task_count(),
                                     problem.tile_count(), rng);
  const Mapping m3 = Mapping::random(problem.task_count(),
                                     problem.tile_count(), rng);

  const double seeded_b = batched.evaluate(m1);
  const double seeded_s = sequential.evaluate(m1);
  EXPECT_EQ(seeded_b, seeded_s);

  const std::vector<Mapping> batch{m2, m3, m1};
  std::vector<double> got(batch.size());
  batched.evaluate_batch(batch, got);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double want = sequential.evaluate(batch[i]);
    EXPECT_EQ(got[i], want) << "row " << i;
  }
  expect_same_counters(batched, sequential);
  // m1 really was evicted before its replay turn, so the sequential
  // contract demands it re-evaluated physically: 4 misses, 0 hits.
  EXPECT_EQ(batched.cache_hit_count(), 0u);
  EXPECT_EQ(batched.cache_miss_count(), 4u);
  EXPECT_EQ(batched.physical_evaluation_count(), 4u);
  EXPECT_EQ(batched.cache_eviction_count(), 2u);
}

/// Detail-folding objectives route through the kernel's EdgeMetrics
/// rows; the fitness must still match the sequential loop bitwise.
TEST(EvaluatorBatch, DetailObjectiveMatchesSequential) {
  auto cg = make_cg(10, 47);
  auto obj = std::make_shared<BandwidthWeightedLossObjective>(cg);
  ASSERT_TRUE(obj->needs_detail());
  const MappingProblem problem(std::move(cg), make_net("torus", 4),
                               std::move(obj));
  Evaluator batched(problem, {});
  Evaluator sequential(problem, {});
  Rng rng(3);
  const auto batch = make_mapping_batch(problem, 9, rng);
  std::vector<double> got(batch.size());
  batched.evaluate_batch(batch, got);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(got[i], sequential.evaluate(batch[i])) << "row " << i;
  expect_same_counters(batched, sequential);
}

/// GA through the Evaluator's batched override vs GA through a wrapper
/// that hides it (forcing the sequential default): identical
/// trajectories — best mapping, fitness, evaluation count and trace.
TEST(GeneticBatch, TrajectoryMatchesSequentialScoring) {
  struct ScalarOnly final : FitnessFunction {
    explicit ScalarOnly(Evaluator& inner) : inner(inner) {}
    double evaluate(const Mapping& m) override { return inner.evaluate(m); }
    Evaluator& inner;
  };

  for (const std::uint64_t budget : {std::uint64_t{37}, std::uint64_t{200}}) {
    const auto problem = make_problem("mesh", 53);
    Evaluator batched(problem, {});
    Evaluator plain(problem, {});
    ScalarOnly scalar(plain);

    const GeneticAlgorithm ga(
        {.population = 16, .tournament = 3, .elites = 2});
    const OptimizerBudget b{.max_evaluations = budget};
    const auto got = ga.optimize(batched, problem.task_count(),
                                 problem.tile_count(), b, 11);
    const auto want = ga.optimize(scalar, problem.task_count(),
                                  problem.tile_count(), b, 11);

    EXPECT_EQ(got.best_fitness, want.best_fitness);
    EXPECT_TRUE(got.best == want.best);
    EXPECT_EQ(got.evaluations, want.evaluations);
    EXPECT_EQ(got.iterations, want.iterations);
    ASSERT_EQ(got.trace.size(), want.trace.size());
    for (std::size_t i = 0; i < got.trace.size(); ++i) {
      EXPECT_EQ(got.trace[i].evaluation, want.trace[i].evaluation);
      EXPECT_EQ(got.trace[i].fitness, want.trace[i].fitness);
    }
    expect_same_counters(batched, plain);
  }
}

/// The batched Sample-cell body vs the scalar per-sample loop it
/// replaced: every histogram bin and running statistic bit-identical.
TEST(SampleBatch, CellDistributionMatchesScalarLoop) {
  SweepSpec spec;
  spec.add_workload("r9", make_cg(9, 61))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_seed_range(3, 1)
      .use_sampling({.samples_per_cell = 1000});
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 1u);
  const auto problems = build_sweep_problems(spec, cells);
  const auto& problem = *problems.begin()->second;

  const auto got = run_sweep_cell(spec, cells[0], problem, {});
  ASSERT_EQ(got.status, CellStatus::Ok) << got.error;

  // The pre-batching reference body, verbatim.
  const auto& s = spec.sampling;
  DistributionResult want;
  want.metrics = {
      {"snr_db", Histogram(s.snr_lo_db, s.snr_hi_db, s.snr_bins), {}},
      {"loss_db", Histogram(s.loss_lo_db, s.loss_hi_db, s.loss_bins), {}}};
  const Evaluator evaluator(problem, {});
  Rng rng(got.seed);
  for (std::uint64_t i = 0; i < s.samples_per_cell; ++i) {
    const auto mapping =
        Mapping::random(problem.task_count(), problem.tile_count(), rng);
    const auto evaluation = evaluator.evaluate_raw(mapping);
    want.metrics[0].histogram.add(evaluation.worst_snr_db);
    want.metrics[0].stats.add(evaluation.worst_snr_db);
    want.metrics[1].histogram.add(evaluation.worst_loss_db);
    want.metrics[1].stats.add(evaluation.worst_loss_db);
  }
  want.samples = s.samples_per_cell;

  EXPECT_TRUE(identical_distributions(got.distribution, want));
}

TEST(BatchEval, SharedPlanAcrossEvaluators) {
  const auto net = make_net("torus", 3);
  const auto cg = make_cg(8, 13);
  auto plan = std::make_shared<const BatchEvalPlan>(*net, cg);
  BatchEvaluator a(plan), b(plan);
  Rng rng(17);
  const auto flat = random_batch(5, cg.task_count(), net->tile_count(), rng);
  std::vector<BatchPoint> pa(5), pb(5);
  a.evaluate(flat, 5, pa);
  b.evaluate(flat, 5, pb);
  for (std::size_t i = 0; i < 5; ++i) {
    expect_bitwise(pa[i].worst_snr_db, pb[i].worst_snr_db, "shared-plan snr",
                   i);
    expect_bitwise(pa[i].worst_loss_db, pb[i].worst_loss_db,
                   "shared-plan loss", i);
  }
}

}  // namespace
}  // namespace phonoc
