// Unit tests for topologies: mesh, torus, ring, floorplan, registry.

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/mesh.hpp"
#include "topology/registry.hpp"
#include "topology/ring.hpp"
#include "topology/torus.hpp"
#include "util/error.hpp"

namespace phonoc {
namespace {

TEST(Mesh, StructureCounts) {
  GridOptions options;
  options.rows = 3;
  options.cols = 4;
  const auto topo = build_mesh(options);
  EXPECT_EQ(topo.tile_count(), 12u);
  // Directed links: horizontal 3*(4-1)*2 + vertical (3-1)*4*2 = 18+16.
  EXPECT_EQ(topo.link_count(), 34u);
  EXPECT_EQ(topo.rows(), 3u);
  EXPECT_EQ(topo.cols(), 4u);
  EXPECT_EQ(topo.name(), "mesh3x4");
}

TEST(Mesh, NeighbourPortsAndLengths) {
  GridOptions options;
  options.rows = 2;
  options.cols = 2;
  options.tile_pitch_mm = 3.0;
  const auto topo = build_mesh(options);
  const auto t00 = topo.tile_at(0, 0);
  const auto t01 = topo.tile_at(0, 1);
  const auto t10 = topo.tile_at(1, 0);
  const auto east = topo.link_from(t00, kPortEast);
  ASSERT_NE(east, kInvalidLink);
  EXPECT_EQ(topo.link(east).dst_tile, t01);
  EXPECT_EQ(topo.link(east).dst_port, kPortWest);
  EXPECT_DOUBLE_EQ(topo.link(east).length_cm, 0.3);
  const auto south = topo.link_from(t00, kPortSouth);
  ASSERT_NE(south, kInvalidLink);
  EXPECT_EQ(topo.link(south).dst_tile, t10);
  EXPECT_EQ(topo.link(south).dst_port, kPortNorth);
  // Border tiles have no links outward.
  EXPECT_EQ(topo.link_from(t00, kPortNorth), kInvalidLink);
  EXPECT_EQ(topo.link_from(t00, kPortWest), kInvalidLink);
}

TEST(Mesh, LinkIntoIsInverseOfLinkFrom) {
  const auto topo = build_mesh(GridOptions{});
  for (const auto& link : topo.links()) {
    const auto from = topo.link_from(link.src_tile, link.src_port);
    const auto into = topo.link_into(link.dst_tile, link.dst_port);
    EXPECT_EQ(from, into);
  }
}

TEST(Mesh, TileAtRowMajor) {
  const auto topo = build_mesh(GridOptions{});
  EXPECT_EQ(topo.tile_at(0, 0), 0u);
  EXPECT_EQ(topo.tile_at(1, 0), 4u);
  EXPECT_EQ(topo.tile_at(9, 9), kInvalidTile);
  EXPECT_EQ(topo.position(5).row, 1u);
  EXPECT_EQ(topo.position(5).col, 1u);
}

TEST(Mesh, RejectsBadOptions) {
  GridOptions bad;
  bad.rows = 0;
  EXPECT_THROW(build_mesh(bad), InvalidArgument);
  GridOptions pitch;
  pitch.tile_pitch_mm = -1.0;
  EXPECT_THROW(build_mesh(pitch), InvalidArgument);
}

TEST(SquareSide, PaperSizingRule) {
  EXPECT_EQ(square_side_for(8), 3u);    // PIP -> 3x3 (paper statement)
  EXPECT_EQ(square_side_for(12), 4u);   // MPEG-4 / MWD / 263enc
  EXPECT_EQ(square_side_for(14), 4u);   // 263dec
  EXPECT_EQ(square_side_for(16), 4u);   // VOPD
  EXPECT_EQ(square_side_for(22), 5u);   // Wavelet
  EXPECT_EQ(square_side_for(32), 6u);   // DVOPD
  EXPECT_EQ(square_side_for(1), 1u);
  EXPECT_THROW((void)square_side_for(0), InvalidArgument);
}

TEST(Torus, EveryTileFullyConnected) {
  TorusOptions options;
  options.rows = 3;
  options.cols = 3;
  const auto topo = build_torus(options);
  EXPECT_EQ(topo.tile_count(), 9u);
  EXPECT_EQ(topo.link_count(), 36u);  // 4 directed links per tile
  for (TileId t = 0; t < topo.tile_count(); ++t)
    for (const PortId p : {kPortNorth, kPortEast, kPortSouth, kPortWest})
      EXPECT_NE(topo.link_from(t, p), kInvalidLink);
}

TEST(Torus, FoldedLayoutHasUniformDoubleLengths) {
  TorusOptions options;
  options.rows = 4;
  options.cols = 4;
  options.tile_pitch_mm = 2.5;
  const auto topo = build_torus(options);
  for (const auto& link : topo.links())
    EXPECT_DOUBLE_EQ(link.length_cm, 0.5);  // 2 * 2.5 mm
}

TEST(Torus, NaiveLayoutWrapLengths) {
  TorusOptions options;
  options.rows = 4;
  options.cols = 4;
  options.folded = false;
  const auto topo = build_torus(options);
  double max_len = 0;
  double min_len = 1e9;
  for (const auto& link : topo.links()) {
    max_len = std::max(max_len, link.length_cm);
    min_len = std::min(min_len, link.length_cm);
  }
  EXPECT_DOUBLE_EQ(min_len, 0.25);
  EXPECT_DOUBLE_EQ(max_len, 0.75);  // 3 pitches for the wrap
}

TEST(Torus, WrapLinkTopology) {
  TorusOptions options;
  options.rows = 3;
  options.cols = 3;
  const auto topo = build_torus(options);
  const auto east_edge = topo.tile_at(0, 2);
  const auto west_edge = topo.tile_at(0, 0);
  const auto wrap = topo.link_from(east_edge, kPortEast);
  ASSERT_NE(wrap, kInvalidLink);
  EXPECT_EQ(topo.link(wrap).dst_tile, west_edge);
}

TEST(Torus, RejectsTooSmall) {
  TorusOptions options;
  options.rows = 1;
  options.cols = 4;
  EXPECT_THROW(build_torus(options), InvalidArgument);
}

TEST(Ring, Structure) {
  RingOptions options;
  options.tiles = 6;
  const auto topo = build_ring(options);
  EXPECT_EQ(topo.tile_count(), 6u);
  EXPECT_EQ(topo.link_count(), 12u);
  const auto wrap = topo.link_from(5, kPortEast);
  ASSERT_NE(wrap, kInvalidLink);
  EXPECT_EQ(topo.link(wrap).dst_tile, 0u);
  EXPECT_DOUBLE_EQ(topo.link(wrap).length_cm, 0.25 * 5);
  EXPECT_THROW(build_ring(RingOptions{2, 2.5}), InvalidArgument);
}

TEST(Topology, AddLinkValidation) {
  Topology topo("t", 5);
  topo.add_tile(TilePosition{0, 0});
  topo.add_tile(TilePosition{0, 1});
  topo.add_link(0, kPortEast, 1, kPortWest, 0.25);
  // Port already used in each direction.
  EXPECT_THROW(topo.add_link(0, kPortEast, 1, kPortNorth, 0.25),
               InvalidArgument);
  EXPECT_THROW(topo.add_link(1, kPortEast, 1, kPortWest, 0.25),
               InvalidArgument);  // self-link
  EXPECT_THROW(topo.add_link(0, kPortSouth, 1, kPortNorth, 0.0),
               InvalidArgument);  // zero length
  EXPECT_THROW(topo.add_link(0, 9, 1, kPortNorth, 0.25), InvalidArgument);
}

TEST(TopologyRegistry, BuiltinsAndOptions) {
  const auto names = registered_topologies();
  for (const auto* expected : {"mesh", "torus", "ring"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
  GridOptions options;
  options.rows = 2;
  options.cols = 3;
  EXPECT_EQ(make_topology("mesh", options).tile_count(), 6u);
  EXPECT_EQ(make_topology("Torus", options).tile_count(), 6u);
  EXPECT_EQ(make_topology("ring", options).tile_count(), 6u);
  EXPECT_THROW(make_topology("moebius", options), InvalidArgument);
}

TEST(TopologyRegistry, CustomRegistration) {
  register_topology("single_row", [](const GridOptions& o) {
    GridOptions row = o;
    row.rows = 1;
    return build_mesh(row);
  });
  GridOptions options;
  options.rows = 4;
  options.cols = 4;
  EXPECT_EQ(make_topology("single_row", options).tile_count(), 4u);
}

}  // namespace
}  // namespace phonoc
