// Tests for the IO layer: CG text format, architecture descriptions,
// CSV writer, table writer.

#include <gtest/gtest.h>

#include <sstream>

#include "io/arch_io.hpp"
#include "io/cg_io.hpp"
#include "io/csv.hpp"
#include "io/table_writer.hpp"
#include "util/error.hpp"
#include "workloads/benchmarks.hpp"

namespace phonoc {
namespace {

// --- CG format -------------------------------------------------------------------

TEST(CgIo, ParsesWellFormedInput) {
  std::istringstream in(R"(# a comment
cg demo
task a
task b
task c
edge a b 64      # trailing comment
edge b c 32.5
)");
  const auto cg = read_cg(in);
  EXPECT_EQ(cg.name(), "demo");
  EXPECT_EQ(cg.task_count(), 3u);
  EXPECT_EQ(cg.communication_count(), 2u);
  EXPECT_DOUBLE_EQ(cg.edges()[1].bandwidth_mbps, 32.5);
}

TEST(CgIo, RoundTripsEveryBenchmark) {
  for (const auto& original : all_benchmarks()) {
    std::ostringstream out;
    write_cg(out, original);
    std::istringstream in(out.str());
    const auto parsed = read_cg(in);
    EXPECT_EQ(parsed.name(), original.name());
    ASSERT_EQ(parsed.task_count(), original.task_count());
    ASSERT_EQ(parsed.communication_count(), original.communication_count());
    const auto ea = original.edges();
    const auto eb = parsed.edges();
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(original.task_name(ea[i].src), parsed.task_name(eb[i].src));
      EXPECT_EQ(original.task_name(ea[i].dst), parsed.task_name(eb[i].dst));
      EXPECT_DOUBLE_EQ(ea[i].bandwidth_mbps, eb[i].bandwidth_mbps);
    }
  }
}

TEST(CgIo, ReportsErrorsWithLineNumbers) {
  const auto expect_parse_error = [](const std::string& text, int line) {
    std::istringstream in(text);
    try {
      (void)read_cg(in);
      FAIL() << "expected ParseError for: " << text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_parse_error("task a\nfrobnicate b\n", 2);        // unknown directive
  expect_parse_error("task a\ntask a\n", 2);              // duplicate task
  expect_parse_error("task a\nedge a zz 1\n", 2);         // unknown endpoint
  expect_parse_error("task a\ntask b\nedge a b xx\n", 3); // bad number
  expect_parse_error("edge a\n", 1);                      // arity
  expect_parse_error("cg one\ncg two\n", 2);              // duplicate name
}

TEST(CgIo, EmptyInputFailsValidation) {
  std::istringstream in("# nothing\n");
  EXPECT_THROW((void)read_cg(in), InvalidArgument);
}

TEST(CgIo, FileRoundTrip) {
  const auto path = testing::TempDir() + "/phonoc_cg_test.cg";
  write_cg_file(path, make_benchmark("pip"));
  const auto parsed = read_cg_file(path);
  EXPECT_EQ(parsed.task_count(), 8u);
  EXPECT_THROW(read_cg_file("/nonexistent/nowhere.cg"), ParseError);
}

// --- architecture format ------------------------------------------------------------

TEST(ArchIo, ParsesFullDescription) {
  std::istringstream in(R"(
topology = torus
rows = 5
cols = 5
tile_pitch_mm = 3.0
router = crossbar
routing = torus_dor
fidelity = full
conflict_policy = ignore
snr_ceiling_db = 150
param.crossing_loss_db = -0.08
)");
  const auto spec = read_architecture(in);
  EXPECT_EQ(spec.topology, "torus");
  EXPECT_EQ(spec.rows, 5u);
  EXPECT_DOUBLE_EQ(spec.tile_pitch_mm, 3.0);
  EXPECT_EQ(spec.router, "crossbar");
  EXPECT_EQ(spec.model_options.fidelity, ModelFidelity::Full);
  EXPECT_EQ(spec.model_options.conflict_policy, ConflictPolicy::Ignore);
  EXPECT_DOUBLE_EQ(spec.model_options.snr_ceiling_db, 150.0);
  EXPECT_DOUBLE_EQ(spec.parameters.crossing_loss_db, -0.08);
  // Untouched parameters keep Table I defaults.
  EXPECT_DOUBLE_EQ(spec.parameters.pse_off_crosstalk_db, -20.0);
}

TEST(ArchIo, RejectsUnknownKeysAndValues) {
  const auto expect_error = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW((void)read_architecture(in), ParseError) << text;
  };
  expect_error("warp = 9\n");
  expect_error("fidelity = medium\n");
  expect_error("conflict_policy = maybe\n");
  expect_error("param.flux_capacitor_db = -1\n");
  expect_error("rows 4\n");   // missing '='
  expect_error("rows =\n");   // empty value
}

TEST(ArchIo, RoundTrip) {
  ArchitectureSpec spec;
  spec.topology = "torus";
  spec.rows = spec.cols = 6;
  spec.router = "parallel";
  spec.routing = "torus_dor";
  spec.model_options.fidelity = ModelFidelity::Full;
  spec.parameters.pse_off_crosstalk_db = -25.0;
  std::ostringstream out;
  write_architecture(out, spec);
  std::istringstream in(out.str());
  const auto parsed = read_architecture(in);
  EXPECT_EQ(parsed.topology, spec.topology);
  EXPECT_EQ(parsed.rows, 6u);
  EXPECT_EQ(parsed.router, "parallel");
  EXPECT_EQ(parsed.model_options.fidelity, ModelFidelity::Full);
  EXPECT_DOUBLE_EQ(parsed.parameters.pse_off_crosstalk_db, -25.0);
}

TEST(ArchIo, BuildNetworkHonoursSpec) {
  ArchitectureSpec spec;  // defaults: 4x4 mesh, crux, xy
  const auto net = build_network(spec);
  EXPECT_EQ(net->tile_count(), 16u);
  EXPECT_EQ(net->router().name(), "crux");
  EXPECT_EQ(net->routing().name(), "xy");
}

TEST(ArchIo, ParameterOverrideChangesTheModel) {
  ArchitectureSpec base;
  ArchitectureSpec lossy = base;
  lossy.parameters.cpse_off_loss_db = -0.5;  // 10x worse OFF loss
  const auto net_base = build_network(base);
  const auto net_lossy = build_network(lossy);
  EXPECT_LT(net_lossy->worst_case_path_loss_db(),
            net_base->worst_case_path_loss_db());
}

TEST(ArchIo, YxOnCruxFailsAtBuildTime) {
  ArchitectureSpec spec;
  spec.routing = "yx";  // Crux lacks Y->X turns
  EXPECT_THROW((void)build_network(spec), ModelError);
  spec.router = "crossbar";  // full crossbar serves YX fine
  EXPECT_NO_THROW((void)build_network(spec));
}

// --- shipped sample files ------------------------------------------------------------

TEST(SampleData, ShippedCgParsesAndMaps) {
  const auto cg =
      read_cg_file(std::string(PHONOC_REPO_DIR) +
                   "/examples/data/sample_app.cg");
  EXPECT_EQ(cg.name(), "sample_pipeline");
  EXPECT_EQ(cg.task_count(), 8u);
  EXPECT_EQ(cg.communication_count(), 10u);
  EXPECT_NE(cg.find_task("mem_ctrl"), kInvalidNode);
}

TEST(SampleData, ShippedArchBuildsItsNetwork) {
  const auto spec = read_architecture_file(
      std::string(PHONOC_REPO_DIR) + "/examples/data/sample_arch.txt");
  EXPECT_EQ(spec.topology, "torus");
  EXPECT_EQ(spec.routing, "torus_dor");
  EXPECT_DOUBLE_EQ(spec.parameters.crossing_loss_db, -0.05);
  const auto net = build_network(spec);
  EXPECT_EQ(net->tile_count(), 9u);
  EXPECT_EQ(net->router().name(), "crux");
}

// --- CSV ------------------------------------------------------------------------------

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"app", "snr_db"});
  csv.row({"pip", "38.58"});
  csv.row({"has,comma", "1"});
  EXPECT_EQ(out.str(), "app,snr_db\npip,38.58\n\"has,comma\",1\n");
}

// --- table writer ----------------------------------------------------------------------

TEST(TableWriter, AsciiAlignment) {
  TableWriter table({"app", "snr"});
  table.add_row({"pip", "38.6"});
  table.add_row({"wavelet", "32.5"});
  const auto text = table.to_ascii();
  EXPECT_NE(text.find("app      snr"), std::string::npos);
  EXPECT_NE(text.find("wavelet  32.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableWriter, Markdown) {
  TableWriter table({"a", "b"});
  table.add_row({"1", "2"});
  const auto md = table.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(TableWriter, RejectsBadRows) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only_one"}), InvalidArgument);
  EXPECT_THROW(TableWriter({}), InvalidArgument);
}

}  // namespace
}  // namespace phonoc
