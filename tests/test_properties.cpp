// Property-based tests: invariants that must hold across parameter
// sweeps, router families, topology sizes, and random seeds.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "mapping/mapping.hpp"
#include "model/evaluation.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "routing/registry.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

// --- mesh size sweep: structural and loss monotonicity ----------------------------

class MeshSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MeshSizeSweep, DiameterAndLinkCountFormulas) {
  const auto side = GetParam();
  GridOptions grid;
  grid.rows = grid.cols = side;
  const auto topo = build_mesh(grid);
  EXPECT_EQ(topo.tile_count(), side * side);
  EXPECT_EQ(topo.link_count(), 4u * side * (side - 1));
  // Hop diameter of the tile graph is 2*(side-1).
  Digraph<int> g(topo.tile_count());
  for (const auto& link : topo.links()) g.add_edge(link.src_tile,
                                                   link.dst_tile);
  EXPECT_EQ(diameter(g), 2 * (side - 1));
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST_P(MeshSizeSweep, WorstPathLossGrowsWithSize) {
  const auto side = GetParam();
  const auto small = make_network(TopologyKind::Mesh, side, "crux");
  const auto large = make_network(TopologyKind::Mesh, side + 1, "crux");
  EXPECT_LT(large->worst_case_path_loss_db(),
            small->worst_case_path_loss_db());
}

TEST_P(MeshSizeSweep, TorusWorstLossNoWorseThanMeshPerHopCount) {
  // The torus halves the hop diameter; with folded (2x pitch) links its
  // worst-case path loss must still beat the mesh of the same side for
  // side >= 3 (router hops dominate over propagation).
  const auto side = GetParam();
  if (side < 3) return;
  const auto mesh = make_network(TopologyKind::Mesh, side, "crux");
  const auto torus = make_network(TopologyKind::Torus, side, "crux");
  EXPECT_GE(torus->worst_case_path_loss_db(),
            mesh->worst_case_path_loss_db());
}

INSTANTIATE_TEST_SUITE_P(Sides, MeshSizeSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

// --- physical parameter scaling: monotone responses --------------------------------

TEST(ParameterScaling, WeakerCrosstalkCoefficientsImproveSnr) {
  // Scaling all K coefficients down (more negative dB) must not lower
  // any mapping's worst-case SNR.
  const auto cg = make_benchmark("mpeg4");
  ExperimentSpec base_spec;
  base_spec.benchmark = "mpeg4";
  ExperimentSpec quiet_spec = base_spec;
  quiet_spec.parameters.crossing_crosstalk_db = -50.0;
  quiet_spec.parameters.pse_off_crosstalk_db = -30.0;
  quiet_spec.parameters.pse_on_crosstalk_db = -35.0;
  const auto base = make_experiment(base_spec);
  const auto quiet = make_experiment(quiet_spec);
  Rng rng(31);
  for (int i = 0; i < 25; ++i) {
    const auto mapping =
        Mapping::random(base.task_count(), base.tile_count(), rng);
    const auto rb = evaluate_mapping(base.network(), base.cg(),
                                     mapping.assignment());
    const auto rq = evaluate_mapping(quiet.network(), quiet.cg(),
                                     mapping.assignment());
    EXPECT_GE(rq.worst_snr_db, rb.worst_snr_db - 1e-9);
  }
}

TEST(ParameterScaling, HigherPropagationLossHurtsEveryPath) {
  ExperimentSpec base_spec;
  base_spec.benchmark = "pip";
  ExperimentSpec lossy_spec = base_spec;
  lossy_spec.parameters.propagation_loss_db_per_cm = -2.74;  // 10x
  const auto base = make_experiment(base_spec);
  const auto lossy = make_experiment(lossy_spec);
  for (TileId s = 0; s < base.tile_count(); ++s) {
    for (TileId d = 0; d < base.tile_count(); ++d) {
      if (s == d) continue;
      EXPECT_LT(lossy.network().path_loss_db(s, d),
                base.network().path_loss_db(s, d));
    }
  }
}

TEST(ParameterScaling, ZeroCrosstalkMeansCeilingSnr) {
  ExperimentSpec spec;
  spec.benchmark = "pip";
  // K -> -inf is not representable; -300 dB is numerically zero noise
  // relative to the ceiling of +200 dB.
  spec.parameters.crossing_crosstalk_db = -300.0;
  spec.parameters.pse_off_crosstalk_db = -300.0;
  spec.parameters.pse_on_crosstalk_db = -300.0;
  const auto problem = make_experiment(spec);
  Rng rng(5);
  const auto mapping =
      Mapping::random(problem.task_count(), problem.tile_count(), rng);
  const auto result = evaluate_mapping(problem.network(), problem.cg(),
                                       mapping.assignment());
  EXPECT_GT(result.worst_snr_db, 150.0);
}

// --- router family invariants at network level --------------------------------------

class RouterNetworkSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(RouterNetworkSweep, AllMeshPathsBuildAndLose) {
  GridOptions grid;
  grid.rows = grid.cols = 4;
  auto router = std::make_shared<const RouterModel>(
      make_router_netlist(GetParam()), PhysicalParameters::paper_defaults());
  const NetworkModel net(build_mesh(grid), router, make_routing("xy"), {});
  for (TileId s = 0; s < net.tile_count(); ++s) {
    for (TileId d = 0; d < net.tile_count(); ++d) {
      if (s == d) continue;
      const auto& path = net.path(s, d);
      EXPECT_GT(path.total_gain, 0.0);
      EXPECT_LT(path.total_gain, 1.0);
      // Prefix/suffix identity (the PathData invariant).
      for (std::size_t i = 0; i < path.hops.size(); ++i)
        EXPECT_NEAR(path.arrive_gain[i] *
                        net.router().connection_gain(path.conn[i]) *
                        path.exit_suffix[i],
                    path.total_gain, 1e-12);
    }
  }
}

TEST_P(RouterNetworkSweep, NoiseIsNonNegativeAndFiniteOnRandomMappings) {
  GridOptions grid;
  grid.rows = grid.cols = 4;
  auto router = std::make_shared<const RouterModel>(
      make_router_netlist(GetParam()), PhysicalParameters::paper_defaults());
  auto net = std::make_shared<const NetworkModel>(
      build_mesh(grid), router, make_routing("xy"), NetworkModelOptions{});
  const auto cg = make_benchmark("mpeg4");
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    const auto mapping = Mapping::random(cg.task_count(), 16, rng);
    const auto result =
        evaluate_mapping(*net, cg, mapping.assignment(), true);
    for (const auto& edge : result.edges) {
      EXPECT_GE(edge.noise_gain, 0.0);
      EXPECT_LT(edge.noise_gain, 1.0);  // cannot exceed injected power
      EXPECT_TRUE(std::isfinite(edge.snr_db));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Routers, RouterNetworkSweep,
                         ::testing::Values("crux", "crossbar", "xy_crossbar",
                                           "parallel"));

// --- mapping-level invariances --------------------------------------------------------

TEST(MappingInvariance, RelabelingTasksConsistently) {
  // Evaluating CG edges does not depend on task declaration order:
  // permuting task ids together with the assignment leaves worst-case
  // metrics unchanged.
  const auto net = make_network(TopologyKind::Mesh, 3, "crux");
  CommGraph cg_a("a");
  cg_a.add_task("x");
  cg_a.add_task("y");
  cg_a.add_task("z");
  cg_a.add_communication("x", "y", 1);
  cg_a.add_communication("y", "z", 1);
  CommGraph cg_b("b");  // same graph, tasks declared in reverse
  cg_b.add_task("z");
  cg_b.add_task("y");
  cg_b.add_task("x");
  cg_b.add_communication("x", "y", 1);
  cg_b.add_communication("y", "z", 1);
  const std::vector<TileId> assign_a{0, 1, 5};  // x,y,z
  const std::vector<TileId> assign_b{5, 1, 0};  // z,y,x
  const auto ra = evaluate_mapping(*net, cg_a, assign_a);
  const auto rb = evaluate_mapping(*net, cg_b, assign_b);
  EXPECT_NEAR(ra.worst_loss_db, rb.worst_loss_db, 1e-12);
  EXPECT_NEAR(ra.worst_snr_db, rb.worst_snr_db, 1e-12);
}

TEST(MappingInvariance, TranslationInvarianceInTheMeshInterior) {
  // Shifting a communication pair along a row (same direction, same hop
  // count, both placements clear of any asymmetric border effects)
  // preserves insertion loss exactly: every hop uses the same router
  // connection and the same link length.
  const auto net = make_network(TopologyKind::Mesh, 4, "crux");
  CommGraph cg("pair");
  cg.add_task("a");
  cg.add_task("b");
  cg.add_communication("a", "b", 1);
  const auto left = evaluate_mapping(*net, cg, std::vector<TileId>{4, 5});
  const auto shifted =
      evaluate_mapping(*net, cg, std::vector<TileId>{5, 6});
  EXPECT_NEAR(left.worst_loss_db, shifted.worst_loss_db, 1e-12);
  // Same for a vertical pair shifted one row down.
  const auto top = evaluate_mapping(*net, cg, std::vector<TileId>{1, 5});
  const auto down = evaluate_mapping(*net, cg, std::vector<TileId>{5, 9});
  EXPECT_NEAR(top.worst_loss_db, down.worst_loss_db, 1e-12);
  // Direction asymmetry of Crux is real but bounded: reversing a 1-hop
  // eastward pair changes loss by less than 0.5 dB.
  const auto east = evaluate_mapping(*net, cg, std::vector<TileId>{5, 6});
  const auto west = evaluate_mapping(*net, cg, std::vector<TileId>{6, 5});
  EXPECT_NEAR(east.worst_loss_db, west.worst_loss_db, 0.5);
}

// --- seeded randomness: end-to-end reproducibility sweep --------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EngineRunsAreReproducible) {
  ExperimentSpec spec;
  spec.benchmark = "mwd";
  const auto problem = make_experiment(spec);
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 500;
  const auto a = engine.run("ga", budget, GetParam());
  const auto b = engine.run("ga", budget, GetParam());
  EXPECT_DOUBLE_EQ(a.best_evaluation.worst_snr_db,
                   b.best_evaluation.worst_snr_db);
  EXPECT_TRUE(a.search.best == b.search.best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 1234u));

// --- exact-solver certification sweep --------------------------------------------------

/// Branch-and-bound proves the loss optimum on small random instances;
/// no heuristic may beat it (within float noise), for any seed.
class CertificationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertificationSweep, NoHeuristicBeatsTheProvedOptimum) {
  auto cg = random_cg({.tasks = 6,
                       .avg_out_degree = 1.3,
                       .min_bandwidth = 8,
                       .max_bandwidth = 64,
                       .seed = GetParam(),
                       .acyclic = false});
  auto network = make_network(TopologyKind::Mesh, 3, "crux");
  MappingProblem problem(std::move(cg), network,
                         make_objective(OptimizationGoal::InsertionLoss));
  const Engine engine(problem);
  OptimizerBudget big;
  big.max_evaluations = 1000000;
  const auto optimum = engine.run("bnb", big, 0);
  OptimizerBudget small;
  small.max_evaluations = 1500;
  for (const auto* heuristic : {"rs", "ga", "rpbla", "sa", "tabu",
                                "greedy"}) {
    const auto run = engine.run(heuristic, small, GetParam());
    EXPECT_LE(run.best_evaluation.worst_loss_db,
              optimum.best_evaluation.worst_loss_db + 1e-9)
        << heuristic;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertificationSweep,
                         ::testing::Values(11u, 22u, 33u));

// --- conflict policy ordering ---------------------------------------------------------

TEST(ConflictPolicy, IgnoreNeverReportsLessNoise) {
  NetworkModelOptions exclude_opts;
  NetworkModelOptions ignore_opts;
  ignore_opts.conflict_policy = ConflictPolicy::Ignore;
  const auto net_ex = make_network(TopologyKind::Mesh, 4, "crux", 2.5,
                                   PhysicalParameters::paper_defaults(),
                                   exclude_opts);
  const auto net_ig = make_network(TopologyKind::Mesh, 4, "crux", 2.5,
                                   PhysicalParameters::paper_defaults(),
                                   ignore_opts);
  const auto cg = make_benchmark("vopd");
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto mapping = Mapping::random(cg.task_count(), 16, rng);
    const auto rx =
        evaluate_mapping(*net_ex, cg, mapping.assignment(), true);
    const auto ri =
        evaluate_mapping(*net_ig, cg, mapping.assignment(), true);
    for (std::size_t e = 0; e < rx.edges.size(); ++e)
      EXPECT_LE(rx.edges[e].noise_gain, ri.edges[e].noise_gain + 1e-15);
    EXPECT_GE(rx.worst_snr_db, ri.worst_snr_db - 1e-9);
  }
}

}  // namespace
}  // namespace phonoc
