// Tests of the observability layer (src/obs/): the flight recorder —
// concurrent emitters render to valid Chrome trace_event JSON (parsed
// by an in-test JSON parser), ring overflow drops the oldest events
// and ticks dropped_events, a disabled tracer records nothing — the
// tracing bit-identity contract (InProcess / ForkExec / Remote results
// are bitwise equal with tracing on vs off), fleet-sweep trace
// coverage (a deal/steal/retry/speculate instant covers every cell and
// a settle instant names every index), the MetricsRegistry Prometheus
// exposition (counter families with labels, gauges, histogram
// buckets), the phonocd snapshot's three renderings staying in
// agreement (one descriptor table behind to_text / to_csv /
// to_prometheus), and the loopback --prom-port HTTP scrape server.

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_http.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "service/metrics.hpp"
#include "util/strings.hpp"
#include "workloads/generator.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PHONOC_TEST_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PHONOC_TEST_SOCKETS 0
#endif

#ifndef PHONOC_WORKER_PATH
#define PHONOC_WORKER_PATH "phonoc_worker"
#endif

namespace phonoc {
namespace {

// --- a minimal JSON DOM + recursive-descent parser --------------------------
// Just enough JSON to load a Chrome trace: objects, arrays, strings,
// numbers, true/false/null. Throws std::runtime_error on malformed
// input, which is exactly what the validity tests assert never happens.

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true", {.type = JsonValue::Type::Bool,
                                              .boolean = true});
      case 'f': return parse_literal("false", {.type = JsonValue::Type::Bool,
                                               .boolean = false});
      case 'n': return parse_literal("null", {});
      default: return parse_number();
    }
  }

  JsonValue parse_literal(std::string_view word, JsonValue value) {
    if (text_.substr(pos_, word.size()) != word)
      fail("bad literal, expected " + std::string(word));
    pos_ += word.size();
    return value;
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue value;
    value.type = JsonValue::Type::String;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character inside a string");
      if (c != '\\') {
        value.text += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value.text += '"'; break;
        case '\\': value.text += '\\'; break;
        case '/': value.text += '/'; break;
        case 'b': value.text += '\b'; break;
        case 'f': value.text += '\f'; break;
        case 'n': value.text += '\n'; break;
        case 'r': value.text += '\r'; break;
        case 't': value.text += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The traces under test only escape control bytes; a basic
          // one-byte decode keeps the parser honest without a full
          // UTF-16 surrogate dance.
          value.text += static_cast<char>(code & 0xFF);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue value;
    value.type = JsonValue::Type::Number;
    try {
      value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("unparseable number");
    }
    return value;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::Array;
    if (consume(']')) return value;
    while (true) {
      value.items.push_back(parse_value());
      if (consume(']')) return value;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::Object;
    if (consume('}')) return value;
    while (true) {
      JsonValue key = parse_string();
      expect(':');
      value.members.emplace_back(std::move(key.text), parse_value());
      if (consume('}')) return value;
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Render the recorder's current contents and parse them back.
JsonValue parsed_trace() {
  std::ostringstream out;
  obs::write_chrome_trace(out);
  return JsonParser(out.str()).parse();
}

/// The "traceEvents" array of a parsed trace (asserts it exists).
const std::vector<JsonValue>& events_of(const JsonValue& trace) {
  const JsonValue* events = trace.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_EQ(events->type, JsonValue::Type::Array);
  return events->items;
}

std::string str_field(const JsonValue& event, const char* key) {
  const JsonValue* field = event.find(key);
  return field && field->type == JsonValue::Type::String ? field->text : "";
}

double arg_number(const JsonValue& event, const char* key) {
  const JsonValue* args = event.find("args");
  if (!args) return -1.0;
  const JsonValue* field = args->find(key);
  return field && field->type == JsonValue::Type::Number ? field->number
                                                         : -1.0;
}

/// Leaves the recorder disabled, empty and back at the default ring
/// capacity whatever a test did to it.
struct TracerReset {
  ~TracerReset() {
    obs::set_trace_buffer_capacity(65536);
    obs::start_tracing();  // discards the rings
    obs::stop_tracing();
  }
};

// --- tracer -----------------------------------------------------------------

TEST(Trace, DisabledTracerRecordsNothing) {
  TracerReset reset;
  obs::start_tracing();
  obs::stop_tracing();  // rings now empty, recorder off
  ASSERT_FALSE(obs::trace_enabled());
  obs::trace_instant("test", "ghost");
  obs::trace_counter("test", "ghost_counter", 1.0);
  {
    obs::TraceSpan span("test", "ghost_span");
    span.arg({"i", std::uint64_t{7}});
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
  EXPECT_EQ(obs::trace_dropped_events(), 0u);
  const auto trace = parsed_trace();  // still a valid, empty document
  EXPECT_TRUE(events_of(trace).empty());
}

TEST(Trace, ConcurrentEmittersRenderValidJson) {
  TracerReset reset;
  obs::start_tracing();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        obs::trace_instant("test", "tick", {"thread", std::uint64_t(t)},
                           {"i", std::uint64_t(i)},
                           {"label", std::string_view("a \"quoted\"\nvalue")});
        obs::TraceSpan span("test", "work");
        span.arg({"thread", std::uint64_t(t)});
        obs::trace_counter("test", "progress", double(i));
      }
    });
  for (auto& thread : threads) thread.join();
  obs::stop_tracing();

  // 3 events per iteration, no ring anywhere near its 64k capacity.
  EXPECT_EQ(obs::trace_event_count(), kThreads * kPerThread * 3);
  EXPECT_EQ(obs::trace_dropped_events(), 0u);

  const auto trace = parsed_trace();
  const auto& events = events_of(trace);
  ASSERT_EQ(events.size(), kThreads * kPerThread * 3);
  std::size_t ticks = 0, spans = 0, counters = 0;
  std::set<double> tids;
  for (const auto& event : events) {
    const std::string ph = str_field(event, "ph");
    ASSERT_TRUE(ph == "i" || ph == "X" || ph == "C") << ph;
    EXPECT_EQ(str_field(event, "cat"), "test");
    ASSERT_NE(event.find("ts"), nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    tids.insert(event.find("tid")->number);
    const std::string name = str_field(event, "name");
    if (name == "tick") {
      ++ticks;
      EXPECT_EQ(str_field(*event.find("args"), "label"),
                "a \"quoted\"\nvalue");
    } else if (name == "work") {
      ++spans;
      ASSERT_NE(event.find("dur"), nullptr);  // complete events carry dur
    } else if (name == "progress") {
      ++counters;
    }
  }
  EXPECT_EQ(ticks, kThreads * kPerThread);
  EXPECT_EQ(spans, kThreads * kPerThread);
  EXPECT_EQ(counters, kThreads * kPerThread);
  EXPECT_EQ(tids.size(), kThreads);  // one ring (and tid) per thread
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  TracerReset reset;
  constexpr std::size_t kCapacity = 128;
  constexpr std::size_t kEmitted = 1000;
  obs::set_trace_buffer_capacity(kCapacity);
  obs::start_tracing();
  // One fresh thread = one fresh ring of exactly kCapacity events.
  std::thread([] {
    for (std::size_t i = 0; i < kEmitted; ++i)
      obs::trace_instant("test", "tick", {"i", std::uint64_t(i)});
  }).join();
  obs::stop_tracing();

  EXPECT_EQ(obs::trace_event_count(), kCapacity);
  EXPECT_EQ(obs::trace_dropped_events(), kEmitted - kCapacity);

  // The survivors are exactly the newest kCapacity events, oldest
  // first, and the drop count is surfaced in the document itself.
  const auto trace = parsed_trace();
  const auto& events = events_of(trace);
  ASSERT_EQ(events.size(), kCapacity);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(arg_number(events[i], "i"),
              double(kEmitted - kCapacity + i));
  const JsonValue* other = trace.find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* dropped = other->find("dropped_events");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->number, double(kEmitted - kCapacity));
}

// --- bit-identity: tracing is read-only -------------------------------------

/// 1 x 1 x 1 x 2 optimizers x 1 x 3 seeds = 6 cells; small enough for
/// three backends x two runs each, big enough to cross every
/// instrumented seam.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.add_workload("p5", pipeline_cg(5))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(30)
      .add_seed_range(1, 3);
  return spec;
}

void expect_bit_identical(const std::vector<CellResult>& traced,
                          const std::vector<CellResult>& untraced) {
  ASSERT_EQ(traced.size(), untraced.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    ASSERT_EQ(traced[i].status, CellStatus::Ok) << traced[i].error;
    ASSERT_EQ(untraced[i].status, CellStatus::Ok) << untraced[i].error;
    const auto& g = traced[i].run;
    const auto& w = untraced[i].run;
    EXPECT_EQ(g.algorithm, w.algorithm);
    EXPECT_TRUE(g.search.best == w.search.best);
    EXPECT_EQ(g.search.best_fitness, w.search.best_fitness);  // bitwise
    EXPECT_EQ(g.search.evaluations, w.search.evaluations);
    EXPECT_EQ(g.search.iterations, w.search.iterations);
    EXPECT_EQ(g.best_evaluation.worst_loss_db,
              w.best_evaluation.worst_loss_db);
    EXPECT_EQ(g.best_evaluation.worst_snr_db, w.best_evaluation.worst_snr_db);
  }
}

std::vector<CellResult> run_backend(const SweepSpec& spec,
                                    const BatchOptions& options) {
  return BatchEngine(options).run(spec);
}

TEST(Trace, BitIdentityInProcessTracingOnVsOff) {
  TracerReset reset;
  const auto spec = tiny_spec();
  obs::stop_tracing();
  const auto untraced = run_backend(spec, {.workers = 2});
  obs::start_tracing();
  const auto traced = run_backend(spec, {.workers = 2});
  obs::stop_tracing();
  EXPECT_GT(obs::trace_event_count(), 0u);  // the traced run did record
  expect_bit_identical(traced, untraced);
}

TEST(Trace, BitIdentityForkExecTracingOnVsOff) {
  TracerReset reset;
  const auto spec = tiny_spec();
  const BatchOptions options{.workers = 2,
                             .backend = BatchBackend::ForkExec,
                             .worker_path = PHONOC_WORKER_PATH};
  obs::stop_tracing();
  const auto untraced = run_backend(spec, options);
  obs::start_tracing();
  const auto traced = run_backend(spec, options);
  obs::stop_tracing();
  EXPECT_GT(obs::trace_event_count(), 0u);
  expect_bit_identical(traced, untraced);
}

TEST(Trace, BitIdentityRemoteLoopbackTracingOnVsOff) {
  TracerReset reset;
  const auto spec = tiny_spec();
  BatchOptions options{.backend = BatchBackend::Remote};
  options.remote_hosts = {"loopback", "loopback"};
  obs::stop_tracing();
  const auto untraced = run_backend(spec, options);
  obs::start_tracing();
  const auto traced = run_backend(spec, options);
  obs::stop_tracing();
  EXPECT_GT(obs::trace_event_count(), 0u);
  expect_bit_identical(traced, untraced);
}

// --- fleet-sweep trace coverage ---------------------------------------------

TEST(Trace, LoopbackFleetSweepCoversEveryCell) {
  TracerReset reset;
  const auto spec = tiny_spec();
  const std::size_t cells = cell_count(spec);
  obs::start_tracing();
  SchedulerOptions options;
  options.hosts = {"loopback", "loopback"};
  options.cells_per_shard = 2;
  const auto outcome = Scheduler(std::move(options)).run(spec);
  obs::stop_tracing();
  ASSERT_EQ(outcome.results.size(), cells);

  const auto trace = parsed_trace();
  std::vector<bool> dealt(cells, false);
  std::set<std::size_t> settled;
  std::size_t sweep_spans = 0, unit_spans = 0, shard_spans = 0;
  for (const auto& event : events_of(trace)) {
    const std::string name = str_field(event, "name");
    if (name == "deal" || name == "retry" || name == "steal" ||
        name == "speculate") {
      const auto begin = static_cast<std::size_t>(arg_number(event, "begin"));
      const auto end = static_cast<std::size_t>(arg_number(event, "end"));
      ASSERT_LE(end, cells);
      for (std::size_t i = begin; i < end; ++i) dealt[i] = true;
    } else if (name == "settle") {
      settled.insert(static_cast<std::size_t>(arg_number(event, "index")));
    } else if (name == "sweep") {
      ++sweep_spans;
    } else if (name == "unit") {
      ++unit_spans;
    } else if (name == "serve_shard") {
      ++shard_spans;
    }
  }
  // Every cell was dealt through some acquire path and settled exactly
  // once; the scheduler and the worker side both left their spans.
  for (std::size_t i = 0; i < cells; ++i)
    EXPECT_TRUE(dealt[i]) << "cell " << i << " never dealt";
  ASSERT_EQ(settled.size(), cells);
  EXPECT_EQ(*settled.begin(), 0u);
  EXPECT_EQ(*settled.rbegin(), cells - 1);
  EXPECT_EQ(sweep_spans, 1u);
  EXPECT_GT(unit_spans, 0u);
  EXPECT_GT(shard_spans, 0u);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(Metrics, RegistryRendersPrometheusExposition) {
  obs::MetricsRegistry registry;  // local: independent of the global one
  auto& plain = registry.counter("phonoc_test_ops_total", "Ops so far.");
  auto& own = registry.counter("phonoc_test_units_total", "Units by path.",
                               {{"path", "own"}});
  auto& steal = registry.counter("phonoc_test_units_total", "Units by path.",
                                 {{"path", "steal"}});
  auto& depth = registry.gauge("phonoc_test_depth", "Queue depth.");
  auto& wall = registry.histogram("phonoc_test_wall_seconds",
                                  "Wall time per op.", {0.1, 1.0, 10.0});
  plain.inc();
  plain.inc(41);
  own.inc(7);
  steal.inc(2);
  depth.set(3.5);
  wall.observe(0.05);
  wall.observe(0.5);
  wall.observe(0.5);
  wall.observe(99.0);

  // Re-registering the same name + labels returns the same instance.
  EXPECT_EQ(&own, &registry.counter("phonoc_test_units_total", "ignored",
                                    {{"path", "own"}}));
  EXPECT_EQ(plain.value(), 42u);
  EXPECT_EQ(wall.count(), 4u);
  EXPECT_EQ(wall.cumulative(0), 1u);  // <= 0.1
  EXPECT_EQ(wall.cumulative(1), 3u);  // <= 1.0
  EXPECT_EQ(wall.cumulative(2), 3u);  // <= 10.0
  EXPECT_EQ(wall.cumulative(3), 4u);  // +Inf

  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# HELP phonoc_test_ops_total Ops so far.\n"
                      "# TYPE phonoc_test_ops_total counter\n"
                      "phonoc_test_ops_total 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("phonoc_test_units_total{path=\"own\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonoc_test_units_total{path=\"steal\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE phonoc_test_depth gauge\n"
                      "phonoc_test_depth 3.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonoc_test_wall_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonoc_test_wall_seconds_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonoc_test_wall_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("phonoc_test_wall_seconds_count 4\n"),
            std::string::npos);
  // One family header even with two labelled instances.
  std::size_t unit_headers = 0, from = 0;
  while ((from = text.find("# TYPE phonoc_test_units_total counter",
                           from)) != std::string::npos) {
    ++unit_headers;
    ++from;
  }
  EXPECT_EQ(unit_headers, 1u);
  // Label values escape per the exposition format.
  (void)registry.counter("phonoc_test_weird_total", "Escaping.",
                         {{"value", "a\"b\\c\nd"}});
  EXPECT_NE(registry.render_prometheus().find(
                "phonoc_test_weird_total{value=\"a\\\"b\\\\c\\nd\"} 0\n"),
            std::string::npos);
}

// --- snapshot renderings agree ----------------------------------------------

TEST(Metrics, SnapshotRenderingsComeFromOneTable) {
  MetricsSnapshot snapshot;
  snapshot.queue_depth = 3;
  snapshot.in_flight_cells = 17;
  snapshot.uptime_seconds = 12.25;
  snapshot.connections = 5;
  snapshot.requests_accepted = 101;
  snapshot.requests_completed = 99;
  snapshot.shed_overloaded = 7;
  snapshot.cells_ok = 420;
  snapshot.wall_p50_seconds = 0.125;

  const std::string text = snapshot.to_text();
  const std::string csv = snapshot.to_csv();
  const std::string prom = snapshot.to_prometheus();

  // to_text: `name value` lines. to_csv: a header row then `name,value`
  // rows, same names, same order, same rendered values.
  std::map<std::string, std::string> text_values;
  for (const auto& line : split(text, '\n')) {
    if (trim(line).empty()) continue;
    const auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    text_values[line.substr(0, space)] = line.substr(space + 1);
  }
  std::map<std::string, std::string> csv_values;
  bool header = true;
  for (const auto& line : split(csv, '\n')) {
    if (trim(line).empty()) continue;
    if (header) {
      EXPECT_EQ(line, "metric,value");
      header = false;
      continue;
    }
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos) << line;
    csv_values[line.substr(0, comma)] = line.substr(comma + 1);
  }
  ASSERT_FALSE(text_values.empty());
  EXPECT_EQ(text_values, csv_values);

  // Spot-check the values went through, not just the shapes.
  EXPECT_EQ(text_values.at("requests_accepted"), "101");
  EXPECT_EQ(text_values.at("queue_depth"), "3");
  EXPECT_EQ(text_values.at("wall_p50_seconds"), format_double(0.125));

  // to_prometheus: every table metric appears as phonocd_<name> with
  // the same value, typed counter or gauge, with help text.
  for (const auto& [name, value] : text_values) {
    const std::string sample = "phonocd_" + name + " " + value + "\n";
    EXPECT_NE(prom.find(sample), std::string::npos)
        << "missing or mismatched sample: " << sample;
    EXPECT_NE(prom.find("# HELP phonocd_" + name + " "), std::string::npos);
  }
  EXPECT_NE(prom.find("# TYPE phonocd_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE phonocd_requests_accepted counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE phonocd_uptime_seconds gauge\n"),
            std::string::npos);
}

// --- the --prom-port HTTP scrape server -------------------------------------

#if PHONOC_TEST_SOCKETS

std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(PromHttp, ServesTheRenderOverLoopback) {
  std::string body = "# HELP t_up Up.\n# TYPE t_up gauge\nt_up 1\n";
  obs::PromHttpServer server(0, [&body] { return body; });
  ASSERT_NE(server.port(), 0);

  const std::string response = http_get(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const auto split_at = response.find("\r\n\r\n");
  ASSERT_NE(split_at, std::string::npos);
  EXPECT_EQ(response.substr(split_at + 4), body);
  EXPECT_NE(response.find("Content-Length: " +
                          std::to_string(body.size()) + "\r\n"),
            std::string::npos);

  // A second scrape sees fresh state (the render runs per request).
  body = "t_up 2\n";
  const std::string again =
      http_get(server.port(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_NE(again.find("t_up 2\n"), std::string::npos);
  EXPECT_GE(server.requests_served(), 2u);
}

#endif  // PHONOC_TEST_SOCKETS

}  // namespace
}  // namespace phonoc
